"""Tests for repro.control.follower: speed profile and the combined agent."""

import pytest

from repro.control.base import make_lateral_controller
from repro.control.estimator import Estimate
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.geom.routes import arc_route, straight_route, urban_loop_route


def estimate(x=0.0, y=0.0, yaw=0.0, v=8.0):
    return Estimate(x=x, y=y, yaw=yaw, v=v, cov_trace=0.1,
                    nis_gps=1.0, nis_speed=1.0, nis_compass=1.0)


class TestSpeedProfile:
    def test_cruise_on_straight(self):
        profile = SpeedProfile(cruise_speed=10.0)
        route = straight_route(500.0)
        assert profile.target_speed(route, 100.0) == pytest.approx(10.0)

    def test_slows_for_curvature(self):
        profile = SpeedProfile(cruise_speed=15.0, lat_accel_budget=2.0)
        route = arc_route(radius=20.0, lead_in=10.0)
        v_in_curve = profile.target_speed(route, 30.0)
        expected = (2.0 * 20.0) ** 0.5  # sqrt(a_lat * R)
        assert v_in_curve == pytest.approx(expected, rel=0.15)

    def test_slows_before_goal(self):
        profile = SpeedProfile(cruise_speed=10.0, brake_decel=2.0)
        route = straight_route(100.0)
        near_goal = profile.target_speed(route, 96.0)
        assert near_goal == pytest.approx((2 * 2.0 * 4.0) ** 0.5, rel=0.05)
        assert profile.target_speed(route, 100.0) == 0.0

    def test_closed_route_never_stops(self):
        profile = SpeedProfile(cruise_speed=8.0)
        route = urban_loop_route()
        assert profile.target_speed(route, route.length - 1.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedProfile(cruise_speed=0.0)
        with pytest.raises(ValueError):
            SpeedProfile(brake_decel=0.0)


class TestWaypointFollower:
    def make(self, cruise=10.0):
        return WaypointFollower(
            make_lateral_controller("pure_pursuit"),
            profile=SpeedProfile(cruise_speed=cruise),
        )

    def test_decision_fields(self):
        follower = self.make()
        follower.reset()
        route = straight_route(300.0)
        d = follower.decide(estimate(x=50.0, y=1.0), route, 0.05)
        assert d.target_speed == pytest.approx(10.0)
        assert d.cte == pytest.approx(1.0, abs=0.05)
        assert d.steer_cmd < 0.0  # corrects right

    def test_accelerates_when_slow(self):
        follower = self.make()
        follower.reset()
        d = follower.decide(estimate(v=2.0), straight_route(300.0), 0.05)
        assert d.accel_cmd > 0.0

    def test_goal_latch_engages_and_holds(self):
        follower = self.make()
        follower.reset()
        route = straight_route(100.0)
        d = follower.decide(estimate(x=98.5, v=1.0), route, 0.05)
        assert d.steer_cmd == 0.0
        assert d.accel_cmd < 0.0
        assert d.target_speed == 0.0
        # Latched even if the estimate wanders afterwards.
        d2 = follower.decide(estimate(x=60.0, v=5.0), route, 0.05)
        assert d2.steer_cmd == 0.0

    def test_reset_clears_latch(self):
        follower = self.make()
        follower.reset()
        route = straight_route(100.0)
        follower.decide(estimate(x=98.5, v=1.0), route, 0.05)
        follower.reset()
        d = follower.decide(estimate(x=50.0, v=8.0), route, 0.05)
        assert d.target_speed > 0.0

    def test_name_comes_from_lateral(self):
        assert self.make().name == "pure_pursuit"
