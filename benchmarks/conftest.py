"""Benchmark suite configuration.

Each ``bench_e*.py`` regenerates one evaluation artifact (table/figure)
under the *quick* experiment config and prints it, so ``pytest benchmarks/
--benchmark-only`` both times the harness and reproduces every artifact's
qualitative shape.  Full-size tables: ``adassure experiment all``.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    """Point the persistent run cache at a temp dir for the whole session.

    Benchmarks must measure real simulation work, not whatever happens to
    sit in the developer's ``~/.cache/adassure`` — and must not pollute it.
    """
    old = os.environ.get("ADASSURE_CACHE_DIR")
    os.environ["ADASSURE_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("adassure-cache"))
    yield
    if old is None:
        os.environ.pop("ADASSURE_CACHE_DIR", None)
    else:
        os.environ["ADASSURE_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig.quick()


def iter_tables(result):
    """Normalize a builder's return value into a flat list of tables.

    Builders return one ``Table``, a list of tables, or (future figure
    builders) a dict of name -> table; anything renderable is yielded,
    ``None`` contributes nothing.
    """
    if result is None:
        return []
    if isinstance(result, dict):
        return [t for t in result.values() if t is not None]
    if isinstance(result, (list, tuple)):
        return [t for t in result if t is not None]
    return [result]


def run_and_print(benchmark, builder, config):
    """Benchmark one experiment builder (single round) and print it."""
    result = benchmark.pedantic(builder, args=(config,), rounds=1,
                                iterations=1)
    print()
    for table in iter_tables(result):
        print(table.render())
        print()
    return result
