"""Tests for repro.sim.engine and scenario plumbing."""

import dataclasses

import numpy as np
import pytest

from repro.attacks.campaign import standard_attack
from repro.sim.engine import run_scenario
from repro.sim.scenario import Scenario, standard_scenarios
from repro.geom.routes import straight_route

from conftest import short_scenario


class TestScenario:
    def test_standard_scenarios_complete(self):
        scenarios = standard_scenarios()
        assert set(scenarios) == {
            "straight", "curve", "s_curve", "lane_change", "slalom",
            "urban_loop",
        }

    def test_duration_override(self):
        scenarios = standard_scenarios(duration=12.0)
        assert all(s.duration == 12.0 for s in scenarios.values())

    def test_num_steps(self):
        s = Scenario(name="x", route=straight_route(100.0), duration=10.0,
                     dt=0.05)
        assert s.num_steps == 200

    def test_validation(self):
        route = straight_route(100.0)
        with pytest.raises(ValueError):
            Scenario(name="x", route=route, cruise_speed=0.0)
        with pytest.raises(ValueError):
            Scenario(name="x", route=route, dt=0.5)

    def test_with_seed(self):
        s = standard_scenarios(seed=1)["straight"].with_seed(99)
        assert s.seed == 99


class TestNominalRun:
    def test_completes_and_reaches_goal(self, nominal_run):
        assert nominal_run.outcome.completed
        assert not nominal_run.outcome.diverged
        assert nominal_run.metrics.goal_reached
        assert nominal_run.metrics.max_abs_cte < 1.0

    def test_trace_length_matches_steps(self, nominal_run):
        assert len(nominal_run.trace) == nominal_run.scenario.num_steps

    def test_trace_meta_populated(self, nominal_run):
        meta = nominal_run.trace.meta
        assert meta.scenario == "s_curve"
        assert meta.controller == "pure_pursuit"
        assert meta.attack == "none"
        assert meta.route_length > 0

    def test_no_attack_labels(self, nominal_run):
        assert nominal_run.trace.attack_onset() is None

    def test_estimate_tracks_truth(self, nominal_run):
        tr = nominal_run.trace
        err = np.hypot(tr.column("est_x") - tr.column("true_x"),
                       tr.column("est_y") - tr.column("true_y"))
        # After convergence the EKF position error stays sub-meter.
        t = tr.times()
        assert float(np.mean(err[t > 5.0])) < 0.6


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        sc = short_scenario(duration=10.0)
        a = run_scenario(sc, controller="pure_pursuit")
        b = run_scenario(sc, controller="pure_pursuit")
        assert len(a.trace) == len(b.trace)
        for ra, rb in zip(a.trace, b.trace):
            assert ra == rb

    def test_different_seed_differs(self):
        a = run_scenario(short_scenario(seed=1, duration=10.0))
        b = run_scenario(short_scenario(seed=2, duration=10.0))
        assert any(ra != rb for ra, rb in zip(a.trace, b.trace))

    def test_attack_does_not_change_sensor_noise_before_onset(self):
        # Stream independence: the pre-onset prefix of an attacked run is
        # bit-identical to the nominal run.
        sc = short_scenario(duration=12.0)
        nominal = run_scenario(sc, controller="pure_pursuit")
        attacked = run_scenario(
            sc, controller="pure_pursuit",
            campaign=standard_attack("gps_bias", onset=10.0),
        )
        for ra, rb in zip(nominal.trace, attacked.trace):
            if ra.t >= 10.0:
                break
            assert ra == rb


class TestAttackedRun:
    def test_attack_labels_from_onset(self, gps_bias_run):
        tr = gps_bias_run.trace
        assert tr.attack_onset() == pytest.approx(15.0, abs=0.06)
        last = tr[len(tr) - 1]
        assert last.attack_active
        assert last.attack_name == "gps_bias"
        assert last.attack_channel == "gps"

    def test_gps_channel_offset_applied(self, gps_bias_run):
        tr = gps_bias_run.trace
        post = tr.window(20.0, 30.0)
        offset = np.mean(post.column("gps_y") - post.column("true_y"))
        assert offset == pytest.approx(4.0, abs=0.5)

    def test_behavioural_damage(self, gps_bias_run):
        # The controller chases the spoofed position: the vehicle is
        # displaced by roughly the spoof magnitude.
        assert gps_bias_run.metrics.max_abs_cte > 2.0


class TestDivergence:
    def test_freeze_attack_diverges_or_degrades(self):
        sc = short_scenario("s_curve", duration=45.0)
        res = run_scenario(sc, controller="pure_pursuit",
                           campaign=standard_attack("gps_freeze", onset=10.0))
        assert res.metrics.max_abs_cte > 3.0

    def test_divergence_flag_consistent(self):
        sc = short_scenario("s_curve", duration=45.0)
        res = run_scenario(sc, controller="pure_pursuit",
                           campaign=standard_attack("gps_freeze", onset=10.0))
        diverged = res.outcome.diverged
        max_cte = res.metrics.max_abs_cte
        assert diverged == (max_cte > 30.0)
        if diverged:
            assert res.outcome.divergence_time is not None


class TestInitialOffset:
    def test_controller_converges_from_offset(self):
        sc = dataclasses.replace(short_scenario("straight", duration=25.0),
                                 initial_lateral_offset=2.0)
        res = run_scenario(sc, controller="pure_pursuit")
        tr = res.trace
        t = tr.times()
        cte = np.abs(tr.column("cte_true"))
        assert cte[0] == pytest.approx(2.0, abs=0.2)
        assert float(np.mean(cte[t > 15.0])) < 0.5
