"""Unit + property tests for the counterfactual search cores.

The delta-debugging cores are pure functions over a ``violates``
predicate, so hypothesis can drive them with *arbitrary* predicates —
including adversarially non-monotone ones — without a simulator in the
loop.  Pinned guarantees:

* ``ddmin_interval``: the result always violates, is 1-minimal on
  normal exit, never loops, and respects the probe budget even when the
  predicate is non-monotone;
* ``ddmin_subset``: minimal sufficient subsets, singleton fast path,
  order preservation, budget contract;
* ``bisect_intensity``: the boundary bracket, resolution contract;
* the satellite-4 regression: an *edited* intervention can never alias
  the original cache entry or any sibling edit — every edit field rides
  in the probe cache key, and the probe key space is disjoint from the
  grid key space.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import cache_key, cache_key_params
from repro.experiments.counterfactual import (
    Intervention,
    Subject,
    bisect_intensity,
    ddmin_interval,
    ddmin_subset,
    probe_params,
)


# ---------------------------------------------------------------------------
# ddmin_interval: property suite
# ---------------------------------------------------------------------------

class CountingPredicate:
    """Wrap a violates(lo, hi) predicate; count and sanity-check calls."""

    def __init__(self, fn, n):
        self.fn = fn
        self.n = n
        self.calls = 0

    def __call__(self, lo, hi):
        self.calls += 1
        assert 0 <= lo < hi <= self.n, "probe outside the original window"
        return self.fn(lo, hi)


@st.composite
def violating_windows(draw):
    """A window size plus an embedded violating core [a, b)."""
    n = draw(st.integers(min_value=1, max_value=60))
    a = draw(st.integers(min_value=0, max_value=n - 1))
    b = draw(st.integers(min_value=a + 1, max_value=n))
    return n, a, b


@given(violating_windows())
@settings(max_examples=200, deadline=None)
def test_interval_monotone_finds_exact_core(case):
    """Monotone predicate (violates iff the core is covered): ddmin must
    recover the core exactly, and it is 1-minimal."""
    n, a, b = case
    pred = CountingPredicate(lambda lo, hi: lo <= a and hi >= b, n)
    res = ddmin_interval(pred, n, budget=10_000)
    assert not res.exhausted
    assert (res.lo, res.hi) == (a, b)
    assert res.probes == pred.calls
    # 1-minimality, re-checked from outside the search:
    if res.size > 1:
        assert not pred.fn(res.lo + 1, res.hi)
        assert not pred.fn(res.lo, res.hi - 1)


@given(violating_windows(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=200, deadline=None)
def test_interval_nonmonotone_never_overshrinks_or_loops(case, salt):
    """Arbitrary predicate (only required to violate on the full window):
    the result still violates, never grows, and the search terminates
    within its budget."""
    n, a, b = case

    def chaotic(lo, hi):
        if (lo, hi) == (0, n):
            return True
        # Deterministic pseudo-random verdict per sub-window.
        return bool((lo * 2654435761 ^ hi * 40503 ^ salt) & 4)

    pred = CountingPredicate(chaotic, n)
    res = ddmin_interval(pred, n, budget=10_000)
    assert 0 <= res.lo < res.hi <= n
    # Whatever came back was *witnessed* violating (full window counts).
    assert chaotic(res.lo, res.hi)
    assert res.probes <= 10_000
    if not res.exhausted and res.size > 1:
        assert not chaotic(res.lo + 1, res.hi)
        assert not chaotic(res.lo, res.hi - 1)


@given(violating_windows(), st.integers(min_value=1, max_value=6))
@settings(max_examples=150, deadline=None)
def test_interval_budget_contract(case, budget):
    """Tiny budgets: at most ``budget`` probes, exhaustion flagged, and
    the partial result is still a violating window."""
    n, a, b = case
    pred = CountingPredicate(lambda lo, hi: lo <= a and hi >= b, n)
    res = ddmin_interval(pred, n, budget=budget)
    assert pred.calls <= budget
    assert res.probes == pred.calls
    assert res.lo <= a and res.hi >= b  # never shrank past the core
    if res.exhausted:
        assert not res.minimal


def test_interval_rejects_empty_window():
    with pytest.raises(ValueError):
        ddmin_interval(lambda lo, hi: True, 0)


def test_interval_single_unit_is_trivially_minimal():
    res = ddmin_interval(lambda lo, hi: True, 1, budget=8)
    assert (res.lo, res.hi) == (0, 1)
    assert res.probes == 0
    assert res.minimal


def test_interval_always_violating_converges_to_one_unit():
    res = ddmin_interval(lambda lo, hi: True, 64, budget=10_000)
    assert res.size == 1
    assert res.minimal


# ---------------------------------------------------------------------------
# ddmin_subset
# ---------------------------------------------------------------------------

def test_subset_singleton_fast_path():
    calls = []

    def violates(subset):
        calls.append(subset)
        return subset == ("x",)

    res = ddmin_subset(violates, ("a", "x", "b"), budget=64)
    assert res.kept == ("x",)
    assert res.minimal
    # Fast path: found at the second singleton probe, no leave-one-out.
    assert res.probes == 2


def test_subset_pairwise_minimum_preserves_order():
    # Violation needs both "a" and "c"; no singleton suffices.
    def violates(subset):
        return "a" in subset and "c" in subset

    res = ddmin_subset(violates, ("a", "b", "c", "d"), budget=64)
    assert res.kept == ("a", "c")
    assert res.minimal


@given(st.integers(min_value=1, max_value=8), st.data())
@settings(max_examples=100, deadline=None)
def test_subset_result_always_violates(size, data):
    items = tuple(f"i{k}" for k in range(size))
    core = frozenset(data.draw(
        st.sets(st.sampled_from(items), min_size=1, max_size=size)))

    def violates(subset):
        return core <= set(subset)

    res = ddmin_subset(violates, items, budget=10_000)
    assert violates(res.kept)
    assert set(res.kept) == core  # monotone case: exactly the core
    assert tuple(x for x in items if x in core) == res.kept  # order kept


def test_subset_budget_exhaustion_returns_violating_superset():
    def violates(subset):
        return "a" in subset and "e" in subset

    res = ddmin_subset(violates, ("a", "b", "c", "d", "e"), budget=3)
    assert res.exhausted
    assert violates(res.kept)


def test_subset_rejects_empty():
    with pytest.raises(ValueError):
        ddmin_subset(lambda s: True, ())


# ---------------------------------------------------------------------------
# bisect_intensity
# ---------------------------------------------------------------------------

def test_bisect_brackets_threshold():
    res = bisect_intensity(lambda x: x >= 0.3, 1.0, rel_resolution=1 / 16,
                           budget=64)
    assert not res.exhausted
    assert res.lower < 0.3 <= res.minimal
    assert res.boundary_width <= 1.0 / 16 + 1e-12


def test_bisect_magnitude_free_converges_to_zero():
    res = bisect_intensity(lambda x: True, 1.0, budget=64)
    assert res.minimal <= 1.0 / 16 + 1e-12


def test_bisect_budget_contract():
    calls = []

    def violates(x):
        calls.append(x)
        return x >= 0.3

    res = bisect_intensity(violates, 1.0, rel_resolution=1e-6, budget=5)
    assert res.exhausted
    assert len(calls) == 5
    assert res.minimal >= 0.3  # upper end stayed violating


def test_bisect_rejects_nonpositive():
    with pytest.raises(ValueError):
        bisect_intensity(lambda x: True, 0.0)


# ---------------------------------------------------------------------------
# Satellite-4 regression: edited interventions never alias cache entries
# ---------------------------------------------------------------------------

SUBJECT = Subject(scenario="s_curve", controller="pure_pursuit", seed=7,
                  duration=20.0)
BASE = Intervention.from_labels(attack="gps_bias", fault="gps_dropout",
                                intensity=1.0, onset=10.0)


def probe_key(iv: Intervention) -> str:
    return cache_key_params(probe_params(SUBJECT, iv))


def test_every_edit_field_changes_the_cache_key():
    edits = {
        "base": BASE,
        "window-end": BASE.with_window(10.0, 13.0),
        "window-onset": BASE.with_window(11.0, math.inf),
        "intensity": BASE.with_intensity(0.5),
        "channels": BASE.with_channels((("attack", "gps_bias"),)),
        "removed": BASE.removed(),
    }
    keys = {name: probe_key(iv) for name, iv in edits.items()}
    assert len(set(keys.values())) == len(keys), (
        "edited interventions collided in the probe key space")


def test_probe_key_space_disjoint_from_grid_key_space():
    """The original grid entry for the same coordinates must never be
    served for a probe (or vice versa), even for the unchanged edit."""
    grid = cache_key("s_curve", "pure_pursuit", "gps_bias", 1.0, 7, 10.0,
                     20.0)
    assert probe_key(BASE) != grid


def test_unbounded_window_serializes_without_infinity():
    d = BASE.edit_dict()
    assert d["end"] is None
    assert BASE.with_window(10.0, 13.0).edit_dict()["end"] == 13.0
    # JSON-serializable throughout (cache_key_params would raise on inf).
    probe_key(BASE)


@given(st.floats(min_value=0.01, max_value=2.0,
                 allow_nan=False, allow_infinity=False),
       st.floats(min_value=0.0, max_value=30.0,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=50, deadline=None)
def test_intensity_onset_edits_key_injectively(intensity, onset):
    edited = BASE.with_intensity(intensity).with_window(onset, math.inf)
    if edited == BASE:
        assert probe_key(edited) == probe_key(BASE)
    else:
        assert probe_key(edited) != probe_key(BASE)


# ---------------------------------------------------------------------------
# Separation-gap proposals (simulator-free: signatures passed in directly)
# ---------------------------------------------------------------------------

def test_propose_separators_prefers_simulated_differences():
    from repro.core.knowledge import default_knowledge_base
    from repro.experiments.counterfactual import _propose_separators

    signatures = {
        "gps_bias": {"A1": 0.9, "A4": 0.8, "A9G": 0.2},
        "gps_drift": {"A1": 0.9, "A4": 0.1, "A9G": 0.9},
    }
    proposed = _propose_separators("gps_bias", "gps_drift", signatures,
                                   default_knowledge_base())
    # A4 and A9G disagree strongly between the simulated signatures;
    # the shared A1 separates nothing and must not be proposed.
    assert set(proposed) <= {"A4", "A9G"}
    assert proposed[0] in ("A4", "A9G")


def test_propose_separators_falls_back_to_kb_profiles():
    from repro.core.knowledge import CauseProfile, KnowledgeBase
    from repro.experiments.counterfactual import _propose_separators

    kb = KnowledgeBase([
        CauseProfile("x_one", "x", {"A1": 0.9, "A2": 0.1}),
        CauseProfile("y_two", "y", {"A1": 0.9, "A2": 0.8}),
    ])
    # Simulated signatures identical: no empirical separator exists.
    flat = {"x_one": {"A1": 0.5}, "y_two": {"A1": 0.5}}
    proposed = _propose_separators("x_one", "y_two", flat, kb)
    assert proposed == ("A2",)


def test_propose_separators_suggests_new_assertion_when_all_flat():
    from repro.core.knowledge import CauseProfile, KnowledgeBase
    from repro.experiments.counterfactual import _propose_separators

    kb = KnowledgeBase([
        CauseProfile("gps_bias", "a", {"A1": 0.9}),
        CauseProfile("odom_scale", "b", {"A1": 0.9}),
    ])
    flat = {"gps_bias": {"A1": 0.5}, "odom_scale": {"A1": 0.5}}
    proposed = _propose_separators("gps_bias", "odom_scale", flat, kb)
    assert proposed == ("new: gps-vs-odom cross-channel consistency",)


# ---------------------------------------------------------------------------
# Intervention algebra
# ---------------------------------------------------------------------------

def test_from_labels_composed():
    iv = Intervention.from_labels(attack="gps_bias+imu_gyro_bias",
                                  fault="gps_dropout")
    assert iv.attacks == ("gps_bias", "imu_gyro_bias")
    assert iv.faults == ("gps_dropout",)
    assert iv.label == "gps_bias+imu_gyro_bias+gps_dropout"
    assert iv.channels == (("attack", "gps_bias"), ("attack", "imu_gyro_bias"),
                           ("fault", "gps_dropout"))


def test_from_labels_rejects_unknown():
    with pytest.raises(ValueError):
        Intervention.from_labels(attack="warp_drive")


def test_removed_is_empty_and_none_labelled():
    gone = BASE.removed()
    assert gone.empty
    assert gone.label == "none"
    attack, fault = gone.campaigns()
    assert not attack.attacks
    assert not fault.faults


def test_with_channels_preserves_order_and_kind():
    iv = Intervention.from_labels(attack="gps_bias+imu_gyro_bias",
                                  fault="gps_dropout")
    kept = iv.with_channels((("fault", "gps_dropout"),
                             ("attack", "imu_gyro_bias")))
    assert kept.attacks == ("imu_gyro_bias",)
    assert kept.faults == ("gps_dropout",)
