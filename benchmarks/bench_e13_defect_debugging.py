"""Bench E13 (extension) — Table 9: controller-defect debugging."""

from conftest import run_and_print

from repro.experiments import build_defect_debugging


def test_e13_defect_debugging(benchmark, quick_config):
    table = run_and_print(benchmark, build_defect_debugging, quick_config)
    rows = {r[0]: r for r in table.rows}

    def frac(cell):
        num, den = cell.split()[0].split("/")
        return int(num) / int(den)

    # Extension-shape claims: no false positives on the healthy controller,
    # every defect detected and identified within the regression set, and
    # the deadband defect (the gap that motivated A20) caught via A20.
    assert frac(rows["none"][2]) == 0.0
    for defect in ("ctrl_gain_error", "ctrl_sign_flip", "ctrl_stale_input",
                   "ctrl_deadband", "ctrl_saturation"):
        assert frac(rows[defect][2]) == 1.0, f"{defect} undetected"
        assert frac(rows[defect][3]) == 1.0, f"{defect} misidentified"
    assert "A20" in rows["ctrl_deadband"][4]
