"""Per-session state: one vehicle's incremental monitor and record log.

A session is one trace streamed by one client.  The server keeps, per
session:

* the **record log** — every record received so far, in order (this is
  what checkpoints persist and what the final verdict is scored from);
* an **incremental monitor** — a pooled
  :class:`~repro.core.monitor.OnlineMonitor` fed as chunks arrive, so
  violation episodes are pushed to the client *live*, long before the
  stream ends;
* the **chunk cursor** (``next_seq``) — the exactly-once bookkeeping.
  Chunks carry consecutive sequence numbers; a duplicate (``seq <
  next_seq``, e.g. a client retrying after a lost ACK) is acknowledged
  but **not re-applied**, and a gap (``seq > next_seq``) is rejected so
  the client can fall back to resume.  Between those two rules a record
  can never be fed to the monitor twice or skipped.

The final verdict is *not* the incremental monitor's report: it is
:func:`score_trace_bytes` — plain offline
:func:`~repro.core.checker.check_trace` over the assembled trace, run on
a worker shard.  That makes the service's verdict byte-identical to the
offline oracle *by construction* (same function, same records — the
binary chunk format round-trips float64 exactly), and makes shard death
recoverable: the record log, not the worker, owns the state.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.monitor import OnlineMonitor
from repro.core.verdicts import Violation
from repro.trace.io import TraceIOError, trace_from_bytes, trace_to_npz_bytes
from repro.trace.schema import Trace, TraceMeta, TraceRecord

__all__ = [
    "ChunkRejected",
    "MonitorPool",
    "SessionState",
    "chunk_to_bytes",
    "records_from_chunk",
    "score_trace_bytes",
]


class ChunkRejected(ValueError):
    """A chunk cannot be applied to this session (gap, overlap, garbage)."""


def chunk_to_bytes(meta: TraceMeta, records: Sequence[TraceRecord]) -> bytes:
    """Serialize a slice of records as one binary chunk payload.

    The payload *is* a complete binary trace (the PR 5 ``.npz`` format),
    so the server decodes it with the same magic-sniffing, version-checked
    reader the run cache uses — torn or corrupt chunks fail its structure
    checks instead of smuggling garbage records into a monitor.
    """
    return trace_to_npz_bytes(Trace(meta, records))


def records_from_chunk(data: bytes) -> tuple[TraceMeta, list[TraceRecord]]:
    """Decode one chunk payload back into its metadata and records."""
    trace = trace_from_bytes(data)
    return trace.meta, list(trace.records)


def score_trace_bytes(data: bytes) -> dict:
    """Score one complete session trace: the worker-shard work unit.

    Takes the binary trace payload (not a ``Trace`` object) so the bytes
    cross the process boundary without a pickle of 40+ record fields, and
    returns a JSON-ready dict (the VERDICT frame's header).  Top-level so
    a ``ProcessPoolExecutor`` can import it by reference.

    The report inside is exactly offline
    :func:`~repro.core.checker.check_trace` on the same records — the
    byte-identical verdict contract the chaos suite enforces.
    """
    trace = trace_from_bytes(data)
    report = check_trace(trace)
    diagnosis = diagnose(report) if report.any_fired else None
    onset = trace.attack_onset()
    latency = (report.detection_latency(onset) if onset is not None
               else None)
    return {
        "n_records": len(trace),
        "report": report.to_dict(),
        "any_fired": report.any_fired,
        "top_cause": (diagnosis.top().cause if diagnosis is not None
                      and diagnosis.ranking else None),
        "attack_onset": onset,
        "detection_latency": latency,
    }


class MonitorPool:
    """A free-list of reusable :class:`OnlineMonitor` instances.

    Building the 24-assertion catalog per session is measurable overhead
    at fleet scale; :meth:`OnlineMonitor.reset` makes the instances
    reusable, so the pool hands back recycled monitors and only
    constructs a new catalog when the free list is empty.
    """

    def __init__(self, max_idle: int = 64):
        self.max_idle = max_idle
        self._idle: list[OnlineMonitor] = []
        self.created = 0
        self.reused = 0

    def acquire(self) -> OnlineMonitor:
        if self._idle:
            monitor = self._idle.pop()
            monitor.reset()
            self.reused += 1
            return monitor
        self.created += 1
        return OnlineMonitor(default_catalog())

    def release(self, monitor: OnlineMonitor | None) -> None:
        if monitor is not None and len(self._idle) < self.max_idle:
            self._idle.append(monitor)


class SessionState:
    """Everything the server tracks for one streaming session."""

    def __init__(self, session_id: str, meta: TraceMeta,
                 monitor: OnlineMonitor | None = None):
        self.session_id = session_id
        self.meta = meta
        self.monitor = monitor
        self.records: list[TraceRecord] = []
        self.next_seq = 0
        self.finished = False
        self.verdict: dict | None = None
        self.live_violations: list[Violation] = []
        self.buffered_bytes = 0
        """Wire bytes accepted but not yet checkpointed (backpressure
        accounting)."""

    # -- ingest ---------------------------------------------------------
    def apply_chunk(self, seq: int, payload: bytes) -> list[Violation] | None:
        """Apply one chunk; the exactly-once gate.

        Returns the violations that closed during this chunk, or ``None``
        for a duplicate (already applied — acknowledge again, feed
        nothing).  Raises :class:`ChunkRejected` on a sequence gap, a
        post-finish chunk, an undecodable payload, or records that do not
        extend the log monotonically.
        """
        if self.finished:
            raise ChunkRejected(
                f"session {self.session_id} already finished; its verdict "
                "is immutable")
        if seq < self.next_seq:
            return None  # duplicate delivery: idempotent, do not re-feed
        if seq > self.next_seq:
            raise ChunkRejected(
                f"chunk seq {seq} arrived but {self.next_seq} is next; "
                "resume to learn the server's cursor")
        try:
            _, records = records_from_chunk(payload)
        except TraceIOError as exc:
            raise ChunkRejected(f"undecodable chunk payload: {exc}") from exc
        if not records:
            raise ChunkRejected("chunk carries no records")
        if self.records and records[0].step <= self.records[-1].step:
            raise ChunkRejected(
                f"chunk step {records[0].step} does not extend the log "
                f"(last step {self.records[-1].step})")
        closed: list[Violation] = []
        if self.monitor is not None:
            for record in records:
                closed.extend(self.monitor.feed(record))
        self.records.extend(records)
        self.next_seq = seq + 1
        self.buffered_bytes += len(payload)
        self.live_violations.extend(closed)
        return closed

    def replay(self, records: Sequence[TraceRecord], next_seq: int) -> None:
        """Restore state from a checkpoint: refeed the monitor silently."""
        self.records = list(records)
        self.next_seq = next_seq
        if self.monitor is not None:
            self.monitor.reset()
            for record in self.records:
                self.monitor.feed(record)

    # -- completion ------------------------------------------------------
    def assemble_bytes(self) -> bytes:
        """The full trace received so far, as a binary payload."""
        return chunk_to_bytes(self.meta, self.records)

    def assemble_trace(self) -> Trace:
        return Trace(self.meta, self.records)

    def __repr__(self) -> str:
        return (f"SessionState({self.session_id!r}, n={len(self.records)}, "
                f"next_seq={self.next_seq}, finished={self.finished})")
