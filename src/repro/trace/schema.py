"""Trace schema: the typed per-step record and the trace container.

Channel naming convention:

* ``true_*``   — simulator ground truth (available in simulation, used by
  behaviour assertions and by experiment scoring);
* ``gps_* / imu_* / odom_* / compass_*`` — raw sensor channels *after*
  attack injection (what the vehicle software actually saw);
* ``est_*``   — state-estimator output (what the controller consumed);
* ``*_cmd``   — controller commands; ``*_applied`` — post-actuator values;
* ``attack_*`` — injection ground-truth labels (never visible to
  assertions; used only for scoring detection/diagnosis experiments).

Sensor channels hold the *latest* reading (zero-order hold) plus a
``*_fresh`` flag marking steps where a new reading arrived.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["TraceRecord", "TraceMeta", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One simulation step's worth of observations."""

    step: int
    t: float

    # --- ground truth -------------------------------------------------
    true_x: float = 0.0
    true_y: float = 0.0
    true_yaw: float = 0.0
    true_v: float = 0.0
    true_yaw_rate: float = 0.0
    true_accel: float = 0.0
    true_lat_accel: float = 0.0
    cte_true: float = 0.0
    heading_err_true: float = 0.0
    station_true: float = 0.0
    dist_to_goal: float = 0.0

    # --- sensor channels (post-attack, zero-order hold) ---------------
    gps_x: float = 0.0
    gps_y: float = 0.0
    gps_fresh: bool = False
    imu_yaw_rate: float = 0.0
    imu_accel: float = 0.0
    imu_fresh: bool = False
    odom_speed: float = 0.0
    odom_fresh: bool = False
    compass_yaw: float = 0.0
    compass_fresh: bool = False

    # --- radar / lead vehicle (zero when no lead is present) -----------
    radar_range: float = 0.0
    radar_range_rate: float = 0.0
    radar_fresh: bool = False
    lead_present: bool = False
    gap_true: float = 0.0
    """Ground-truth arc-length gap to the lead vehicle, meters."""
    lead_speed: float = 0.0

    # --- estimator output ---------------------------------------------
    est_x: float = 0.0
    est_y: float = 0.0
    est_yaw: float = 0.0
    est_v: float = 0.0
    est_cov_trace: float = 0.0
    nis_gps: float = 0.0
    nis_speed: float = 0.0
    nis_compass: float = 0.0

    # --- controller view ------------------------------------------------
    cte_est: float = 0.0
    heading_err_est: float = 0.0
    station_est: float = 0.0
    target_speed: float = 0.0
    steer_cmd: float = 0.0
    accel_cmd: float = 0.0

    # --- actuation -------------------------------------------------------
    steer_applied: float = 0.0
    accel_applied: float = 0.0

    # --- attack ground truth (scoring only) ------------------------------
    attack_active: bool = False
    attack_name: str = ""
    attack_channel: str = ""

    # --- fault ground truth (scoring only) -------------------------------
    fault_active: bool = False
    fault_name: str = ""
    fault_channel: str = ""

    # --- degradation supervisor telemetry --------------------------------
    supervisor_mode: str = ""
    """``""`` for unsupervised runs; else ``normal`` / ``dead_reckoning``
    / ``safe_stop`` (see :mod:`repro.control.supervisor`)."""
    supervisor_lost: int = 0
    """Number of sensor channels the supervisor's watchdog flags lost."""

    def replace(self, **changes) -> "TraceRecord":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


_FIELD_NAMES = tuple(f.name for f in fields(TraceRecord))
_STRING_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("str", str))
_BOOL_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("bool", bool))
_INT_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("int", int))


@dataclass(slots=True)
class TraceMeta:
    """Run-level metadata attached to a trace."""

    scenario: str = ""
    controller: str = ""
    attack: str = "none"
    seed: int = 0
    dt: float = 0.05
    route_length: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "controller": self.controller,
            "attack": self.attack,
            "seed": self.seed,
            "dt": self.dt,
            "route_length": self.route_length,
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(data: dict) -> "TraceMeta":
        return TraceMeta(
            scenario=data.get("scenario", ""),
            controller=data.get("controller", ""),
            attack=data.get("attack", "none"),
            seed=int(data.get("seed", 0)),
            dt=float(data.get("dt", 0.05)),
            route_length=float(data.get("route_length", 0.0)),
            extra=dict(data.get("extra", {})),
        )


class Trace:
    """An ordered sequence of :class:`TraceRecord` with run metadata.

    Supports list-style access and vectorized column extraction for the
    metric/analysis layer.
    """

    field_names: tuple[str, ...] = _FIELD_NAMES
    string_channels: frozenset[str] = _STRING_CHANNELS
    """Channels holding labels, not numbers (derived from field types)."""
    bool_channels: frozenset[str] = _BOOL_CHANNELS
    int_channels: frozenset[str] = _INT_CHANNELS

    def __init__(self, meta: TraceMeta | None = None,
                 records: Sequence[TraceRecord] | None = None):
        self.meta = meta or TraceMeta()
        self._records: list[TraceRecord] = list(records) if records else []

    # --- container protocol -------------------------------------------
    def append(self, record: TraceRecord) -> None:
        if self._records and record.step <= self._records[-1].step:
            raise ValueError(
                f"records must have strictly increasing steps "
                f"(got {record.step} after {self._records[-1].step})"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.meta, self._records[index])
        return self._records[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._records)

    @property
    def duration(self) -> float:
        """Time span covered by the trace, seconds."""
        if len(self._records) < 2:
            return 0.0
        return self._records[-1].t - self._records[0].t

    @property
    def dt(self) -> float:
        return self.meta.dt

    # --- column access --------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The named channel as a float numpy array (bools become 0/1)."""
        if name not in _FIELD_NAMES:
            raise KeyError(f"unknown trace channel {name!r}")
        if name in _STRING_CHANNELS:
            raise TypeError(f"channel {name!r} is not numeric; iterate records")
        return np.array([getattr(r, name) for r in self._records], dtype=float)

    def times(self) -> np.ndarray:
        return self.column("t")

    def window(self, t_start: float, t_end: float) -> "Trace":
        """Sub-trace with ``t_start <= t < t_end``."""
        recs = [r for r in self._records if t_start <= r.t < t_end]
        return Trace(self.meta, recs)

    def attack_onset(self) -> float | None:
        """Time of the first step with an active attack, or ``None``."""
        for r in self._records:
            if r.attack_active:
                return r.t
        return None

    def fault_onset(self) -> float | None:
        """Time of the first step with an active benign fault, or ``None``."""
        for r in self._records:
            if r.fault_active:
                return r.t
        return None

    def __repr__(self) -> str:
        return (
            f"Trace({self.meta.scenario!r}, controller={self.meta.controller!r}, "
            f"attack={self.meta.attack!r}, n={len(self)})"
        )
