"""Named deterministic random streams.

Every stochastic component (each sensor's noise, each attack's jitter)
draws from its own named substream derived from a single scenario seed.
This guarantees two properties the evaluation depends on:

* bit-exact reproducibility of every table from a seed, and
* *stream independence* — adding an attack does not perturb the sensor
  noise sequence, so attacked and nominal runs differ only by the attack.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; asking twice for the same name returns the
    same generator object (so a component keeps its stream across steps).
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError("seed must be a non-negative integer")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on demand."""
        if name not in self._streams:
            digest = hashlib.sha256(name.encode("utf-8")).digest()
            name_key = int.from_bytes(digest[:8], "big")
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.default_rng(seq)
        return self._streams[name]

    @staticmethod
    def per_lane(seeds: "list[int] | tuple[int, ...]") -> tuple["RngStreams", ...]:
        """One independent stream family per batch lane.

        The batched engine (:mod:`repro.sim.batch`) steps many runs at
        once; lane ``i`` must draw *exactly* the stream it would draw in a
        serial :class:`~repro.sim.engine.SimulationRunner` seeded with
        ``seeds[i]``.  Because streams are derived from ``(seed, name)``
        only — never from draw order across components — giving each lane
        its own :class:`RngStreams` rooted at its own seed reproduces the
        serial sequences bit for bit (asserted in
        ``tests/test_sim_rng.py``).
        """
        return tuple(RngStreams(int(seed)) for seed in seeds)

    def child(self, label: str, index: int) -> "RngStreams":
        """A derived stream family (e.g. one per Monte-Carlo repetition)."""
        digest = hashlib.sha256(f"{label}:{index}".encode("utf-8")).digest()
        derived = (self._seed * 1_000_003 + int.from_bytes(digest[:4], "big")) % (2**63)
        return RngStreams(derived)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
