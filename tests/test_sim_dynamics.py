"""Tests for repro.sim.dynamics: bicycle models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.dynamics import (
    DynamicBicycleModel,
    KinematicBicycleModel,
    VehicleParams,
    VehicleState,
)


def roll(model, state, steer, accel, dt, steps):
    for _ in range(steps):
        state = model.step(state, steer, accel, dt)
    return state


class TestVehicleParams:
    def test_defaults_valid(self):
        VehicleParams()

    def test_inconsistent_axles_rejected(self):
        with pytest.raises(ValueError):
            VehicleParams(lf=2.0, lr=2.0, wheelbase=2.7)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            VehicleParams(mass=-1.0)
        with pytest.raises(ValueError):
            VehicleParams(max_steer=0.0)


class TestKinematicModel:
    def test_straight_line(self):
        model = KinematicBicycleModel(VehicleParams(drag_coeff=0.0))
        state = roll(model, VehicleState(v=10.0), 0.0, 0.0, 0.05, 100)
        assert state.x == pytest.approx(50.0, rel=1e-6)
        assert state.y == pytest.approx(0.0, abs=1e-9)
        assert state.yaw == pytest.approx(0.0, abs=1e-12)

    def test_acceleration_from_rest(self):
        model = KinematicBicycleModel(VehicleParams(drag_coeff=0.0))
        state = roll(model, VehicleState(), 0.0, 2.0, 0.01, 100)
        assert state.v == pytest.approx(2.0, rel=1e-6)
        # x = 0.5 a t^2 (midpoint integration is exact for constant accel)
        assert state.x == pytest.approx(1.0, rel=1e-3)

    def test_turn_radius_matches_geometry(self):
        params = VehicleParams(drag_coeff=0.0)
        model = KinematicBicycleModel(params)
        steer = 0.2
        expected_radius = params.wheelbase / math.tan(steer)
        v = 5.0
        state = VehicleState(v=v)
        # Drive a quarter of the circle and check the chord.
        quarter_time = (math.pi / 2) * expected_radius / v
        steps = int(quarter_time / 0.005)
        state = roll(model, state, steer, 0.0, 0.005, steps)
        assert state.x == pytest.approx(expected_radius, rel=0.02)
        assert state.y == pytest.approx(expected_radius, rel=0.02)

    def test_speed_never_negative(self):
        model = KinematicBicycleModel()
        state = roll(model, VehicleState(v=1.0), 0.0, -6.0, 0.05, 50)
        assert state.v == 0.0

    def test_speed_capped(self):
        params = VehicleParams(max_speed=15.0, drag_coeff=0.0)
        model = KinematicBicycleModel(params)
        state = roll(model, VehicleState(v=14.0), 0.0, 3.0, 0.05, 100)
        assert state.v == pytest.approx(15.0)

    def test_inputs_clamped(self):
        params = VehicleParams()
        model = KinematicBicycleModel(params)
        state = model.step(VehicleState(v=5.0), 10.0, 100.0, 0.05)
        assert state.steer == pytest.approx(params.max_steer)
        assert state.accel == pytest.approx(params.max_accel)

    def test_drag_decays_speed(self):
        model = KinematicBicycleModel(VehicleParams(drag_coeff=0.05))
        state = roll(model, VehicleState(v=10.0), 0.0, 0.0, 0.05, 200)
        assert 0.0 < state.v < 10.0

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            KinematicBicycleModel().step(VehicleState(), 0.0, 0.0, 0.0)

    @settings(max_examples=30)
    @given(
        steer=st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
        v=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    def test_yaw_always_normalized(self, steer, v):
        model = KinematicBicycleModel()
        state = roll(model, VehicleState(v=v), steer, 0.0, 0.05, 200)
        assert -math.pi < state.yaw <= math.pi


class TestDynamicModel:
    def test_low_speed_blends_to_kinematic(self):
        params = VehicleParams(drag_coeff=0.0)
        dyn = DynamicBicycleModel(params, blend_speed=3.0)
        kin = KinematicBicycleModel(params)
        s0 = VehicleState(v=1.0)
        a = dyn.step(s0, 0.1, 0.5, 0.05)
        b = kin.step(s0, 0.1, 0.5, 0.05)
        assert a == b

    def test_steady_state_turn_close_to_kinematic(self):
        # At moderate speed / curvature the dynamic model converges to a
        # steady yaw rate near the kinematic prediction.
        params = VehicleParams(drag_coeff=0.0)
        dyn = DynamicBicycleModel(params)
        steer = 0.05
        v = 12.0
        state = VehicleState(v=v)
        state = roll(dyn, state, steer, 0.0, 0.01, 500)
        kin_yaw_rate = v * math.tan(steer) / params.wheelbase
        assert state.yaw_rate == pytest.approx(kin_yaw_rate, rel=0.25)

    def test_develops_lateral_velocity_in_turn(self):
        dyn = DynamicBicycleModel(VehicleParams(drag_coeff=0.0))
        state = roll(dyn, VehicleState(v=15.0), 0.08, 0.0, 0.01, 200)
        assert state.vy != 0.0

    def test_invalid_blend_speed(self):
        with pytest.raises(ValueError):
            DynamicBicycleModel(blend_speed=0.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            DynamicBicycleModel().step(VehicleState(v=5.0), 0.0, 0.0, -0.1)


class TestVehicleState:
    def test_pose_and_helpers(self):
        s = VehicleState(x=1.0, y=2.0, yaw=0.5, v=3.0, yaw_rate=0.2)
        assert s.pose.x == 1.0
        assert s.position.y == 2.0
        assert s.lateral_accel == pytest.approx(0.6)

    def test_speed_includes_lateral(self):
        s = VehicleState(v=3.0, vy=4.0)
        assert s.speed == pytest.approx(5.0)

    def test_with_pose_normalizes(self):
        s = VehicleState().with_pose(0.0, 0.0, 3 * math.pi)
        assert s.yaw == pytest.approx(math.pi)
