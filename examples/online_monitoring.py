"""Online monitoring through the CARLA-style API.

Drives a vehicle through the carla_lite facade (the same interaction shape
as the paper's CARLA Python tooling), assembles trace records on the fly
from sensor callbacks, and streams them into the online monitor — printing
each violation the moment its episode closes, as an on-vehicle watchdog
would.

Run:  python examples/online_monitoring.py
"""

import math

from repro.carla_lite import Transform, VehicleControl, World
from repro.core import OnlineMonitor, default_catalog
from repro.trace.schema import TraceRecord

DT = 0.05
GYRO_BIAS_ONSET_S = 10.0
GYRO_BIAS_END_S = 20.0
GYRO_BIAS = 0.08  # rad/s injected into the IMU stream mid-run


def main() -> None:
    world = World(dt=DT, seed=3)
    ego = world.spawn_vehicle(Transform(0.0, 0.0, 0.0))

    latest = {}
    world.spawn_sensor("sensor.other.gnss").listen(
        lambda fix: latest.__setitem__("gps", fix))
    world.spawn_sensor("sensor.other.imu").listen(
        lambda r: latest.__setitem__("imu", r))
    world.spawn_sensor("sensor.other.wheel_odometry").listen(
        lambda r: latest.__setitem__("odom", r))
    world.spawn_sensor("sensor.other.compass").listen(
        lambda r: latest.__setitem__("compass", r))

    # Monitor only the channels this minimal loop populates.
    monitor = OnlineMonitor(default_catalog(("A5", "A6", "A7", "A8")))
    print("driving straight with cruise throttle; injecting an IMU gyro "
          f"bias during t=[{GYRO_BIAS_ONSET_S:.0f}, {GYRO_BIAS_END_S:.0f}] "
          "s ...\n")

    violations = 0
    for step in range(int(30.0 / DT)):
        t = world.time
        ego.apply_control(VehicleControl(throttle=0.35))
        world.tick()

        imu_rate = latest["imu"].yaw_rate if "imu" in latest else 0.0
        if GYRO_BIAS_ONSET_S <= t < GYRO_BIAS_END_S:
            imu_rate += GYRO_BIAS  # the attack, at the message level

        record = TraceRecord(
            step=step,
            t=t,
            gps_x=latest["gps"].x if "gps" in latest else 0.0,
            gps_y=latest["gps"].y if "gps" in latest else 0.0,
            gps_fresh="gps" in latest and latest["gps"].t == t,
            imu_yaw_rate=imu_rate,
            imu_fresh=True,
            odom_speed=latest["odom"].speed if "odom" in latest else 0.0,
            odom_fresh="odom" in latest,
            compass_yaw=latest["compass"].yaw if "compass" in latest else 0.0,
            compass_fresh="compass" in latest,
        )
        for violation in monitor.feed(record):
            violations += 1
            print(f"  [t={t:5.1f} s] VIOLATION {violation.assertion_id} "
                  f"({violation.name}), severity {violation.severity:.2f}")

    report = monitor.finish()
    print(f"\nrun complete: {violations} violation episode(s) streamed, "
          f"fired assertions: {report.fired_ids}")
    expected = "A8" in report.fired_ids
    print("the IMU/compass consistency assertion caught the gyro bias: "
          f"{'yes' if expected else 'no'}")
    assert math.isclose(world.time, 30.0, abs_tol=1e-6)


if __name__ == "__main__":
    main()
