"""Shared sensor machinery: rate scheduling and noise stream wiring."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SensorConfig", "Sensor"]


@dataclass(frozen=True, slots=True)
class SensorConfig:
    """Configuration common to all sensors."""

    rate_hz: float
    """Sampling rate; a reading is produced every ``1/rate_hz`` seconds."""
    dropout_prob: float = 0.0
    """Per-sample probability that the reading is lost (no output)."""

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if not 0.0 <= self.dropout_prob < 1.0:
            raise ValueError("dropout_prob must be in [0, 1)")

    @property
    def period(self) -> float:
        return 1.0 / self.rate_hz


class Sensor:
    """Base sensor: decides *when* to sample; subclasses decide *what*.

    Subclasses implement ``_measure(t, state) -> reading``.  The base class
    handles the sampling schedule and dropout so all sensors share the same
    timing semantics: the first sample fires at t=0, then every period.
    """

    channel: str = "sensor"

    def __init__(self, config: SensorConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        self._next_sample_time = 0.0

    def reset(self) -> None:
        """Restart the sampling schedule (scenario start)."""
        self._next_sample_time = 0.0

    def sample_due(self, t: float) -> bool:
        """Advance the schedule; True iff a sample is due (and not dropped).

        A single sample at most is produced per call; the engine polls
        every simulation step and steps are shorter than sensor periods.
        """
        if t + 1e-9 < self._next_sample_time:
            return False
        self._next_sample_time += self.config.period
        # Catch up if the caller skipped time (should not happen in the
        # fixed-step engine, but keeps the schedule well defined).
        if self._next_sample_time <= t:
            self._next_sample_time = t + self.config.period
        if self.config.dropout_prob > 0.0 and (
            self.rng.random() < self.config.dropout_prob
        ):
            return False
        return True

    def poll(self, t: float, state) -> object | None:
        """Return a reading if one is due at time ``t``, else ``None``."""
        if not self.sample_due(t):
            return None
        return self._measure(t, state)

    def _measure(self, t: float, state) -> object:
        raise NotImplementedError
