"""Command-line interface: ``adassure <command>``.

Commands:

* ``run`` — simulate one scenario/controller/attack (and/or benign sensor
  fault), check it, diagnose it, and print the debugging report
  (optionally save the trace).
* ``check`` — run the assertion catalog over a saved trace file.
* ``experiment`` — regenerate one or all evaluation tables (e1..e14),
  optionally in parallel (``--workers``), with the batched lockstep
  simulation engine (``--sim-engine batch``) and with campaign stats
  (``--stats``).
* ``explain`` — counterfactual root-cause isolation: re-simulate a
  violating run with the injection removed, delta-debug the injection
  window/channels/magnitude to the minimal violating intervention, and
  print the causal report (see ``docs/counterfactual.md``); accepts a
  saved trace, a 40-hex cache key, or explicit flags.
* ``cache`` — inspect (``stats``) or wipe (``clear``) the persistent
  on-disk run cache that accelerates repeated campaigns; ``stats`` also
  reports campaign lease/manifest health (active/stale leases, orphaned
  shards, lease-conflict events).
* ``worker`` — join a distributed campaign as one worker process: claim
  lease-guarded grid shards from a serialized grid spec, execute them,
  and commit results to the shared cache (see ``docs/distributed.md``).
* ``diff`` — compare two saved traces and print the divergence timeline.
* ``calibrate`` — fit assertion thresholds on nominal trace files and save
  a catalog spec.
* ``faults`` — list the benign fault classes (``adassure faults list``).
* ``serve`` — run the streaming trace-ingest server (fleet monitoring:
  TCP endpoint, worker shards, crash-safe session checkpoints).
* ``stream`` — stream a saved trace into a running server and print the
  verdict; ``--status`` asks the server for its fleet aggregates.
* ``list`` — show available scenarios, controllers, attacks, faults,
  assertions.

Global flags: ``--profile [FILE]`` (or ``ADASSURE_PROFILE=1``) wraps the
whole command in :mod:`cProfile`, writes a ``pstats`` dump (default
``adassure.pstats``), prints the top-20 functions by cumulative time, and
— when combined with ``experiment --stats --stats-json`` — embeds that
summary into the stats JSON.

Invalid inputs (negative intensities, onsets past the scenario end, empty
seed lists) exit with status 2 and an actionable message on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.attacks.campaign import ATTACK_CLASSES, standard_attack
from repro.core.catalog import CATALOG_IDS, default_catalog, make_assertion
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.report import render_check_report, render_diagnosis
from repro.faults.campaign import FAULT_CLASSES, standard_fault
from repro.sim.engine import run_scenario
from repro.sim.scenario import acc_scenario, standard_scenarios
from repro.trace.io import read_trace_auto, write_trace_jsonl, write_trace_npz

__all__ = ["main"]

_CONTROLLERS = ("pure_pursuit", "stanley", "lqr", "mpc")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.intensity <= 0:
        raise ValueError(
            f"--intensity must be positive, got {args.intensity:g} "
            "(1.0 is the nominal magnitude)")
    if args.onset < 0:
        raise ValueError(f"--onset must be >= 0, got {args.onset:g}")
    scenarios = standard_scenarios(seed=args.seed)
    if args.scenario == "acc_follow":
        scenario = acc_scenario(seed=args.seed)
    elif args.scenario in scenarios:
        scenario = scenarios[args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; try: "
              f"{', '.join(scenarios)}, acc_follow", file=sys.stderr)
        return 2
    if args.onset >= scenario.duration:
        raise ValueError(
            f"--onset {args.onset:g}s is at or past the end of "
            f"{args.scenario!r} (duration {scenario.duration:g}s); "
            "the injection would never activate")
    campaign = standard_attack(args.attack, intensity=args.intensity,
                               onset=args.onset)
    faults = standard_fault(args.fault, intensity=args.intensity,
                            onset=args.onset)
    result = run_scenario(scenario, controller=args.controller,
                          campaign=campaign, faults=faults,
                          supervised=args.supervised)
    report = check_trace(result.trace, default_catalog())
    print(render_check_report(report))
    print()
    print(render_diagnosis(diagnose(report)))
    m = result.metrics
    print()
    print(f"behaviour: mean|cte|={m.mean_abs_cte:.2f} m  "
          f"max|cte|={m.max_abs_cte:.2f} m  goal={'yes' if m.goal_reached else 'no'}  "
          f"diverged={'yes' if result.outcome.diverged else 'no'}")
    if args.save:
        if args.save.endswith(".npz"):
            write_trace_npz(result.trace, args.save)
        else:
            write_trace_jsonl(result.trace, args.save)
        print(f"trace saved to {args.save}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    trace = read_trace_auto(args.trace)
    report = check_trace(trace, default_catalog())
    print(render_check_report(report))
    print()
    print(render_diagnosis(diagnose(report)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig
    from repro.experiments.export import save_tables
    from repro.experiments.stats import STATS

    if args.sim_engine:
        # run_grid resolves the engine from this env var, so the choice
        # reaches every experiment (and any pool worker it spawns).
        os.environ["ADASSURE_SIM"] = args.sim_engine
    if args.executor:
        # Same routing for the campaign executor (auto/serial/pool/
        # distributed) and the distributed fleet size.
        os.environ["ADASSURE_EXECUTOR"] = args.executor
    if args.dist_workers is not None:
        os.environ["ADASSURE_DIST_WORKERS"] = str(args.dist_workers)

    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    if args.seeds is not None:
        entries = [s for s in args.seeds.split(",") if s.strip()]
        if not entries:
            raise ValueError(
                "--seeds must name at least one seed, e.g. --seeds 1,7,42")
        try:
            seeds = tuple(int(s) for s in entries)
        except ValueError:
            raise ValueError(
                f"--seeds must be comma-separated integers, got {args.seeds!r}"
            ) from None
        import dataclasses
        config = dataclasses.replace(config, seeds=seeds)
    ids = list(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    STATS.reset()
    for exp_id in ids:
        if exp_id not in ALL_EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; try: "
                  f"{', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
        output = ALL_EXPERIMENTS[exp_id](config, workers=args.workers)
        tables = output if isinstance(output, list) else [output]
        for table in tables:
            print(table.render())
            print()
        if args.save_dir:
            written = save_tables(tables, args.save_dir)
            for path in written:
                print(f"saved {path}")
    if args.stats:
        print(STATS.render())
        if args.stats_json:
            path = STATS.write_json(args.stats_json)
            print(f"stats written to {path}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.experiments.counterfactual import explain, resolve_cache_key
    from repro.experiments.stats import STATS

    scenario = args.scenario
    controller = args.controller
    attack = args.attack
    intensity = args.intensity
    onset = args.onset
    seed = args.seed
    extra: dict = {}
    if args.target:
        if os.path.exists(args.target):
            trace = read_trace_auto(args.target)
            meta = trace.meta
            if not meta.scenario or not meta.controller:
                print(f"trace {args.target!r} carries no scenario/controller "
                      "metadata; pass --scenario/--controller instead",
                      file=sys.stderr)
                return 2
            scenario, controller = meta.scenario, meta.controller
            attack, seed = meta.attack, meta.seed
            trace_onset = trace.attack_onset()
            if trace_onset is not None:
                onset = trace_onset
        else:
            try:
                resolved = resolve_cache_key(args.target)
            except ValueError as exc:
                print(f"{exc} (and no such trace file exists)",
                      file=sys.stderr)
                return 2
            if resolved is None:
                print(f"cache key {args.target} matches no checkpointed "
                      "grid point or ledgered off-grid run; pass the "
                      "run's flags instead "
                      "(--scenario/--controller/--attack/...)",
                      file=sys.stderr)
                return 2
            if isinstance(resolved, dict):
                # An off-grid entry from the params ledger (E10–E13
                # sweeps, probe fleet): the dict is explain() kwargs.
                scenario = resolved.pop("scenario")
                controller = resolved.pop("controller", controller)
                attack = resolved.pop("attack", attack)
                intensity = resolved.pop("intensity", intensity)
                seed = resolved.pop("seed", seed)
                onset = resolved.pop("onset", onset)
                args.fault = resolved.pop("fault", args.fault)
                dur = resolved.pop("duration", None)
                extra = resolved
            else:
                scenario, controller, attack, intensity, seed, onset, dur \
                    = resolved
                extra = {}
            if args.duration is None and dur is not None:
                args.duration = dur
    STATS.reset()
    report = explain(
        scenario, controller, attack=attack, fault=args.fault,
        intensity=intensity, onset=onset, seed=seed,
        duration=args.duration, budget=args.budget,
        resolution=args.resolution, sim_engine=args.sim_engine,
        **extra,
    )
    print(report.render())
    if args.stats:
        print()
        print(STATS.render())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import RunCache

    cache = RunCache()
    if args.action == "stats":
        from repro.experiments.distributed import lease_health

        stats = cache.stats()
        print(f"cache root : {stats['root']}")
        print(f"entries    : {stats['entries']}")
        print(f"size       : {stats['bytes'] / 1e6:.2f} MB")
        health = lease_health(cache)
        print(f"leases     : {health['active_leases']} active, "
              f"{health['stale_leases']} stale")
        print(f"shards     : {health['shard_boards']} board(s), "
              f"{health['orphaned_shards']} orphaned")
        print(f"conflicts  : {health['lease_conflicts']} lease event(s)")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.root}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.distributed import GridSpec, run_worker

    try:
        spec = GridSpec.load(args.grid_file)
    except OSError as exc:
        print(f"error: cannot read grid spec {args.grid_file!r}: {exc}",
              file=sys.stderr)
        return 2
    report = run_worker(
        spec,
        worker_id=args.worker_id,
        max_shards=args.max_shards,
        retries=args.retries,
        sim_engine=args.sim_engine,
        ttl=args.lease_ttl,
        max_wait_s=args.max_wait,
    )
    print(json.dumps(report.as_dict(), indent=2))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.trace.diff import diff_traces

    reference = read_trace_auto(args.reference)
    candidate = read_trace_auto(args.candidate)
    diff = diff_traces(reference, candidate)
    print(diff.render())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.core.spec import CatalogSpec
    from repro.core.tuning import calibrate_catalog

    traces = [read_trace_auto(path) for path in args.traces]
    result = calibrate_catalog(traces, target_headroom=args.headroom)
    print(result.summary())
    spec = CatalogSpec.from_calibration(result)
    spec.save(args.output)
    print(f"catalog spec written to {args.output}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    print("benign fault classes (adassure run --fault <class>):")
    for name in FAULT_CLASSES:
        fault = standard_fault(name).faults[0]
        model = type(fault).__name__
        print(f"  {name:<18} [{fault.channel:<8}] {model}")
    print("combine channels in experiments via "
          "repro.faults.combined_fault (e.g. gps_dropout+compass_dropout)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import ServerConfig, TraceIngestServer
    from repro.service.store import LeaseConflict

    config = ServerConfig(
        host=args.host, port=args.port, shards=args.shards,
        store_dir=args.store_dir,
        idle_timeout_s=args.idle_timeout,
        max_inflight_bytes=args.max_inflight_mb << 20,
    )

    async def _serve() -> int:
        server = TraceIngestServer(config)
        try:
            await server.start()
        except LeaseConflict as exc:
            print(f"error: another server already owns this checkpoint "
                  f"store ({exc}); point --store-dir elsewhere or stop it",
                  file=sys.stderr)
            return 2
        checkpointed = server.store.session_ids()
        print(f"listening on {config.host}:{server.port}  "
              f"(shards={config.shards}, store={server.store.root}, "
              f"{len(checkpointed)} resumable session(s))")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
            print()
            print(server.aggregates.render())
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.core.verdicts import CheckReport
    from repro.service.client import fetch_status, stream_trace

    if args.status:
        status = asyncio.run(fetch_status(args.host, args.port))
        print(json.dumps(status, indent=2))
        return 0
    if not args.trace:
        raise ValueError("stream needs a trace file (or --status)")
    trace = read_trace_auto(args.trace)
    session_id = args.session_id or os.path.basename(args.trace)
    outcome = asyncio.run(stream_trace(
        trace, args.host, args.port, session_id,
        chunk_records=args.chunk_records))
    verdict = outcome.verdict
    print(f"session {session_id}: {outcome.chunks_applied} chunk(s), "
          f"{len(outcome.live_violations)} live violation(s), "
          f"{outcome.busy_retries} busy retr(ies), "
          f"{outcome.reconnects} reconnect(s)"
          + (" [verdict replayed from checkpoint]"
             if outcome.resumed_finished else ""))
    print()
    print(render_check_report(CheckReport.from_dict(verdict["report"])))
    if verdict.get("top_cause"):
        print(f"\ntop cause: {verdict['top_cause']}  "
              f"(detection latency: {verdict['detection_latency']})")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("scenarios:  " + ", ".join(standard_scenarios()) + ", acc_follow")
    print("controllers: " + ", ".join(_CONTROLLERS))
    print("attacks:     none, " + ", ".join(ATTACK_CLASSES))
    print("faults:      none, " + ", ".join(FAULT_CLASSES))
    print("assertions:")
    for aid in CATALOG_IDS:
        a = make_assertion(aid)
        print(f"  {aid:<4} [{a.category:<11}] {a.name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adassure",
        description="ADAssure: assertion-based debugging for AD control "
                    "algorithms (DATE 2024 reproduction)",
    )
    parser.add_argument("--profile", nargs="?", const="adassure.pstats",
                        default=None, metavar="FILE",
                        help="cProfile the command; write a pstats dump "
                             "(default adassure.pstats) and print the "
                             "top-20 cumulative functions "
                             "(env: ADASSURE_PROFILE=1)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate, check and diagnose one run")
    p_run.add_argument("--scenario", default="s_curve")
    p_run.add_argument("--controller", default="pure_pursuit",
                       choices=_CONTROLLERS)
    p_run.add_argument("--attack", default="none",
                       choices=("none",) + tuple(ATTACK_CLASSES))
    p_run.add_argument("--fault", default="none",
                       choices=("none",) + tuple(FAULT_CLASSES),
                       help="benign sensor fault to inject (composes "
                            "with --attack; see 'adassure faults list')")
    p_run.add_argument("--supervised", action="store_true",
                       help="wrap the controller in the graceful-"
                            "degradation supervisor (watchdog + safe stop)")
    p_run.add_argument("--intensity", type=float, default=1.0)
    p_run.add_argument("--onset", type=float, default=15.0)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--save", metavar="TRACE.{jsonl,npz}",
                       help="save the trace for later 'adassure check' "
                            "(a .npz suffix selects the columnar binary "
                            "format; anything else writes JSONL)")
    p_run.set_defaults(func=_cmd_run)

    p_check = sub.add_parser("check", help="check a saved trace file")
    p_check.add_argument("trace",
                         help="path to a saved trace (.jsonl/.jsonl.gz/"
                              ".npz; format is sniffed)")
    p_check.set_defaults(func=_cmd_check)

    p_exp = sub.add_parser("experiment", help="regenerate evaluation tables")
    p_exp.add_argument("id", help="experiment id e1..e9, or 'all'")
    p_exp.add_argument("--quick", action="store_true",
                       help="reduced grid (same shape, faster)")
    p_exp.add_argument("--save-dir", metavar="DIR",
                       help="also export each table as CSV + Markdown")
    p_exp.add_argument("--workers", type=int, default=None, metavar="N",
                       help="parallel simulation workers (default: "
                            "$ADASSURE_WORKERS or cpu_count-1; 1 = serial)")
    p_exp.add_argument("--sim-engine", choices=("serial", "batch"),
                       default=None,
                       help="simulation engine for uncached grid points "
                            "(default: $ADASSURE_SIM, else auto — batch "
                            "when >=2 points are pending and NumPy "
                            "imports; 'batch' steps compatible points in "
                            "lockstep as NumPy arrays, bit-identical "
                            "results)")
    p_exp.add_argument("--seeds", metavar="S1,S2,...", default=None,
                       help="override the config's seed list "
                            "(comma-separated integers, non-empty)")
    p_exp.add_argument("--executor",
                       choices=("auto", "serial", "pool", "distributed"),
                       default=None,
                       help="campaign executor for uncached grid points "
                            "(default: $ADASSURE_EXECUTOR or auto; "
                            "'distributed' spawns a lease-claimed worker "
                            "fleet sharing the disk cache)")
    p_exp.add_argument("--dist-workers", type=int, default=None, metavar="N",
                       help="worker processes for --executor distributed "
                            "(default: $ADASSURE_DIST_WORKERS or >=2)")
    p_exp.add_argument("--stats", action="store_true",
                       help="print campaign stats (phase times, cache "
                            "hits, retries/quarantine, worker "
                            "utilization) after the tables")
    p_exp.add_argument("--stats-json", metavar="FILE",
                       help="with --stats: also dump machine-readable "
                            "stats JSON (e.g. BENCH_runner.json)")
    p_exp.set_defaults(func=_cmd_experiment)

    p_explain = sub.add_parser(
        "explain",
        help="counterfactually isolate the minimal intervention "
             "behind a violating run")
    p_explain.add_argument(
        "target", nargs="?", default=None,
        help="a saved trace file or a 40-hex run-cache key; omitted, "
             "the run is described by the flags below")
    p_explain.add_argument("--scenario", default="urban_loop")
    p_explain.add_argument("--controller", default="pure_pursuit",
                           choices=_CONTROLLERS)
    p_explain.add_argument("--attack", default="none",
                           help="'+'-composed attack label, e.g. "
                                "gps_bias or gps_bias+imu_bias")
    p_explain.add_argument("--fault", default="none",
                           help="'+'-composed benign-fault label")
    p_explain.add_argument("--intensity", type=float, default=1.0)
    p_explain.add_argument("--onset", type=float, default=15.0)
    p_explain.add_argument("--seed", type=int, default=7)
    p_explain.add_argument("--duration", type=float, default=None,
                           metavar="SECONDS",
                           help="truncate the scenario (faster probes)")
    p_explain.add_argument("--budget", type=int, default=48, metavar="N",
                           help="max counterfactual probes (cached or "
                                "fresh) the explanation may spend")
    p_explain.add_argument("--resolution", type=float, default=0.5,
                           metavar="SECONDS",
                           help="granularity of the window bisection")
    p_explain.add_argument("--sim-engine", choices=("serial", "batch"),
                           default=None,
                           help="simulation engine for uncached probes "
                                "(default: $ADASSURE_SIM, else auto — "
                                "batch when probes are pending and NumPy "
                                "imports)")
    p_explain.add_argument("--stats", action="store_true",
                           help="print probe/cache stats after the report")
    p_explain.set_defaults(func=_cmd_explain)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent run cache")
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.set_defaults(func=_cmd_cache)

    p_worker = sub.add_parser(
        "worker", help="join a distributed campaign as one worker process")
    p_worker.add_argument("--grid-file", required=True, metavar="SPEC",
                          help="serialized campaign grid spec "
                               "(<cache>/campaigns/<grid id>.grid.json, "
                               "written by the coordinator)")
    p_worker.add_argument("--worker-id", default=None,
                          help="identity used in lease ownership and done "
                               "markers (default: worker-<pid>)")
    p_worker.add_argument("--max-shards", type=int, default=None, metavar="N",
                          help="stop after claiming N shards "
                               "(default: run until the campaign converges)")
    p_worker.add_argument("--retries", type=int, default=None, metavar="N",
                          help="per-point retry budget (default: "
                               "$ADASSURE_POINT_RETRIES or 2)")
    p_worker.add_argument("--sim-engine", choices=("serial", "batch"),
                          default=None,
                          help="simulation engine for this worker's shards")
    p_worker.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                          help="shard lease TTL in seconds (default: "
                               "$ADASSURE_LEASE_TTL or 60); a worker dead "
                               "this long forfeits its shard")
    p_worker.add_argument("--max-wait", type=float, default=None, metavar="S",
                          help="give up after this long without claimable "
                               "work (default: $ADASSURE_DIST_TIMEOUT or 900)")
    p_worker.set_defaults(func=_cmd_worker)

    p_diff = sub.add_parser("diff", help="diff two saved traces")
    p_diff.add_argument("reference", help="known-good trace (.jsonl)")
    p_diff.add_argument("candidate", help="anomalous trace (.jsonl)")
    p_diff.set_defaults(func=_cmd_diff)

    p_cal = sub.add_parser("calibrate",
                           help="fit assertion thresholds on nominal traces")
    p_cal.add_argument("traces", nargs="+", help="nominal traces (.jsonl)")
    p_cal.add_argument("--headroom", type=float, default=0.1,
                       help="target nominal margin headroom (default 0.1)")
    p_cal.add_argument("--output", default="catalog_spec.json",
                       help="where to write the catalog spec")
    p_cal.set_defaults(func=_cmd_calibrate)

    p_faults = sub.add_parser(
        "faults", help="list the benign sensor-fault classes")
    p_faults.add_argument("action", choices=("list",))
    p_faults.set_defaults(func=_cmd_faults)

    p_serve = sub.add_parser(
        "serve", help="run the streaming trace-ingest server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8790,
                         help="TCP port (0 = ephemeral; default 8790)")
    p_serve.add_argument("--shards", type=int, default=2,
                         help="worker-process shards for verdict scoring "
                              "(0 = score inline; default 2)")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="session checkpoint directory (default: "
                              "$ADASSURE_SERVICE_DIR or the cache root)")
    p_serve.add_argument("--idle-timeout", type=float, default=30.0,
                         metavar="S",
                         help="suspend connections silent this long "
                              "(stalled clients; default 30s)")
    p_serve.add_argument("--max-inflight-mb", type=int, default=32,
                         metavar="MB",
                         help="backpressure credit: un-applied chunk "
                              "bytes before BUSY (default 32 MB)")
    p_serve.set_defaults(func=_cmd_serve)

    p_stream = sub.add_parser(
        "stream", help="stream a saved trace into a running server")
    p_stream.add_argument("trace", nargs="?",
                          help="saved trace (.jsonl/.jsonl.gz/.npz)")
    p_stream.add_argument("--host", default="127.0.0.1")
    p_stream.add_argument("--port", type=int, default=8790)
    p_stream.add_argument("--session-id", default=None,
                          help="session identity (resume key; default: "
                               "the trace file name)")
    p_stream.add_argument("--chunk-records", type=int, default=64,
                          help="records per chunk frame (default 64)")
    p_stream.add_argument("--status", action="store_true",
                          help="print the server's fleet aggregates "
                               "instead of streaming")
    p_stream.set_defaults(func=_cmd_stream)

    p_list = sub.add_parser("list", help="list scenarios/attacks/assertions")
    p_list.set_defaults(func=_cmd_list)
    return parser


def _profile_file(args: argparse.Namespace) -> str | None:
    """The pstats output path when profiling is requested, else ``None``."""
    if args.profile is not None:
        return args.profile
    flag = os.environ.get("ADASSURE_PROFILE", "").strip().lower()
    if flag in ("", "0", "off", "false", "no"):
        return None
    # Any other value enables profiling; a value with a path separator or
    # .pstats suffix doubles as the output file name.
    if flag in ("1", "on", "true", "yes"):
        return "adassure.pstats"
    return os.environ["ADASSURE_PROFILE"].strip()


def _profile_top(stats, n: int = 20) -> list[dict]:
    """The ``n`` heaviest rows of a :class:`pstats.Stats` by cumulative time."""
    rows = []
    for (file, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append({
            "function": f"{file}:{line}({name})",
            "calls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
    rows.sort(key=lambda r: -r["cumtime_s"])
    return rows[:n]


def _run_profiled(args: argparse.Namespace, pstats_file: str) -> int:
    """Execute the command under cProfile: the run+check hot path and
    everything around it.  Dumps the raw profile, prints the top-20
    cumulative summary, and merges both into the ``--stats-json`` payload
    when the command wrote one."""
    import cProfile
    import io
    import json
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        rc = args.func(args)
    finally:
        profiler.disable()
    profiler.dump_stats(pstats_file)
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stream = stats.stream
    stats.sort_stats("cumulative").print_stats(20)
    print()
    print("-- profile (top 20 by cumulative time) --")
    print(stream.getvalue().rstrip())
    print(f"profile written to {pstats_file}")

    stats_json = getattr(args, "stats_json", None)
    if stats_json and getattr(args, "stats", False):
        # Embed the summary into the stats output the command just wrote.
        try:
            from pathlib import Path
            path = Path(stats_json)
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["profile"] = {
                "pstats_file": pstats_file,
                "top_cumulative": _profile_top(stats),
            }
            path.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
            print(f"profile summary merged into {stats_json}")
        except (OSError, ValueError):
            pass  # the profile dump itself already succeeded
    return rc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        pstats_file = _profile_file(args)
        if pstats_file is not None:
            return _run_profiled(args, pstats_file)
        return args.func(args)
    except ValueError as exc:
        # Input validation: every layer below raises ValueError with an
        # actionable message (bad intensities, onsets past the scenario
        # end, empty seed lists, malformed trace files).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
