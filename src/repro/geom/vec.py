"""Immutable 2-D vectors and planar poses.

The simulator works in a flat East-North plane (CARLA-style local frame
without the Z axis).  ``Vec2`` is a tiny frozen dataclass rather than a raw
numpy array so that positions, velocities and offsets carry intent and
support hashing/equality in tests; hot loops convert to numpy explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geom.angles import normalize_angle

__all__ = ["Vec2", "Pose"]


@dataclass(frozen=True, slots=True)
class Vec2:
    """A 2-D vector / point in the East-North plane, in meters."""

    x: float = 0.0
    y: float = 0.0

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def dot(self, other: "Vec2") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (cheaper when only comparing)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading(self) -> float:
        """Angle of the vector w.r.t. the +x axis, in radians in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def unit(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Vec2(self.x / n, self.y / n)

    def perp(self) -> "Vec2":
        """The vector rotated +90 degrees (left normal)."""
        return Vec2(-self.y, self.x)

    def rotated(self, angle: float) -> "Vec2":
        """The vector rotated by ``angle`` radians counter-clockwise."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates (radians)."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))


@dataclass(frozen=True, slots=True)
class Pose:
    """A planar pose: position plus heading (yaw, radians, CCW from +x)."""

    position: Vec2 = Vec2()
    yaw: float = 0.0

    @property
    def x(self) -> float:
        return self.position.x

    @property
    def y(self) -> float:
        return self.position.y

    def forward(self) -> Vec2:
        """Unit vector pointing along the heading."""
        return Vec2(math.cos(self.yaw), math.sin(self.yaw))

    def left(self) -> Vec2:
        """Unit vector pointing to the left of the heading."""
        return Vec2(-math.sin(self.yaw), math.cos(self.yaw))

    def to_local(self, point: Vec2) -> Vec2:
        """Express a world-frame point in this pose's body frame.

        Body frame convention: +x forward, +y left.
        """
        d = point - self.position
        return d.rotated(-self.yaw)

    def to_world(self, point: Vec2) -> Vec2:
        """Express a body-frame point (``+x`` forward) in the world frame."""
        return self.position + point.rotated(self.yaw)

    def moved(self, distance: float) -> "Pose":
        """The pose translated ``distance`` meters along its heading."""
        return Pose(self.position + self.forward() * distance, self.yaw)

    def turned(self, dyaw: float) -> "Pose":
        """The pose rotated in place by ``dyaw`` radians."""
        return Pose(self.position, normalize_angle(self.yaw + dyaw))
