"""Tests for repro.geom.polyline."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom.polyline import Polyline
from repro.geom.routes import arc_route, straight_route, urban_loop_route
from repro.geom.vec import Vec2


def square(side=10.0, closed=True):
    pts = [Vec2(0, 0), Vec2(side, 0), Vec2(side, side), Vec2(0, side)]
    return Polyline(pts, closed=closed)


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([Vec2(0, 0)])

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            Polyline([Vec2(0, 0), Vec2(0, 0), Vec2(1, 0)])

    def test_length_open(self):
        p = Polyline([Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)])
        assert p.length == pytest.approx(7.0)

    def test_closed_adds_closing_segment(self):
        p = square()
        assert p.closed
        assert p.length == pytest.approx(40.0)

    def test_accepts_tuples(self):
        p = Polyline([(0, 0), (1, 0)])
        assert p.length == pytest.approx(1.0)


class TestSample:
    def test_start_and_end(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert p.sample(0.0).point == Vec2(0, 0)
        assert p.sample(10.0).point == Vec2(10, 0)

    def test_midpoint(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        s = p.sample(5.0)
        assert s.point.x == pytest.approx(5.0)
        assert s.heading == pytest.approx(0.0)

    def test_open_clamps(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert p.sample(-5.0).point == Vec2(0, 0)
        assert p.sample(25.0).point == Vec2(10, 0)

    def test_closed_wraps(self):
        p = square()
        s = p.sample(45.0)  # 5 m past a full lap
        assert s.point.x == pytest.approx(5.0)
        assert s.point.y == pytest.approx(0.0, abs=1e-9)

    def test_lookahead(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert p.lookahead(2.0, 3.0).point.x == pytest.approx(5.0)


class TestProject:
    def test_point_on_path(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        proj = p.project(Vec2(4.0, 0.0))
        assert proj.station == pytest.approx(4.0)
        assert proj.cross_track == pytest.approx(0.0, abs=1e-12)

    def test_left_is_positive(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert p.project(Vec2(5, 2)).cross_track == pytest.approx(2.0)
        assert p.project(Vec2(5, -2)).cross_track == pytest.approx(-2.0)

    def test_beyond_ends_clamps_to_vertices(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        proj = p.project(Vec2(15, 3))
        assert proj.point == Vec2(10, 0)
        assert proj.distance == pytest.approx(math.hypot(5, 3))

    def test_hint_speeds_tracking_without_changing_result(self):
        route = arc_route()
        q = Vec2(30.0, 2.0)
        full = route.project(q)
        hinted = route.project(q, hint_station=full.station)
        assert hinted.station == pytest.approx(full.station)
        assert hinted.cross_track == pytest.approx(full.cross_track)

    @settings(max_examples=40)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_sample_project_roundtrip(self, frac):
        route = arc_route(radius=30.0, lead_in=15.0)
        s = frac * route.length
        point = route.sample(s).point
        proj = route.project(point)
        assert proj.distance < 1e-6
        assert proj.station == pytest.approx(s, abs=0.05)


class TestCurvature:
    def test_straight_zero(self):
        p = straight_route(100.0)
        for s in (0.0, 25.0, 50.0, 99.0):
            assert p.sample(s).curvature == pytest.approx(0.0, abs=1e-9)

    def test_arc_matches_radius(self):
        radius = 40.0
        route = arc_route(radius=radius, lead_in=20.0, spacing=0.5)
        # In the middle of the arc the discrete curvature approximates 1/R.
        s_mid = 20.0 + radius * math.pi / 2
        assert route.sample(s_mid).curvature == pytest.approx(1.0 / radius,
                                                              rel=0.05)

    def test_left_turn_positive(self):
        route = arc_route(radius=30.0)
        s_mid = 20.0 + 30.0 * math.pi / 2
        assert route.sample(s_mid).curvature > 0


class TestResample:
    def test_uniform_spacing(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)])
        r = p.resampled(1.0)
        assert r.length == pytest.approx(p.length, rel=0.01)
        assert r.num_segments >= 19

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            straight_route(10.0).resampled(0.0)

    def test_closed_stays_closed(self):
        r = urban_loop_route().resampled(2.0)
        assert r.closed


class TestRemaining:
    def test_open(self):
        p = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert p.remaining(3.0) == pytest.approx(7.0)

    def test_closed_is_length(self):
        p = square()
        assert p.remaining(12.0) == pytest.approx(p.length)
