"""End-to-end server tests: streaming, resume, exactly-once verdicts,
checkpoint recovery across server restarts, the store lease, STATUS.

No pytest-asyncio in the environment: every scenario is a coroutine run
to completion with ``asyncio.run`` inside a plain sync test.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.locking import LeaseConflict
from repro.service.client import StreamError, fetch_status, stream_trace
from repro.service.protocol import FrameType, encode_frame, read_frame
from repro.service.server import ServerConfig, TraceIngestServer
from repro.service.session import chunk_to_bytes

from service_utils import attacked_trace, offline_verdict, serving


class TestStreaming:
    def test_verdict_matches_offline_oracle(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                return await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-1",
                    chunk_records=32)

        outcome = asyncio.run(go())
        assert outcome.verdict["report"] == offline_verdict(trace)
        assert outcome.verdict["any_fired"] is True
        assert outcome.chunks_applied == 7  # ceil(200 / 32)

    def test_live_violations_arrive_before_the_verdict(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                return await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-live",
                    chunk_records=20)

        outcome = asyncio.run(go())
        assert outcome.live_violations, \
            "monitor episodes must be pushed on ACKs mid-stream"
        fired = {v["assertion_id"] for v in outcome.live_violations}
        offline_fired = {
            s["assertion_id"]
            for s in offline_verdict(trace)["summaries"].values()
            if s["fired"]}
        assert fired <= offline_fired

    def test_two_sessions_share_one_connection_lifecycle(self, tmp_path):
        """Sequential sessions on one server; fleet aggregates count both."""
        clean = attacked_trace(num_steps=300, window=(0, 0))
        attacked = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                a = await stream_trace(clean, "127.0.0.1", server.port,
                                       "veh-clean", chunk_records=64)
                b = await stream_trace(attacked, "127.0.0.1", server.port,
                                       "veh-attacked", chunk_records=64)
                status = await fetch_status("127.0.0.1", server.port)
                return a, b, status

        a, b, status = asyncio.run(go())
        assert a.verdict["any_fired"] is False
        assert b.verdict["any_fired"] is True
        fleet = status["fleet"]
        assert fleet["sessions_completed"] == 2
        assert fleet["sessions_violating"] == 1
        assert fleet["per_cause"]["clean"]["sessions"] == 1


class TestResumeExactlyOnce:
    def test_disconnect_and_resume_single_verdict(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-drop",
                    chunk_records=25, disconnect_after_chunks=3)
                return outcome, server.verdicts_issued, server.suspends

        outcome, issued, suspends = asyncio.run(go())
        assert outcome.reconnects >= 1
        assert suspends >= 1
        assert issued == 1, "exactly one verdict per session"
        assert outcome.verdict["report"] == offline_verdict(trace)

    def test_hello_on_checkpointed_session_bounces_to_resume(self, tmp_path):
        """Streaming the same session twice must not recompute: the
        second run gets the stored verdict replayed."""
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                first = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-once",
                    chunk_records=50)
                second = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-once",
                    chunk_records=50)
                return first, second, server

        first, second, server = asyncio.run(go())
        assert not first.resumed_finished
        assert second.resumed_finished
        assert second.chunks_sent == 0, "no records travel on a replay"
        assert second.verdict == first.verdict
        assert server.verdicts_issued == 1
        assert server.verdicts_replayed == 1

    def test_checkpoint_survives_server_restart(self, tmp_path):
        """Kill the server mid-session; a new server resumes the stream
        from the checkpoint and the verdict still matches offline."""
        trace = attacked_trace()
        chunks = [
            chunk_to_bytes(trace.meta, list(trace.records)[i:i + 50])
            for i in range(0, 200, 50)]

        async def first_half():
            async with serving(tmp_path) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(FrameType.HELLO, {
                    "session_id": "veh-restart",
                    "meta": trace.meta.to_dict()}))
                for seq in range(2):
                    writer.write(encode_frame(
                        FrameType.CHUNK, {"seq": seq}, chunks[seq]))
                await writer.drain()
                for _ in range(3):  # WELCOME + 2 ACKs
                    reply = await read_frame(reader)
                    assert reply.type in (FrameType.WELCOME, FrameType.ACK)
                writer.close()
                # server.stop() checkpoints; simulates an orderly kill

        async def second_half():
            async with serving(tmp_path) as server:
                return await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-restart",
                    chunk_records=50)

        asyncio.run(first_half())
        outcome = asyncio.run(second_half())
        assert outcome.chunks_applied == 2, \
            "the resumed stream only sends the unacked half"
        assert outcome.verdict["report"] == offline_verdict(trace)

    def test_second_server_on_live_store_refused(self, tmp_path):
        async def go():
            async with serving(tmp_path) as _:
                second = TraceIngestServer(
                    ServerConfig(store_dir=str(tmp_path), shards=0))
                with pytest.raises(LeaseConflict):
                    await second.start()

        asyncio.run(go())

    def test_store_released_on_stop(self, tmp_path):
        async def go():
            async with serving(tmp_path):
                pass
            async with serving(tmp_path):  # no TTL wait needed
                pass

        asyncio.run(go())


class TestProtocolPolicing:
    def test_finish_on_empty_session_is_nonfatal(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(FrameType.HELLO, {
                    "session_id": "veh-empty",
                    "meta": trace.meta.to_dict()}))
                writer.write(encode_frame(FrameType.FINISH, {}))
                await writer.drain()
                welcome = await read_frame(reader)
                error = await read_frame(reader)
                writer.close()
                return welcome, error

        welcome, error = asyncio.run(go())
        assert welcome.type is FrameType.WELCOME
        assert error.type is FrameType.ERROR
        assert not error.header["fatal"]
        assert "empty" in error.header["message"]

    def test_chunk_without_session_is_fatal(self, tmp_path):
        async def go():
            async with serving(tmp_path) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(FrameType.CHUNK, {"seq": 0},
                                          b"whatever"))
                await writer.drain()
                reply = await read_frame(reader)
                tail = await read_frame(reader)  # server hangs up
                writer.close()
                return reply, tail

        reply, tail = asyncio.run(go())
        assert reply.type is FrameType.ERROR
        assert reply.header["fatal"]
        assert tail is None

    def test_stream_empty_trace_refused_client_side(self, tmp_path):
        empty = attacked_trace(num_steps=0)

        async def go():
            async with serving(tmp_path) as server:
                await stream_trace(empty, "127.0.0.1", server.port, "veh-0")

        with pytest.raises(StreamError, match="empty"):
            asyncio.run(go())


class TestStatus:
    def test_status_surfaces_failure_counters(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                await stream_trace(trace, "127.0.0.1", server.port,
                                   "veh-s", chunk_records=50,
                                   disconnect_after_chunks=1)
                return await fetch_status("127.0.0.1", server.port)

        status = asyncio.run(go())
        counters = status["counters"]
        assert counters["verdicts_issued"] == 1
        assert counters["suspends"] >= 1
        assert counters["resumes"] >= 1
        assert status["sessions"]["active"] == 0
        assert status["fleet"]["detection_latency_s"]["n"] == 1
        assert status["monitor_pool"]["created"] >= 1
