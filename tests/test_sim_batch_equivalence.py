"""Differential tests: batched array-native engine vs the serial oracle.

The batch engine (:mod:`repro.sim.batch`) must reproduce the serial
:class:`~repro.sim.engine.SimulationRunner` *exactly* — every trace
column bit for bit, same metrics, same outcome — for any mix of
controllers, attacks, faults and scenarios it accepts.  Two layers of
evidence (mirroring ``test_checker_equivalence.py``):

* property-based streams (hypothesis) drive the batched dynamics and
  EKF primitives against their serial counterparts step by step;
* full closed-loop grids of real runs (attack x fault x controller,
  heterogeneous batches, ACC with radar, the dynamic model) are
  simulated with both engines and compared column by column.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.campaign import standard_attack
from repro.control.acc import AccController
from repro.control.base import make_lateral_controller
from repro.control.estimator import Ekf, EkfConfig
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.control.supervisor import SupervisedController
from repro.faults.campaign import standard_fault
from repro.sim.batch import BatchCompatError, LaneSpec, run_batch
from repro.sim.batch.dynamics import BatchVehicle
from repro.sim.batch.ekf import BatchEkf
from repro.sim.dynamics import VehicleState
from repro.sim.engine import SimulationRunner
from repro.sim.scenario import acc_scenario, standard_scenarios
from repro.sim.vehicle import Vehicle
from repro.trace.schema import Trace


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------

def assert_traces_identical(serial: Trace, batch: Trace) -> None:
    """Every column of the batched trace equals the serial one bitwise."""
    assert len(serial) == len(batch)
    sc, bc = serial.columns(), batch.columns()
    for name in Trace.field_names:
        a, b = sc.get(name), bc.get(name)
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), (
                f"column {name!r} differs")
        else:
            assert np.array_equal(a, b), f"column {name!r} differs"


def assert_results_identical(serial, batch) -> None:
    assert_traces_identical(serial.trace, batch.trace)
    assert serial.metrics == batch.metrics
    assert serial.outcome == batch.outcome
    assert serial.controller_name == batch.controller_name
    assert serial.attack_label == batch.attack_label


def make_spec(scenario, controller="pure_pursuit", attack=None, fault=None,
              supervised=False, ekf_config=None) -> LaneSpec:
    """Fresh LaneSpec (followers are stateful, so every engine run needs
    its own); mirrors :func:`repro.sim.engine.run_scenario` construction."""
    follower = WaypointFollower(
        make_lateral_controller(controller),
        profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
        acc=AccController() if scenario.lead is not None else None,
    )
    if supervised:
        follower = SupervisedController(follower)
    campaign = standard_attack(attack) if attack else None
    faults = standard_fault(fault) if fault else None
    return LaneSpec(scenario=scenario, follower=follower,
                    campaign=campaign, ekf_config=ekf_config, faults=faults)


def run_both(spec_factories) -> None:
    """Simulate the lanes batched and serially; assert bit-identity."""
    batch_results = run_batch([factory() for factory in spec_factories])
    for factory, batch_result in zip(spec_factories, batch_results):
        spec = factory()
        serial_result = SimulationRunner(
            spec.scenario, spec.follower, spec.campaign,
            spec.ekf_config, faults=spec.faults,
        ).run()
        assert_results_identical(serial_result, batch_result)


# ---------------------------------------------------------------------------
# Property-based primitive streams
# ---------------------------------------------------------------------------

commands = st.tuples(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-6.0, max_value=4.0, allow_nan=False),
)
command_streams = st.lists(st.lists(commands, min_size=1, max_size=25),
                           min_size=1, max_size=4)


class TestDynamicsStreams:
    """BatchVehicle lanes vs serial Vehicles under arbitrary commands."""

    @pytest.mark.parametrize("model", ["kinematic", "dynamic"])
    @settings(max_examples=40, deadline=None)
    @given(streams=command_streams, data=st.data())
    def test_step_streams_match(self, model, streams, data):
        n = len(streams)
        length = max(len(s) for s in streams)
        # Pad every lane's stream to the batch length by holding the
        # last command (the batch steps all lanes every tick).
        streams = [s + [s[-1]] * (length - len(s)) for s in streams]
        x0 = [data.draw(st.floats(-5, 5, allow_nan=False)) for _ in range(n)]
        yaw0 = [data.draw(st.floats(-3.0, 3.0, allow_nan=False))
                for _ in range(n)]
        v0 = [data.draw(st.floats(0.0, 15.0, allow_nan=False))
              for _ in range(n)]

        serial = [Vehicle(model=model,
                          initial_state=VehicleState(x=x0[i], y=-x0[i],
                                                     yaw=yaw0[i], v=v0[i]))
                  for i in range(n)]
        batch = BatchVehicle(
            n, model,
            x=np.array(x0), y=-np.array(x0),
            yaw=np.array(yaw0), v=np.array(v0),
        )
        dt = 0.05
        for step in range(length):
            for i, vehicle in enumerate(serial):
                vehicle.apply_control(*streams[i][step])
            batch.apply_control(
                np.array([streams[i][step][0] for i in range(n)]),
                np.array([streams[i][step][1] for i in range(n)]),
            )
            states = [vehicle.step(dt) for vehicle in serial]
            batch.step(dt)
            for i, state in enumerate(states):
                assert batch.x[i] == state.x
                assert batch.y[i] == state.y
                assert batch.yaw[i] == state.yaw
                assert batch.v[i] == state.v
                assert batch.vy[i] == state.vy
                assert batch.yaw_rate[i] == state.yaw_rate


ekf_ops = st.lists(
    st.tuples(
        st.sampled_from(["predict", "gps", "speed", "compass"]),
        st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
        st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
    ),
    min_size=1, max_size=40,
)


class TestEkfStreams:
    """BatchEkf lanes vs serial Ekf under arbitrary op sequences."""

    @pytest.mark.parametrize("gate_nis", [None, 9.21])
    @settings(max_examples=40, deadline=None)
    @given(ops=ekf_ops)
    def test_op_streams_match(self, gate_nis, ops):
        n = 3
        config = EkfConfig(gate_nis=gate_nis)
        serial = [Ekf(config) for _ in range(n)]
        batch = BatchEkf([config] * n)
        x0 = np.array([0.0, 2.0, -1.5])
        y0 = np.array([1.0, -1.0, 0.5])
        yaw0 = np.array([0.0, 0.7, -2.0])
        v0 = np.array([5.0, 0.0, 9.0])
        for i, ekf in enumerate(serial):
            ekf.reset(x0[i], y0[i], yaw0[i], v0[i])
        batch.reset(x0, y0, yaw0, v0)
        mask = np.ones(n, dtype=bool)
        for op, a, b in ops:
            # Give every lane a distinct measurement stream.
            av = np.array([a + 0.1 * i for i in range(n)])
            bv = np.array([b - 0.2 * i for i in range(n)])
            if op == "predict":
                dt = np.full(n, 0.05)
                for i, ekf in enumerate(serial):
                    ekf.predict(av[i], bv[i], 0.05)
                batch.predict(av, bv, dt, mask)
            elif op == "gps":
                for i, ekf in enumerate(serial):
                    ekf.update_gps(av[i], bv[i])
                batch.update_gps(av, bv, mask)
            elif op == "speed":
                for i, ekf in enumerate(serial):
                    ekf.update_speed(abs(av[i]))
                batch.update_speed(np.abs(av), mask)
            else:
                for i, ekf in enumerate(serial):
                    ekf.update_compass(av[i])
                batch.update_compass(av, mask)
            for i, ekf in enumerate(serial):
                est = ekf.estimate
                assert batch.est_x[i] == est.x
                assert batch.est_y[i] == est.y
                assert batch.est_yaw[i] == est.yaw
                assert batch.est_v[i] == est.v
                assert batch.cov_trace[i] == est.cov_trace
                assert batch.nis_gps[i] == est.nis_gps
                assert batch.nis_speed[i] == est.nis_speed
                assert batch.nis_compass[i] == est.nis_compass


# ---------------------------------------------------------------------------
# Closed-loop differential grids
# ---------------------------------------------------------------------------

def short(name, seed=7, duration=8.0):
    return standard_scenarios(seed=seed, duration=duration)[name]


class TestClosedLoopEquivalence:
    def test_attack_fault_controller_grid(self):
        # One batch covering the attack x fault x controller product the
        # campaign grids exercise (vectorized and object-stepped lanes,
        # injector shims, benign faults and their compositions).
        cases = [
            ("pure_pursuit", None, None),
            ("pure_pursuit", "gps_bias", None),
            ("pure_pursuit", None, "gps_dropout"),
            ("pure_pursuit", "gps_bias", "odom_freeze"),
            ("stanley", "gps_drift", None),
            ("stanley", None, "compass_dropout"),
            ("lqr", "steer_offset", None),
            ("lqr", "odom_scale", "gps_latency"),
            ("mpc", "compass_offset", None),
            ("mpc", None, "gps_intermittent"),
        ]
        run_both([
            (lambda c=c: make_spec(short("s_curve"), controller=c[0],
                                   attack=c[1], fault=c[2]))
            for c in cases
        ])

    def test_heterogeneous_scenarios_rejected(self):
        # Lanes must share dt/step-count/route family; a mixed batch is
        # a loud error, not silently wrong physics.
        specs = [make_spec(short("s_curve")),
                 make_spec(short("straight", duration=12.0))]
        with pytest.raises(BatchCompatError):
            run_batch(specs)

    def test_supervised_and_gated_lanes(self):
        gated = EkfConfig(gate_nis=9.21)
        run_both([
            lambda: make_spec(short("curve"), supervised=True),
            lambda: make_spec(short("curve"), supervised=True,
                              fault="gps_dropout"),
            lambda: make_spec(short("curve"), attack="gps_bias",
                              ekf_config=gated),
            lambda: make_spec(short("curve"), controller="stanley"),
        ])

    def test_seed_diversity(self):
        # Same scenario geometry, different noise tapes per lane.
        run_both([
            (lambda s=s: make_spec(short("lane_change", seed=s)))
            for s in (1, 7, 42)
        ])

    def test_dynamic_model_closed_route(self):
        run_both([
            lambda: make_spec(short("urban_loop", duration=12.0)),
            lambda: make_spec(short("urban_loop", duration=12.0),
                              controller="stanley"),
            lambda: make_spec(short("urban_loop", duration=12.0),
                              attack="imu_gyro_bias"),
        ])

    def test_acc_with_lead_and_radar(self):
        scenarios = [acc_scenario(seed=s, duration=15.0) for s in (3, 3, 9)]
        run_both([
            lambda: make_spec(scenarios[0]),
            lambda: make_spec(scenarios[1], attack="radar_ghost"),
            lambda: make_spec(scenarios[2], fault="radar_dropout"),
        ])

    def test_single_lane_batch(self):
        run_both([lambda: make_spec(short("straight"))])


class TestGridRunnerEquivalence:
    def test_run_grid_batch_matches_serial(self, tmp_path, monkeypatch):
        from repro.experiments.runner import clear_cache, run_grid
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))

        grid = dict(
            scenarios=("s_curve",), controllers=("pure_pursuit", "mpc"),
            attacks=("none", "gps_bias"), seeds=(1, 7), duration=8.0,
        )
        clear_cache(disk=True)
        serial = run_grid(workers=1, sim_engine="serial", **grid)
        clear_cache(disk=True)
        batch = run_grid(workers=1, sim_engine="batch", **grid)
        assert len(serial) == len(batch) == 8
        for a, b in zip(serial, batch):
            assert (a.scenario, a.controller, a.attack, a.seed) == \
                   (b.scenario, b.controller, b.attack, b.seed)
            assert_traces_identical(a.result.trace, b.result.trace)
            assert a.result.metrics == b.result.metrics
            # Verdicts (and therefore diagnoses) must not drift either.
            assert dataclasses.asdict(a.report) == dataclasses.asdict(b.report)

    def test_run_grid_batch_stats(self, tmp_path, monkeypatch):
        from repro.experiments.runner import clear_cache, run_grid
        from repro.experiments.stats import STATS
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))

        clear_cache(disk=True)
        run_grid(scenarios=("straight",), controllers=("pure_pursuit",),
                 attacks=("none", "gps_bias"), seeds=(1, 2), duration=8.0,
                 workers=1, sim_engine="batch")
        stats = STATS.last
        assert stats.sim_engine == "batch"
        assert stats.batch_groups == 1
        assert stats.batch_points == 4
        assert stats.batch_fallbacks == 0

    def test_run_grid_batch_falls_back_on_engine_failure(
            self, tmp_path, monkeypatch):
        # A batch engine crash must degrade to the serial path, not lose
        # the campaign.
        import repro.experiments.runner as runner_mod
        from repro.experiments.stats import STATS
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))

        def explode(specs):
            raise RuntimeError("batch engine down")

        monkeypatch.setattr(runner_mod, "run_batch", explode)
        runner_mod.clear_cache(disk=True)
        runs = runner_mod.run_grid(
            scenarios=("straight",), controllers=("pure_pursuit",),
            attacks=("none", "gps_bias"), seeds=(1,), duration=8.0,
            workers=1, sim_engine="batch")
        assert len(runs) == 2
        assert STATS.last.batch_fallbacks == 1
        assert STATS.last.batch_points == 0

    def test_single_core_auto_serial(self, tmp_path, monkeypatch):
        # With an env-provided worker count on a 1-core host, the pool
        # is a measured regression — the runner must choose serial and
        # say so in the stats.  An explicit argument still wins.
        import repro.experiments.runner as runner_mod
        from repro.experiments.stats import STATS
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("ADASSURE_WORKERS", "4")
        # Pin serial: the auto-batch prepass would consume both points
        # before the pool-vs-serial decision this test is about.
        monkeypatch.setenv("ADASSURE_SIM", "serial")
        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 1)

        grid = dict(scenarios=("straight",), controllers=("pure_pursuit",),
                    attacks=("none", "gps_bias"), seeds=(1,), duration=8.0)
        runner_mod.clear_cache(disk=True)
        runner_mod.run_grid(**grid)
        assert STATS.last.pool_policy == "serial-single-core"
        assert STATS.last.workers == 1

        runner_mod.clear_cache(disk=True)
        runner_mod.run_grid(workers=2, **grid)
        assert STATS.last.pool_policy == "pool"

    def test_resolve_sim_engine(self, monkeypatch):
        from repro.experiments.runner import resolve_sim_engine
        monkeypatch.delenv("ADASSURE_SIM", raising=False)
        assert resolve_sim_engine() == "serial"
        assert resolve_sim_engine("batch") == "batch"
        monkeypatch.setenv("ADASSURE_SIM", "batch")
        assert resolve_sim_engine() == "batch"
        assert resolve_sim_engine("serial") == "serial"
        with pytest.raises(ValueError):
            resolve_sim_engine("warp")
