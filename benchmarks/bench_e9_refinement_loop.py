"""Bench E9 — Figure 5: the methodology refinement loop converges."""

from conftest import run_and_print

from repro.experiments import build_refinement_loop


def test_e9_refinement_loop(benchmark, quick_config):
    table = run_and_print(benchmark, build_refinement_loop, quick_config)
    undiagnosed = [int(r[4]) for r in table.rows]
    undetected = [int(r[3]) for r in table.rows]
    # Paper-shape claims: gaps never increase as stages are added, and the
    # full catalog leaves no attack undetected.
    assert all(b <= a for a, b in zip(undiagnosed, undiagnosed[1:]))
    assert undetected[-1] == 0
