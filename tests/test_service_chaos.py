"""Chaos harness: inject every failure the service claims to survive.

Each test drives the real client/server code with a failure knob turned
on — mid-frame disconnects, torn and duplicated frames, stalled clients
against backpressure, SIGKILLed worker shards, raw garbage on the socket
— and then holds the line on two invariants:

1. the server stays up (later sessions complete normally), and
2. every completed session's verdict is **byte-identical** to offline
   :func:`repro.core.checker.check_trace` on the same trace, issued
   exactly once.
"""

from __future__ import annotations

import asyncio
import os
import signal

from repro.service.client import TraceStreamClient, fetch_status, stream_trace
from repro.service.protocol import FrameType, encode_frame, read_frame

from service_utils import attacked_trace, offline_verdict, serving


class TestTornFrames:
    def test_mid_frame_disconnect_then_resume(self, tmp_path):
        """The client dies halfway through writing a CHUNK frame; the
        server must classify it as truncation, checkpoint, and resume."""
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-torn",
                    chunk_records=25, disconnect_after_chunks=4,
                    tear_frame=True)
                return outcome, server.truncated_frames, \
                    server.verdicts_issued

        outcome, truncated, issued = asyncio.run(go())
        assert truncated >= 1, "tear must be seen as FrameTruncated"
        assert outcome.reconnects >= 1
        assert issued == 1
        assert outcome.verdict["report"] == offline_verdict(trace)

    def test_corrupt_frame_suspends_but_preserves_session(self, tmp_path):
        """A CRC-corrupted frame kills the connection (framing lost
        sync) but never the session: resume completes it."""
        trace = attacked_trace()
        records = list(trace.records)

        async def go():
            async with serving(tmp_path) as server:
                from repro.service.session import chunk_to_bytes
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(FrameType.HELLO, {
                    "session_id": "veh-crc",
                    "meta": trace.meta.to_dict()}))
                writer.write(encode_frame(
                    FrameType.CHUNK, {"seq": 0},
                    chunk_to_bytes(trace.meta, records[:100])))
                await writer.drain()
                assert (await read_frame(reader)).type is FrameType.WELCOME
                assert (await read_frame(reader)).type is FrameType.ACK
                # now a deliberately corrupted frame
                bad = bytearray(encode_frame(
                    FrameType.CHUNK, {"seq": 1},
                    chunk_to_bytes(trace.meta, records[100:])))
                bad[-1] ^= 0xFF
                writer.write(bytes(bad))
                await writer.drain()
                reply = await read_frame(reader)
                assert reply is not None and reply.type is FrameType.ERROR
                writer.close()
                await asyncio.sleep(0.05)  # let the suspend land
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-crc",
                    chunk_records=100)
                return outcome, server.protocol_errors

        outcome, protocol_errors = asyncio.run(go())
        assert protocol_errors >= 1
        assert outcome.chunks_applied == 1, "first 100 records survived"
        assert outcome.verdict["report"] == offline_verdict(trace)


class TestDuplicatedFrames:
    def test_retransmits_are_acked_never_reapplied(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                return await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-dup",
                    chunk_records=25, duplicate_chunks=True)

        outcome = asyncio.run(go())
        assert outcome.duplicate_acks == outcome.chunks_applied == 8
        # if any duplicate had been re-fed, the record log would hold
        # 400 records and this comparison would fail
        assert outcome.verdict["report"] == offline_verdict(trace)


class TestGarbageOnTheWire:
    def test_non_protocol_bytes_do_not_kill_the_server(self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path) as server:
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
                await writer.drain()
                writer.close()
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-after",
                    chunk_records=50)
                return outcome, server.protocol_errors

        outcome, protocol_errors = asyncio.run(go())
        assert protocol_errors >= 1
        assert outcome.verdict["report"] == offline_verdict(trace)


class TestBackpressure:
    def test_stalled_ingest_yields_busy_not_buffering(self, tmp_path):
        """Slow the server's apply path and shrink the inflight credit:
        concurrent streams must see BUSY + retry, and still finish with
        correct verdicts."""
        traces = [attacked_trace(window=(60 + 10 * i, 120 + 10 * i))
                  for i in range(3)]
        probe = TraceStreamClient("h", 0, chunk_records=40)
        chunk_bytes = len(probe._encode_chunks(traces[0])[0])

        async def go():
            async with serving(
                    tmp_path, chunk_delay_s=0.05,
                    max_inflight_bytes=int(1.5 * chunk_bytes)) as server:
                outcomes = await asyncio.gather(*[
                    stream_trace(t, "127.0.0.1", server.port,
                                 f"veh-bp-{i}", chunk_records=40)
                    for i, t in enumerate(traces)])
                return outcomes, server.busy_sent

        outcomes, busy_sent = asyncio.run(go())
        assert busy_sent >= 1, "credit exhaustion must answer BUSY"
        assert sum(o.busy_retries for o in outcomes) >= 1
        for trace, outcome in zip(traces, outcomes):
            assert outcome.verdict["report"] == offline_verdict(trace)

    def test_stalled_client_is_suspended_not_leaked(self, tmp_path):
        """A client that goes silent holds no server slot: the idle
        timeout suspends it, and a resume later completes the stream."""
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path, idle_timeout_s=0.15) as server:
                from repro.service.session import chunk_to_bytes
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(encode_frame(FrameType.HELLO, {
                    "session_id": "veh-stall",
                    "meta": trace.meta.to_dict()}))
                writer.write(encode_frame(
                    FrameType.CHUNK, {"seq": 0},
                    chunk_to_bytes(trace.meta, list(trace.records)[:100])))
                await writer.drain()
                await read_frame(reader)  # WELCOME
                await read_frame(reader)  # ACK
                await asyncio.sleep(0.5)  # ... and go silent
                hung_up = await read_frame(reader)
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-stall",
                    chunk_records=100)
                return hung_up, outcome, server

        hung_up, outcome, server = asyncio.run(go())
        assert hung_up is None, "server must hang up on a stalled client"
        assert server.stalled_clients == 1
        assert server.sessions == {}
        assert outcome.chunks_applied == 1  # only the unacked half resent
        assert outcome.verdict["report"] == offline_verdict(trace)


class TestShardDeath:
    def test_sigkilled_worker_is_respawned_and_session_completes(
            self, tmp_path):
        trace = attacked_trace()

        async def go():
            async with serving(tmp_path, shards=1) as server:
                server.shards.warm()
                pids = server.shards.worker_pids()
                assert pids, "warm() must spawn the shard worker"
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                outcome = await stream_trace(
                    trace, "127.0.0.1", server.port, "veh-kill",
                    chunk_records=50)
                return outcome, server.shards.stats(), pids

        outcome, stats, old_pids = asyncio.run(go())
        assert stats["shard_failures"] >= 1
        assert stats["respawns"] >= 1
        assert outcome.verdict["report"] == offline_verdict(trace)
        for pid in old_pids:  # the killed workers are really gone
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pass

    def test_partial_verdicts_preserved_across_shard_loss(self, tmp_path):
        """Verdicts issued before the shard died stay correct and
        replayable afterwards."""
        first, second = attacked_trace(), attacked_trace(window=(50, 110))

        async def go():
            async with serving(tmp_path, shards=1) as server:
                a = await stream_trace(first, "127.0.0.1", server.port,
                                       "veh-a", chunk_records=50)
                for pid in server.shards.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                b = await stream_trace(second, "127.0.0.1", server.port,
                                       "veh-b", chunk_records=50)
                replay = await stream_trace(first, "127.0.0.1", server.port,
                                            "veh-a", chunk_records=50)
                return a, b, replay

        a, b, replay = asyncio.run(go())
        assert a.verdict["report"] == offline_verdict(first)
        assert b.verdict["report"] == offline_verdict(second)
        assert replay.resumed_finished and replay.verdict == a.verdict


class TestFleetChaos:
    def test_mixed_failure_fleet_all_verdicts_exact(self, tmp_path):
        """Concurrent sessions, each with a different injected failure;
        every verdict must match the offline oracle, exactly once."""
        traces = [attacked_trace(window=(40 + 20 * i, 120 + 10 * i))
                  for i in range(5)]
        knobs = [
            {},                                             # clean run
            {"disconnect_after_chunks": 2},                 # clean drop
            {"disconnect_after_chunks": 3, "tear_frame": True},
            {"duplicate_chunks": True},
            {"disconnect_after_chunks": 1},
        ]

        async def go():
            async with serving(tmp_path, shards=2) as server:
                outcomes = await asyncio.gather(*[
                    stream_trace(t, "127.0.0.1", server.port,
                                 f"veh-fleet-{i}", chunk_records=25, **k)
                    for i, (t, k) in enumerate(zip(traces, knobs))])
                status = await fetch_status("127.0.0.1", server.port)
                return outcomes, status

        outcomes, status = asyncio.run(go())
        for trace, outcome in zip(traces, outcomes):
            assert outcome.verdict["report"] == offline_verdict(trace)
        assert status["counters"]["verdicts_issued"] == 5
        assert status["fleet"]["sessions_completed"] == 5
        assert status["counters"]["suspends"] >= 3
