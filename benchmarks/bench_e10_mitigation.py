"""Bench E10 (extension) — Table 6: innovation-gated EKF mitigation."""

from conftest import run_and_print

from repro.experiments import build_mitigation_table


def test_e10_mitigation(benchmark, quick_config):
    table = run_and_print(benchmark, build_mitigation_table, quick_config)
    rows = {r[0]: r for r in table.rows}
    # Extension-shape claims: the gate is free when nominal, neutralizes
    # the freeze attack, and cannot stop the slow drift.
    assert float(rows["none"][3]) >= 0.95
    assert float(rows["gps_freeze"][3]) < 0.25
    assert float(rows["gps_drift"][3]) > 0.9
