"""Tests for repro.experiments.export."""

import csv

import pytest

from repro.experiments.export import save_tables, table_to_csv, table_to_markdown
from repro.experiments.tables import Table


def sample_table(title="Table 1 (E1): demo"):
    t = Table(title=title, columns=["attack", "rate"])
    t.add_row("gps_bias", 0.5)
    t.add_row("none", 0)
    t.add_note("a note")
    return t


class TestCsvExport:
    def test_roundtrippable_rows(self, tmp_path):
        path = tmp_path / "t.csv"
        table_to_csv(sample_table(), path)
        with path.open() as f:
            rows = [r for r in csv.reader(
                line for line in f if not line.startswith("#"))]
        assert rows[0] == ["attack", "rate"]
        assert rows[1] == ["gps_bias", "0.50"]

    def test_title_and_notes_as_comments(self, tmp_path):
        path = tmp_path / "t.csv"
        table_to_csv(sample_table(), path)
        text = path.read_text()
        assert text.startswith("# Table 1")
        assert "# note: a note" in text


class TestMarkdownExport:
    def test_structure(self):
        md = table_to_markdown(sample_table())
        assert md.startswith("### Table 1")
        assert "| attack | rate |" in md
        assert "|---|---|" in md
        assert "*a note*" in md

    def test_pipes_escaped(self):
        t = Table(title="T", columns=["a"])
        t.add_row("x|y")
        assert "x\\|y" in table_to_markdown(t)


class TestSaveTables:
    def test_writes_both_formats(self, tmp_path):
        written = save_tables(sample_table(), tmp_path)
        names = {p.name for p in written}
        assert names == {"table_1_e1.csv", "table_1_e1.md"}
        assert all(p.exists() for p in written)

    def test_duplicate_titles_disambiguated(self, tmp_path):
        tables = [sample_table(), sample_table()]
        written = save_tables(tables, tmp_path, formats=("csv",))
        assert len({p.name for p in written}) == 2

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_tables(sample_table(), tmp_path, formats=("pdf",))

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_tables(sample_table(), target)
        assert target.is_dir()
