"""E11 (extension) — diagnosis under concurrent attacks.

A coordinated adversary (or two independent faults) activates two attack
classes at once.  A single-cause ranking cannot be "right" in the top-1
sense; the useful property is *coverage*: both true causes appear among
the top-ranked candidates because their assertion signatures superpose.

Expected shape: for channel-disjoint pairs (e.g. GPS bias + IMU gyro
bias), both causes rank in the top 2–3 of the single-cause ranking, while
the *multi-cause* explain-away loop (:func:`repro.core.diagnose_multi`)
recovers the exact injected set.
"""

from __future__ import annotations

from repro.attacks.campaign import combined_attack
from repro.core.diagnosis import diagnose, diagnose_multi
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import ProbePlan, scenario_lane
from repro.experiments.tables import Table
from repro.sim.engine import run_scenario
from repro.sim.scenario import standard_scenarios

__all__ = ["build_multi_attack_table", "ATTACK_PAIRS"]

ATTACK_PAIRS: tuple[tuple[str, str], ...] = (
    ("gps_bias", "imu_gyro_bias"),
    ("gps_drift", "steer_offset"),
    ("odom_scale", "compass_offset"),
    ("gps_freeze", "cmd_delay"),
    ("imu_gyro_bias", "steer_offset"),
)
"""Concurrent pairs, chosen to span disjoint and overlapping signatures."""


def build_multi_attack_table(config: ExperimentConfig | None = None,
                             workers: int | None = None) -> Table:
    """Top-k coverage of both true causes under concurrent attacks.

    ``workers`` is accepted for experiment-interface uniformity; the
    pair x seed sweep is declared up front to a
    :class:`~repro.experiments.plan.ProbePlan` (every run shares the
    full-duration scenario compatibility group, so a cold campaign
    drains as batch-engine lane groups) and commits through the shared
    params-keyed cache, so repeated campaigns re-simulate nothing.
    """
    config = config or ExperimentConfig.full()
    table = Table(
        title="Table 7 (E11, extension): diagnosis under concurrent attacks "
              f"(scenario={config.scenario})",
        columns=["attack pair", "runs", "both in top-2", "both in top-3",
                 "multi-cause exact", "fired assertions (union over seeds)"],
    )

    plan = ProbePlan()
    sweep: dict[tuple, object] = {}
    for pair in ATTACK_PAIRS:
        for seed in config.seeds:
            # Full scenario duration always: slow-drift members of a pair
            # need time to accumulate their dead-reckoning signature.
            scenario = standard_scenarios(seed=seed)[config.scenario]
            campaign = combined_attack(pair, onset=config.attack_onset)

            def simulate(scenario=scenario, campaign=campaign):
                return run_scenario(scenario, controller="pure_pursuit",
                                    campaign=campaign)

            sweep[(pair, seed)] = plan.plan_scored(
                {"kind": "multi_attack", "pair": list(pair),
                 "scenario": config.scenario, "seed": seed,
                 "onset": config.attack_onset},
                simulate,
                lane=lambda scenario=scenario, campaign=campaign:
                scenario_lane(scenario, campaign=campaign),
                group=(config.scenario, None),
            )

    for pair in ATTACK_PAIRS:
        both_top2 = both_top3 = exact = 0
        fired_union: set[str] = set()
        n = 0
        for seed in config.seeds:
            _, report = sweep[(pair, seed)].result()
            ranking = diagnose(report)
            ranks = [ranking.rank_of(cause) for cause in pair]
            if all(r is not None and r <= 2 for r in ranks):
                both_top2 += 1
            if all(r is not None and r <= 3 for r in ranks):
                both_top3 += 1
            multi = diagnose_multi(report)
            if multi.cause_set == frozenset(pair):
                exact += 1
            fired_union.update(report.fired_ids)
            n += 1
        table.add_row(
            "+".join(pair), n, f"{both_top2}/{n}", f"{both_top3}/{n}",
            f"{exact}/{n}", ",".join(sorted(fired_union)),
        )
    table.add_note("top-k columns use the single-cause ranking; "
                   "'multi-cause exact' = the explain-away loop recovers "
                   "exactly the injected cause set.")
    return table


def main() -> None:
    print(build_multi_attack_table().render())


if __name__ == "__main__":
    main()
