"""Deeper integration tests: NIS calibration, remaining attacks, dynamic model."""

import dataclasses

import numpy as np
import pytest

from repro.attacks.base import AttackWindow
from repro.attacks.channel import CommandDropAttack
from repro.attacks.actuator import SteeringStuckAttack
from repro.attacks.campaign import AttackCampaign
from repro.attacks.gps import GpsReplayAttack
from repro.core.checker import check_trace
from repro.sim.engine import run_scenario
from repro.sim.scenario import standard_scenarios

from conftest import short_scenario


class TestEkfStatisticalConsistency:
    def test_gps_nis_matches_chi_square(self, nominal_run):
        # For a well-tuned filter the mean 2-dof NIS sits near 2; gross
        # deviation means the noise model is mis-specified.
        tr = nominal_run.trace
        t = tr.times()
        fresh = tr.column("gps_fresh").astype(bool)
        settled = t > 5.0
        nis = tr.column("nis_gps")[fresh & settled]
        assert 0.8 < float(np.mean(nis)) < 4.0

    def test_speed_nis_matches_chi_square(self, nominal_run):
        tr = nominal_run.trace
        t = tr.times()
        fresh = tr.column("odom_fresh").astype(bool)
        nis = tr.column("nis_speed")[fresh & (t > 5.0)]
        # The filter's speed sigma is deliberately conservative (2x the
        # sensor noise), so the nominal NIS sits well below the 1-dof
        # mean of 1; it must still be positive and far from the gate.
        assert 0.01 < float(np.mean(nis)) < 3.0


class TestRemainingAttacksEndToEnd:
    def test_gps_replay_detected(self):
        campaign = AttackCampaign(
            label="gps_replay",
            attacks=[GpsReplayAttack(delay=6.0, window=AttackWindow(12.0))],
        )
        res = run_scenario(short_scenario("s_curve", duration=35.0),
                           campaign=campaign)
        report = check_trace(res.trace)
        # The onset replays a 6 s old position: a massive backward jump.
        assert report.detection_latency(12.0) is not None
        assert "A5" in report.fired_ids or "A4" in report.fired_ids

    def test_steering_stuck_detected_by_actuation_check(self):
        campaign = AttackCampaign(
            label="steer_stuck",
            attacks=[SteeringStuckAttack(window=AttackWindow(12.0))],
        )
        res = run_scenario(short_scenario("s_curve", duration=35.0),
                           campaign=campaign)
        report = check_trace(res.trace)
        assert "A16" in report.fired_ids

    def test_command_drop_leaves_setpoint_latched(self):
        campaign = AttackCampaign(
            label="cmd_drop",
            attacks=[CommandDropAttack(drop_prob=1.0,
                                       window=AttackWindow(10.0, 12.0))],
        )
        res = run_scenario(short_scenario("straight", duration=20.0),
                           campaign=campaign)
        tr = res.trace
        window = tr.window(10.1, 11.9)
        # All commands dropped: the applied acceleration converges to the
        # last latched setpoint (first-order actuator), so its spread is
        # tiny even though the controller keeps commanding corrections.
        applied = window.column("accel_applied")
        assert float(np.std(np.diff(applied))) < 0.05


class TestDynamicModelScenario:
    def test_dynamic_model_tracks_route(self):
        scenario = dataclasses.replace(
            standard_scenarios(seed=7)["s_curve"], model="dynamic",
            duration=45.0,
        )
        res = run_scenario(scenario, controller="pure_pursuit")
        assert res.metrics.max_abs_cte < 1.0
        assert res.metrics.goal_reached

    def test_dynamic_model_detection_still_works(self):
        from repro.attacks.campaign import standard_attack

        scenario = dataclasses.replace(
            standard_scenarios(seed=7)["s_curve"], model="dynamic",
            duration=40.0,
        )
        res = run_scenario(scenario,
                           campaign=standard_attack("gps_bias", onset=15.0))
        report = check_trace(res.trace)
        assert report.detection_latency(15.0) is not None


class TestAllControllersAllScenariosNominal:
    @pytest.mark.parametrize("controller", ["pure_pursuit", "stanley", "lqr"])
    @pytest.mark.parametrize("scenario_name",
                             ["curve", "lane_change", "urban_loop"])
    def test_nominal_clean(self, controller, scenario_name):
        scenario = standard_scenarios(seed=42)[scenario_name]
        res = run_scenario(scenario, controller=controller)
        report = check_trace(res.trace)
        assert report.fired_ids == [], (
            f"{controller}/{scenario_name}: {report.fired_ids}"
        )
