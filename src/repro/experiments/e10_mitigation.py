"""E10 (extension) — innovation-gated EKF as the mitigation ADAssure motivates.

The diagnosis experiments show spoofing is visible in the EKF innovations
long before behavioural harm; the natural hardening is to *gate* the
filter: reject any measurement whose NIS exceeds a chi-square threshold.
This experiment quantifies the defense: behavioural damage with and
without gating, per GPS attack class.

Expected shape: gating slashes damage for the attacks whose fixes are
individually implausible (bias/jump, noise, freeze — the filter coasts on
dead reckoning), while the slow drift still defeats the gate (each fix is
individually plausible) — confirming that runtime monitors and the A4-style
dead-reckoning assertion remain necessary.
"""

from __future__ import annotations

import statistics

from repro.attacks.campaign import standard_attack
from repro.control.estimator import EkfConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import ProbePlan, scenario_lane
from repro.experiments.tables import Table
from repro.sim.engine import run_scenario
from repro.sim.scenario import standard_scenarios

__all__ = ["build_mitigation_table"]

_GATE = 13.8  # chi-square, 2 dof, p ~ 0.001
_ATTACKS = ("gps_bias", "gps_drift", "gps_freeze", "gps_noise")


def build_mitigation_table(config: ExperimentConfig | None = None,
                           workers: int | None = None) -> Table:
    """Damage with vs. without the innovation gate, per GPS attack.

    ``workers`` is accepted for experiment-interface uniformity; the
    whole sweep is declared up front to a
    :class:`~repro.experiments.plan.ProbePlan` — all (attack, seed,
    gate) configurations share one scenario/duration compatibility
    group, so a cold campaign drains as batch-engine lane groups, and
    everything commits through the shared params-keyed cache so
    repeated campaigns re-simulate nothing.
    """
    config = config or ExperimentConfig.full()
    table = Table(
        title="Table 6 (E10, extension): innovation-gated EKF mitigation "
              f"(scenario={config.scenario}, gate NIS={_GATE})",
        columns=["attack", "max|cte| ungated [m]", "max|cte| gated [m]",
                 "damage ratio", "gated goal/progress ok"],
    )

    plan = ProbePlan()
    sweep: dict[tuple, tuple] = {}
    for attack in ("none",) + _ATTACKS:
        for seed in config.seeds:
            scenario = standard_scenarios(
                seed=seed, duration=config.duration)[config.scenario]
            params = {
                "kind": "mitigation", "scenario": config.scenario,
                "controller": "pure_pursuit", "attack": attack,
                "seed": seed, "onset": config.attack_onset,
                "duration": config.duration, "gate": None,
            }

            # Campaigns are built fresh inside every closure: the ungated
            # and gated runs of one seed can land in the same batch group,
            # and attack objects carry RNG streams / replay state that a
            # lane must not share with its neighbour.
            def campaign(attack=attack):
                return standard_attack(attack, onset=config.attack_onset)

            def simulate(scenario=scenario, campaign=campaign):
                return run_scenario(scenario, controller="pure_pursuit",
                                    campaign=campaign())

            def simulate_gated(scenario=scenario, campaign=campaign):
                return run_scenario(scenario, controller="pure_pursuit",
                                    campaign=campaign(),
                                    ekf_config=EkfConfig(gate_nis=_GATE))

            sweep[(attack, seed)] = (
                plan.plan_scored(
                    params, simulate,
                    lane=lambda scenario=scenario, campaign=campaign:
                    scenario_lane(scenario, campaign=campaign())),
                plan.plan_scored(
                    dict(params, gate=_GATE), simulate_gated,
                    lane=lambda scenario=scenario, campaign=campaign:
                    scenario_lane(scenario, campaign=campaign(),
                                  ekf_config=EkfConfig(gate_nis=_GATE))),
            )

    for attack in ("none",) + _ATTACKS:
        ungated, gated, ok = [], [], 0
        for seed in config.seeds:
            base_run, gated_run = sweep[(attack, seed)]
            base, _ = base_run.result()
            hardened, _ = gated_run.result()
            ungated.append(base.metrics.max_abs_cte)
            gated.append(hardened.metrics.max_abs_cte)
            ok += hardened.metrics.goal_reached
        mean_ungated = statistics.mean(ungated)
        mean_gated = statistics.mean(gated)
        ratio = mean_gated / mean_ungated if mean_ungated > 0 else 1.0
        table.add_row(
            attack, mean_ungated, mean_gated, f"{ratio:.2f}",
            f"{ok}/{len(config.seeds)}",
        )
    table.add_note("damage ratio < 1 means the gate helped; the slow drift "
                   "is expected to defeat the gate (each fix is plausible).")
    return table


def main() -> None:
    print(build_mitigation_table().render())


if __name__ == "__main__":
    main()
