"""Tests for repro.core.dsl: assertion base + combinators."""

import pytest

from repro.core.dsl import (
    BoundAssertion,
    FunctionAssertion,
    WindowMeanBoundAssertion,
)

from conftest import make_record


def feed(assertion, records):
    """Feed records and finish; returns (closed_during, summary)."""
    assertion.reset()
    closed = []
    last = None
    for record in records:
        v = assertion.step(record)
        if v is not None:
            closed.append(v)
        last = record
    closed.extend(assertion.finish(last))
    return closed, assertion.summarize()


def cte_records(values, start_step=0):
    return [make_record(start_step + i, cte_true=v)
            for i, v in enumerate(values)]


class TestBoundAssertion:
    def make(self, **kw):
        defaults = dict(debounce_on=3, debounce_off=5)
        defaults.update(kw)
        return BoundAssertion("T1", "test bound", channel="cte_true",
                              bound=2.0, **defaults)

    def test_holds_within_bound(self):
        violations, summary = feed(self.make(), cte_records([1.0] * 50))
        assert violations == []
        assert not summary.fired
        assert summary.worst_margin == pytest.approx(0.5)

    def test_fires_beyond_bound(self):
        values = [0.0] * 10 + [3.0] * 20 + [0.0] * 20
        violations, summary = feed(self.make(), cte_records(values))
        assert len(violations) == 1
        assert summary.fired
        assert summary.episodes == 1
        v = violations[0]
        assert v.worst_margin == pytest.approx(-0.5)
        assert v.severity == pytest.approx(0.5)

    def test_debounce_on_suppresses_blips(self):
        # Two bad samples (debounce_on=3) never open an episode.
        values = [0.0] * 10 + [3.0] * 2 + [0.0] * 20
        violations, summary = feed(self.make(), cte_records(values))
        assert violations == []
        assert not summary.fired
        # ... but the worst margin is still recorded.
        assert summary.worst_margin == pytest.approx(-0.5)

    def test_debounce_off_merges_nearby_episodes(self):
        # Violation, 2 good samples (debounce_off=5), violation again:
        # stays one episode.
        values = [3.0] * 10 + [0.0] * 2 + [3.0] * 10 + [0.0] * 20
        violations, _ = feed(self.make(), cte_records(values))
        assert len(violations) == 1

    def test_separate_episodes_when_gap_long(self):
        values = [3.0] * 10 + [0.0] * 10 + [3.0] * 10 + [0.0] * 10
        violations, summary = feed(self.make(), cte_records(values))
        assert len(violations) == 2
        assert summary.episodes == 2

    def test_open_episode_closed_at_finish(self):
        values = [0.0] * 10 + [3.0] * 20  # still violating at trace end
        violations, summary = feed(self.make(), cte_records(values))
        assert len(violations) == 1
        assert summary.fired
        assert violations[0].t_end == pytest.approx(29 * 0.05)

    def test_settle_time_discards_early_verdicts(self):
        assertion = self.make(settle_time=1.0)
        values = [5.0] * 10 + [0.0] * 30  # violation only before t=1.0 s
        violations, summary = feed(assertion, cte_records(values))
        assert violations == []
        assert not summary.fired

    def test_episode_timing(self):
        values = [0.0] * 20 + [3.0] * 20 + [0.0] * 20
        violations, _ = feed(self.make(), cte_records(values))
        v = violations[0]
        # Episode opens at the debounce_on-th violating sample.
        assert v.t_start == pytest.approx((20 + 2) * 0.05)
        assert v.duration > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundAssertion("X", "x", channel="cte_true", bound=0.0)
        with pytest.raises(ValueError):
            BoundAssertion("X", "x", channel="cte_true", bound=1.0,
                           debounce_on=0)


class TestWindowMeanBound:
    def make(self):
        return WindowMeanBoundAssertion(
            "T2", "window mean", channel="cte_true", bound=1.0, window=1.0,
            debounce_on=2, debounce_off=5,
        )

    def test_ignores_isolated_spike(self):
        values = [0.0] * 30 + [5.0] + [0.0] * 30
        violations, _ = feed(self.make(), cte_records(values))
        assert violations == []

    def test_fires_on_sustained_elevation(self):
        values = [0.0] * 30 + [2.0] * 40 + [0.0] * 40
        violations, _ = feed(self.make(), cte_records(values))
        assert len(violations) == 1

    def test_not_applicable_until_window_fills(self):
        assertion = self.make()
        assertion.reset()
        assert assertion.step(make_record(0, cte_true=100.0)) is None
        summary_before = assertion.summarize()
        assert not summary_before.fired


class TestFunctionAssertion:
    def test_margin_fn_and_state(self):
        def fn(record, state):
            state.setdefault("count", 0)
            state["count"] += 1
            return 1.0 - record.est_v / 10.0

        assertion = FunctionAssertion("U1", "custom", fn, debounce_on=1,
                                      debounce_off=1)
        records = [make_record(i, est_v=12.0) for i in range(5)]
        violations, summary = feed(assertion, records)
        assert summary.fired
        assert assertion._state["count"] == 5

    def test_state_reset_between_traces(self):
        def fn(record, state):
            state["seen"] = state.get("seen", 0) + 1
            return 1.0

        assertion = FunctionAssertion("U1", "custom", fn)
        feed(assertion, [make_record(0)])
        feed(assertion, [make_record(0)])
        assert assertion._state["seen"] == 1

    def test_end_fn_liveness(self):
        def fn(record, state):
            state["max_x"] = max(state.get("max_x", 0.0), record.true_x)
            return None

        def end_fn(record, state):
            return state.get("max_x", 0.0) - 100.0  # must travel 100 m

        assertion = FunctionAssertion("U2", "travels far", fn, end_fn=end_fn)
        violations, summary = feed(assertion,
                                   [make_record(i) for i in range(10)])
        assert summary.fired  # only ~3.6 m travelled
        assert violations[-1].t_start == violations[-1].t_end

    def test_none_margin_not_applicable(self):
        assertion = FunctionAssertion("U3", "never", lambda r, s: None)
        violations, summary = feed(assertion,
                                   [make_record(i) for i in range(10)])
        assert violations == []
        assert summary.worst_margin == 0.0


class TestEpisodeInvariants:
    def test_episodes_ordered_and_disjoint(self):
        values = ([3.0] * 10 + [0.0] * 10) * 5
        violations, _ = feed(
            BoundAssertion("T", "t", channel="cte_true", bound=2.0,
                           debounce_on=2, debounce_off=3),
            cte_records(values),
        )
        assert len(violations) >= 2
        for a, b in zip(violations, violations[1:]):
            assert a.t_end <= b.t_start

    def test_monitor_reuse_requires_reset(self):
        assertion = BoundAssertion("T", "t", channel="cte_true", bound=2.0)
        _, first = feed(assertion, cte_records([3.0] * 20))
        _, second = feed(assertion, cte_records([0.0] * 20))
        assert first.fired
        assert not second.fired  # reset cleared the violations
