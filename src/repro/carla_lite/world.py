"""The CARLA-style synchronous world."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.carla_lite.control import VehicleControl
from repro.carla_lite.sensors import SensorActor
from repro.sim.dynamics import VehicleState
from repro.sim.rng import RngStreams
from repro.sim.sensors.suite import SensorSuite, SensorSuiteConfig
from repro.sim.vehicle import Vehicle

__all__ = ["Transform", "VehicleActor", "World"]


@dataclass(frozen=True, slots=True)
class Transform:
    """CARLA-style transform (2-D subset: location + yaw)."""

    x: float = 0.0
    y: float = 0.0
    yaw: float = 0.0


class VehicleActor:
    """A spawned vehicle, controlled CARLA-style via ``apply_control``."""

    def __init__(self, vehicle: Vehicle, actor_id: int):
        self._vehicle = vehicle
        self.id = actor_id
        self.type_id = "vehicle.repro.sedan"

    def apply_control(self, control: VehicleControl) -> None:
        """Translate normalized CARLA controls to physical commands."""
        params = self._vehicle.params
        steer = -control.steer * params.max_steer  # CARLA: positive = right
        if control.brake > 0.0:
            accel = -control.brake * params.max_brake
        else:
            accel = control.throttle * params.max_accel
        self._vehicle.apply_control(steer, accel)

    def get_transform(self) -> Transform:
        state = self._vehicle.state
        return Transform(x=state.x, y=state.y, yaw=state.yaw)

    def get_velocity(self) -> tuple[float, float]:
        """World-frame planar velocity (vx, vy), m/s."""
        state = self._vehicle.state
        return (
            state.v * math.cos(state.yaw) - state.vy * math.sin(state.yaw),
            state.v * math.sin(state.yaw) + state.vy * math.cos(state.yaw),
        )

    def get_speed(self) -> float:
        return self._vehicle.state.speed

    @property
    def vehicle(self) -> Vehicle:
        """Escape hatch to the underlying simulator vehicle."""
        return self._vehicle


class World:
    """A synchronous-mode world: spawn actors, tick, sensors push data.

    Usage (mirrors a CARLA synchronous-mode script)::

        world = World(dt=0.05, seed=3)
        ego = world.spawn_vehicle(Transform(0, 0, 0))
        gps = world.spawn_sensor("sensor.other.gnss", parent=ego)
        gps.listen(lambda fix: fixes.append(fix))
        for _ in range(1000):
            ego.apply_control(VehicleControl(throttle=0.4, steer=0.0))
            world.tick()
    """

    _SENSOR_TYPES = {
        "sensor.other.gnss": "gps",
        "sensor.other.imu": "imu",
        "sensor.other.wheel_odometry": "odometry",
        "sensor.other.compass": "compass",
    }

    def __init__(self, dt: float = 0.05, seed: int = 0,
                 sensor_config: SensorSuiteConfig | None = None):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self._rngs = RngStreams(seed)
        self._sensor_config = sensor_config or SensorSuiteConfig()
        self._time = 0.0
        self._frame = 0
        self._next_actor_id = 1
        self._ego: VehicleActor | None = None
        self._suite: SensorSuite | None = None
        self._sensor_actors: dict[str, list[SensorActor]] = {
            channel: [] for channel in self._SENSOR_TYPES.values()
        }

    @property
    def time(self) -> float:
        """Simulation time, seconds."""
        return self._time

    @property
    def frame(self) -> int:
        """Tick counter (CARLA: frame id)."""
        return self._frame

    def spawn_vehicle(self, transform: Transform,
                      model: str = "kinematic") -> VehicleActor:
        """Spawn the ego vehicle (one per world, like a CARLA ego setup)."""
        if self._ego is not None:
            raise RuntimeError("this world already has a vehicle")
        vehicle = Vehicle(
            model=model,
            initial_state=VehicleState(x=transform.x, y=transform.y,
                                       yaw=transform.yaw),
        )
        self._ego = VehicleActor(vehicle, self._next_actor_id)
        self._next_actor_id += 1
        self._suite = SensorSuite(self._sensor_config, self._rngs)
        return self._ego

    def spawn_sensor(self, sensor_type: str,
                     parent: VehicleActor | None = None) -> SensorActor:
        """Spawn a sensor actor attached to the ego vehicle."""
        if sensor_type not in self._SENSOR_TYPES:
            raise ValueError(
                f"unknown sensor type {sensor_type!r}; "
                f"expected one of {sorted(self._SENSOR_TYPES)}"
            )
        if self._ego is None:
            raise RuntimeError("spawn a vehicle before spawning sensors")
        if parent is not None and parent is not self._ego:
            raise ValueError("sensors can only attach to the ego vehicle")
        actor = SensorActor(sensor_type)
        self._sensor_actors[self._SENSOR_TYPES[sensor_type]].append(actor)
        return actor

    def tick(self) -> int:
        """Advance the world one step; dispatch sensor data; returns frame."""
        if self._ego is None or self._suite is None:
            raise RuntimeError("spawn a vehicle before ticking the world")
        readings = self._suite.poll(self._time, self._ego.vehicle.state)
        for channel, reading in (
            ("gps", readings.gps),
            ("imu", readings.imu),
            ("odometry", readings.odometry),
            ("compass", readings.compass),
        ):
            if reading is None:
                continue
            for actor in self._sensor_actors[channel]:
                actor._dispatch(reading)
        self._ego.vehicle.step(self.dt)
        self._time += self.dt
        self._frame += 1
        return self._frame
