"""Parallel grid execution must be indistinguishable from serial.

Every run is fully seeded, so fanning grid points over a process pool may
only change wall-clock time — never a single byte of any table.  These
tests disable the disk cache so the ``workers=4`` passes genuinely
execute in pool workers instead of being served from the cache layers.
"""

import dataclasses

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.e1_detection import build_detection_matrix
from repro.experiments.e2_latency import build_latency_table
from repro.experiments.e4_diagnosis import build_diagnosis_accuracy
from repro.experiments.runner import clear_cache, run_grid
from repro.experiments.stats import STATS

GRID = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("gps_bias", "odom_scale"), seeds=(1, 7),
            onset=5.0, duration=12.0)

TINY = ExperimentConfig(
    seeds=(1, 7),
    attacks=("gps_bias", "gps_drift", "odom_scale"),
    trace_scenarios=("s_curve",),
    attack_onset=5.0,
    duration=15.0,
)


@pytest.fixture(autouse=True)
def serial_engine(monkeypatch):
    """Pin the serial engine so the ``workers=4`` passes genuinely reach
    the process pool instead of the auto-selected batch prepass."""
    monkeypatch.setenv("ADASSURE_SIM", "serial")


@pytest.fixture()
def no_cache(monkeypatch):
    """Memo cleared, disk layer off — every pass simulates from scratch."""
    monkeypatch.setenv("ADASSURE_CACHE", "0")
    clear_cache()
    yield
    clear_cache()


class TestGridDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, no_cache):
        serial = run_grid(workers=1, **GRID)
        assert STATS.last.workers == 1
        clear_cache()
        parallel = run_grid(workers=4, **GRID)
        assert STATS.last.workers > 1
        assert STATS.last.executed == len(serial)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert (s.scenario, s.controller, s.attack, s.seed) == \
                   (p.scenario, p.controller, p.attack, p.seed)
            assert p.result.trace.records == s.result.trace.records
            assert p.result.metrics == s.result.metrics
            assert p.report.fired_ids == s.report.fired_ids
            assert p.report.violations == s.report.violations
            assert ([d.cause for d in p.diagnosis.ranking]
                    == [d.cause for d in s.diagnosis.ranking])

    def test_parallel_results_enter_both_cache_layers(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()
        run_grid(workers=4, **GRID)
        assert len(list(tmp_path.rglob("*.scored.pkl"))) == 4
        run_grid(workers=4, **GRID)  # all four points now memo hits
        assert STATS.last.memo_hits == 4
        assert STATS.last.executed == 0
        clear_cache()


@pytest.mark.parametrize("builder", [build_detection_matrix,
                                     build_latency_table,
                                     build_diagnosis_accuracy],
                         ids=["e1", "e2", "e4"])
def test_tables_byte_identical_serial_vs_parallel(builder, no_cache):
    serial = builder(TINY, workers=1)
    clear_cache()
    parallel = builder(TINY, workers=4)
    assert parallel.render() == serial.render()
