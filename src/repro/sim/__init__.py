"""Vehicle simulation substrate (the CARLA stand-in).

The paper runs its vehicle under test in CARLA via the Python API.  This
package provides a deterministic, laptop-scale replacement: a fixed-step
closed-loop simulator with bicycle-model vehicle dynamics, actuator lag,
and rate-scheduled noisy sensors.  ADAssure itself only consumes the traces
this loop produces, so the substitution preserves the debugged behaviour
(see DESIGN.md, "Substitutions").
"""

from repro.sim.actuators import ActuatorLimits, Actuators
from repro.sim.dynamics import (
    DynamicBicycleModel,
    KinematicBicycleModel,
    VehicleParams,
    VehicleState,
)
from repro.sim.engine import RunResult, SimulationRunner, run_scenario
from repro.sim.lead import LeadSpeedEvent, LeadVehicle, LeadVehicleConfig
from repro.sim.rng import RngStreams
from repro.sim.scenario import (
    Scenario,
    ScenarioOutcome,
    acc_scenario,
    standard_scenarios,
)
from repro.sim.vehicle import Vehicle
from repro.sim.batch import BatchCompatError, LaneSpec, run_batch

__all__ = [
    "BatchCompatError",
    "LaneSpec",
    "run_batch",
    "VehicleParams",
    "VehicleState",
    "KinematicBicycleModel",
    "DynamicBicycleModel",
    "ActuatorLimits",
    "Actuators",
    "Vehicle",
    "RngStreams",
    "Scenario",
    "ScenarioOutcome",
    "standard_scenarios",
    "acc_scenario",
    "LeadVehicle",
    "LeadVehicleConfig",
    "LeadSpeedEvent",
    "SimulationRunner",
    "RunResult",
    "run_scenario",
]
