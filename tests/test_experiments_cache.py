"""Tests for the persistent on-disk run cache and the bounded memo."""

import pytest

from repro.cli import main
from repro.experiments.cache import (
    CACHE_FORMAT_VERSION,
    RunCache,
    cache_key,
    default_cache_dir,
)
from repro.experiments.runner import (
    _MEMO,
    clear_cache,
    resolve_workers,
    run_grid,
    run_scored,
    set_memo_limit,
)
from repro.experiments.stats import STATS

POINT = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
             attacks=("gps_bias",), seeds=(7,), onset=5.0, duration=12.0)


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A per-test cache dir with an empty memo."""
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADASSURE_CACHE", raising=False)
    clear_cache()
    yield tmp_path
    clear_cache()


class TestCacheKey:
    BASE = ("s_curve", "pure_pursuit", "gps_bias", 1.0, 7, 15.0, None)

    def test_stable(self):
        assert cache_key(*self.BASE) == cache_key(*self.BASE)

    @pytest.mark.parametrize("index,value", [
        (0, "straight"),       # scenario
        (1, "stanley"),        # controller
        (2, "gps_drift"),      # attack
        (3, 0.5),              # intensity
        (4, 8),                # seed
        (5, 10.0),             # onset
        (6, 30.0),             # duration
    ])
    def test_any_coordinate_changes_key(self, index, value):
        changed = list(self.BASE)
        changed[index] = value
        assert cache_key(*changed) != cache_key(*self.BASE)

    def test_catalog_fingerprint_changes_key(self):
        assert (cache_key(*self.BASE, catalog="deadbeef")
                != cache_key(*self.BASE))

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        cache = RunCache()
        assert cache.root == tmp_path / "alt" / f"v{CACHE_FORMAT_VERSION}"


class TestDiskRoundTrip:
    def test_hit_after_memo_clear(self, fresh_cache):
        first = run_grid(**POINT)[0]
        assert STATS.last.executed == 1
        clear_cache()  # memo gone, disk stays
        second = run_grid(**POINT)[0]
        assert STATS.last.disk_hits == 1
        assert STATS.last.executed == 0
        # Bit-identical scoring either way.
        assert second.report.fired_ids == first.report.fired_ids
        assert second.report.duration == first.report.duration
        assert ([d.cause for d in second.diagnosis.ranking]
                == [d.cause for d in first.diagnosis.ranking])
        assert second.result.metrics == first.result.metrics
        assert second.result.trace.records == first.result.trace.records

    def test_changed_inputs_miss(self, fresh_cache):
        run_grid(**POINT)
        clear_cache()
        changed = dict(POINT, seeds=(8,))
        run_grid(**changed)
        assert STATS.last.disk_hits == 0
        assert STATS.last.executed == 1

    def test_corrupt_trace_silently_reruns(self, fresh_cache):
        from repro.trace.io import trace_from_bytes

        run_grid(**POINT)
        traces = list(fresh_cache.rglob("*.trace.npz"))
        assert traces, "cache wrote no trace payloads"
        traces[0].write_bytes(b"this is not a trace payload")
        clear_cache()
        runs = run_grid(**POINT)  # must re-simulate, not raise
        assert len(runs) == 1
        assert STATS.last.executed == 1
        assert STATS.last.disk_errors >= 1
        # The corrupt entry was evicted and rewritten as a valid trace.
        assert len(trace_from_bytes(traces[0].read_bytes())) > 0

    def test_corrupt_pickle_silently_reruns(self, fresh_cache):
        run_grid(**POINT)
        scored = list(fresh_cache.rglob("*.scored.pkl"))
        assert scored
        scored[0].write_bytes(b"\x80garbage")
        clear_cache()
        assert len(run_grid(**POINT)) == 1
        assert STATS.last.executed == 1

    def test_truncated_pickle_silently_reruns(self, fresh_cache):
        run_grid(**POINT)
        scored = list(fresh_cache.rglob("*.scored.pkl"))
        data = scored[0].read_bytes()
        scored[0].write_bytes(data[: len(data) // 2])
        clear_cache()
        assert len(run_grid(**POINT)) == 1
        assert STATS.last.executed == 1

    def test_cache_disabled_by_env(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE", "0")
        run_grid(**POINT)
        assert not any(fresh_cache.rglob("*.scored.pkl"))
        clear_cache()
        run_grid(**POINT)
        assert STATS.last.disk_hits == 0
        assert STATS.last.executed == 1

    def test_clear_cache_disk_flag(self, fresh_cache):
        run_grid(**POINT)
        assert any(fresh_cache.rglob("*.scored.pkl"))
        clear_cache(disk=True)
        assert not any(fresh_cache.rglob("*.scored.pkl"))


class TestRunScored:
    """Off-grid runs (E10-E13 style) go through the same cache layers."""

    @staticmethod
    def _simulate(seed=3):
        from repro.attacks.campaign import standard_attack
        from repro.sim.engine import run_scenario
        from repro.sim.scenario import standard_scenarios

        scenario = standard_scenarios(seed=seed, duration=12.0)["s_curve"]
        return run_scenario(scenario, controller="pure_pursuit",
                            campaign=standard_attack("gps_bias", onset=5.0))

    PARAMS = {"kind": "test", "scenario": "s_curve", "attack": "gps_bias",
              "seed": 3, "onset": 5.0, "duration": 12.0}

    def test_layers_and_identity(self, fresh_cache):
        result, report = run_scored(self.PARAMS, self._simulate)
        assert STATS.last.executed == 1
        # Second call: memo hit, no simulation.
        again = run_scored(self.PARAMS, self._simulate)
        assert STATS.last.memo_hits == 1
        assert again[1].fired_ids == report.fired_ids
        # Memo cleared: served from disk, still identical.
        clear_cache()
        res2, rep2 = run_scored(self.PARAMS, self._simulate)
        assert STATS.last.disk_hits == 1
        assert rep2.fired_ids == report.fired_ids
        assert res2.metrics == result.metrics
        assert res2.trace.records == result.trace.records

    def test_different_params_execute(self, fresh_cache):
        run_scored(self.PARAMS, self._simulate)
        run_scored(dict(self.PARAMS, seed=4), lambda: self._simulate(4))
        assert STATS.last.executed == 1


class TestMemoLru:
    def test_memo_is_bounded(self, fresh_cache):
        set_memo_limit(2)
        try:
            for seed in (1, 2, 3, 4):
                run_grid(**dict(POINT, seeds=(seed,)))
            assert len(_MEMO) == 2
            # Most recent seeds survive, oldest were evicted.
            kept_seeds = {key[4] for key in _MEMO}
            assert kept_seeds == {3, 4}
        finally:
            set_memo_limit(512)

    def test_evicted_point_served_from_disk(self, fresh_cache):
        set_memo_limit(1)
        try:
            run_grid(**dict(POINT, seeds=(1,)))
            run_grid(**dict(POINT, seeds=(2,)))  # evicts seed 1 from memo
            run_grid(**dict(POINT, seeds=(1,)))
            assert STATS.last.disk_hits == 1
            assert STATS.last.executed == 0
        finally:
            set_memo_limit(512)

    def test_set_memo_limit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_memo_limit(0)


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_WORKERS", "7")
        assert resolve_workers(None) == 7

    def test_default_is_at_least_one(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_WORKERS", raising=False)
        assert resolve_workers(None) >= 1

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_WORKERS", "lots")
        assert resolve_workers(None) >= 1


class TestCacheCli:
    def test_stats_and_clear(self, fresh_cache, capsys):
        run_grid(**POINT)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert str(fresh_cache) in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 cached run(s)" in out
        assert main(["cache", "stats"]) == 0
        assert "entries    : 0" in capsys.readouterr().out
