"""Property-based tests over the simulation substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.estimator import Ekf
from repro.sim.actuators import ActuatorLimits, Actuators
from repro.sim.dynamics import KinematicBicycleModel, VehicleParams, VehicleState

steers = st.floats(min_value=-0.7, max_value=0.7, allow_nan=False)
accels = st.floats(min_value=-8.0, max_value=5.0, allow_nan=False)
speeds = st.floats(min_value=0.0, max_value=25.0, allow_nan=False)


class TestKinematicInvariants:
    @settings(max_examples=60)
    @given(steer=steers, accel=accels, v0=speeds)
    def test_state_stays_physical(self, steer, accel, v0):
        model = KinematicBicycleModel()
        state = VehicleState(v=v0)
        for _ in range(50):
            state = model.step(state, steer, accel, 0.05)
        p = model.params
        assert 0.0 <= state.v <= p.max_speed
        assert -math.pi < state.yaw <= math.pi
        assert abs(state.steer) <= p.max_steer
        assert -p.max_brake <= state.accel <= p.max_accel
        assert math.isfinite(state.x) and math.isfinite(state.y)

    @settings(max_examples=40)
    @given(steer=steers, v0=st.floats(min_value=1.0, max_value=20.0))
    def test_displacement_bounded_by_speed(self, steer, v0):
        # No input can move the vehicle farther than max-speed * time.
        model = KinematicBicycleModel(VehicleParams(drag_coeff=0.0))
        state = VehicleState(v=v0)
        steps = 100
        for _ in range(steps):
            state = model.step(state, steer, 3.0, 0.05)
        distance = math.hypot(state.x, state.y)
        assert distance <= model.params.max_speed * steps * 0.05 + 1e-6

    @settings(max_examples=40)
    @given(steer=steers, v0=speeds)
    def test_zero_dt_limit_deterministic(self, steer, v0):
        model = KinematicBicycleModel()
        s1 = model.step(VehicleState(v=v0), steer, 1.0, 0.05)
        s2 = model.step(VehicleState(v=v0), steer, 1.0, 0.05)
        assert s1 == s2


class TestActuatorInvariants:
    @settings(max_examples=60)
    @given(commands=st.lists(st.tuples(steers, accels), min_size=1,
                             max_size=60))
    def test_outputs_always_within_limits(self, commands):
        limits = ActuatorLimits()
        act = Actuators(limits)
        for steer_cmd, accel_cmd in commands:
            steer, accel = act.apply(steer_cmd, accel_cmd, 0.05)
            assert abs(steer) <= limits.steer_max + 1e-12
            assert -limits.brake_max - 1e-12 <= accel <= limits.accel_max + 1e-12

    @settings(max_examples=40)
    @given(commands=st.lists(steers, min_size=2, max_size=60))
    def test_steering_rate_limit_never_exceeded(self, commands):
        limits = ActuatorLimits()
        act = Actuators(limits)
        prev, _ = act.apply(commands[0], 0.0, 0.05)
        for cmd in commands[1:]:
            steer, _ = act.apply(cmd, 0.0, 0.05)
            assert abs(steer - prev) <= limits.steer_rate_max * 0.05 + 1e-9
            prev = steer


class TestEkfInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        measurements=st.lists(
            st.tuples(
                st.floats(min_value=-5, max_value=5, allow_nan=False),
                st.floats(min_value=-5, max_value=5, allow_nan=False),
            ),
            min_size=1, max_size=30,
        )
    )
    def test_covariance_positive_definite_under_any_measurements(self,
                                                                 measurements):
        import numpy as np

        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 5.0)
        for gx, gy in measurements:
            ekf.predict(0.0, 0.0, 0.05)
            ekf.update_gps(gx, gy)
        p = ekf.covariance
        assert np.allclose(p, p.T, atol=1e-9)
        assert np.all(np.linalg.eigvalsh(p) > 0)
        est = ekf.estimate
        assert est.v >= 0.0
        assert -math.pi < est.yaw <= math.pi
