"""IMU: yaw-rate gyro + longitudinal accelerometer.

Readings carry a constant bias drawn once per run plus white noise — the
standard error model for a consumer-grade MEMS IMU.  The EKF uses the IMU
as its prediction input, so IMU attacks corrupt dead reckoning directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.dynamics import VehicleState
from repro.sim.sensors.base import Sensor, SensorConfig

__all__ = ["ImuReading", "Imu", "ImuConfig"]


@dataclass(frozen=True, slots=True)
class ImuReading:
    """One IMU sample."""

    t: float
    yaw_rate: float
    """Gyro z-axis, rad/s."""
    accel: float
    """Longitudinal accelerometer, m/s^2."""

    def with_yaw_rate(self, yaw_rate: float) -> "ImuReading":
        return ImuReading(self.t, yaw_rate, self.accel)

    def with_accel(self, accel: float) -> "ImuReading":
        return ImuReading(self.t, self.yaw_rate, accel)


@dataclass(frozen=True, slots=True)
class ImuConfig(SensorConfig):
    """IMU noise model parameters."""

    rate_hz: float = 50.0
    gyro_noise_std: float = 0.004
    """White gyro noise, rad/s."""
    gyro_bias_std: float = 0.002
    """Std of the per-run constant gyro bias, rad/s."""
    accel_noise_std: float = 0.06
    """White accelerometer noise, m/s^2."""
    accel_bias_std: float = 0.03
    """Std of the per-run constant accelerometer bias, m/s^2."""

    def __post_init__(self) -> None:
        SensorConfig.__post_init__(self)
        if min(self.gyro_noise_std, self.gyro_bias_std,
               self.accel_noise_std, self.accel_bias_std) < 0:
            raise ValueError("noise parameters must be non-negative")


class Imu(Sensor):
    """IMU sensor producing :class:`ImuReading` samples."""

    channel = "imu"

    def __init__(self, config: ImuConfig, rng: np.random.Generator):
        super().__init__(config, rng)
        self.imu_config = config
        self._gyro_bias = float(rng.normal(0.0, config.gyro_bias_std))
        self._accel_bias = float(rng.normal(0.0, config.accel_bias_std))

    @property
    def gyro_bias(self) -> float:
        """The (hidden) constant gyro bias of this run."""
        return self._gyro_bias

    def _measure(self, t: float, state: VehicleState) -> ImuReading:
        cfg = self.imu_config
        yaw_rate = (
            state.yaw_rate
            + self._gyro_bias
            + float(self.rng.normal(0.0, cfg.gyro_noise_std))
        )
        accel = (
            state.accel
            + self._accel_bias
            + float(self.rng.normal(0.0, cfg.accel_noise_std))
        )
        return ImuReading(t=t, yaw_rate=yaw_rate, accel=accel)
