"""IMU attacks: injected gyro / accelerometer bias.

Models acoustic or EM injection against MEMS inertial sensors (or a
compromised IMU driver): the reported rates acquire a constant offset,
which corrupts the EKF's dead reckoning between GPS fixes.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.sim.sensors.imu import ImuReading

__all__ = ["ImuGyroBiasAttack", "ImuAccelBiasAttack"]


class ImuGyroBiasAttack(Attack):
    """Adds a constant bias to the yaw-rate gyro while active."""

    name = "imu_gyro_bias"
    channel = "imu"

    def __init__(self, bias: float = 0.05, window: AttackWindow | None = None):
        super().__init__(window)
        self.bias = bias

    def on_imu(self, t: float, reading: ImuReading) -> ImuReading:
        return reading.with_yaw_rate(reading.yaw_rate + self.bias)


class ImuAccelBiasAttack(Attack):
    """Adds a constant bias to the longitudinal accelerometer while active."""

    name = "imu_accel_bias"
    channel = "imu"

    def __init__(self, bias: float = 0.5, window: AttackWindow | None = None):
        super().__init__(window)
        self.bias = bias

    def on_imu(self, t: float, reading: ImuReading) -> ImuReading:
        return reading.with_accel(reading.accel + self.bias)
