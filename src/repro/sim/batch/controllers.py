"""Vectorized controller implementations for batch lanes.

Each ``_Batch*`` class mirrors one serial controller whose
``supports_batch`` capability flag is set, holding its per-lane parameters
and state as arrays.  Parameters are read off the *actual* controller
instances supplied per lane, so heterogeneous gains vectorize too; the LQR
gain lookup delegates to each instance's own DARE cache so the solved
gains are the very same objects the serial controller would use.

:class:`BatchFollower` is the vectorized ``WaypointFollower.decide``:
goal latch, curvature-limited speed profile, PID with conditional
integration, and ACC min-arbitration, all masked so that latched lanes
freeze their longitudinal state exactly like the serial early return.
"""

from __future__ import annotations

import math

import numpy as np

from repro.control.acc import AccController
from repro.control.follower import WaypointFollower
from repro.control.lqr import LqrController
from repro.control.pid import PidSpeedController
from repro.control.pure_pursuit import PurePursuitController
from repro.control.stanley import StanleyController
from repro.sim.batch import ops
from repro.sim.batch.route import BatchRoute

__all__ = ["BatchFollower", "is_vectorizable"]


def is_vectorizable(follower) -> bool:
    """True if the follower can run on the fully vectorized batch path.

    Requires the plain follower/PID/ACC classes (subclasses may override
    behaviour the vector path cannot see) and a lateral controller that
    both declares ``supports_batch`` and has a registered implementation.
    """
    return (
        type(follower) is WaypointFollower
        and type(follower.speed_controller) is PidSpeedController
        and (follower.acc is None or type(follower.acc) is AccController)
        and getattr(follower.lateral, "supports_batch", False)
        and type(follower.lateral) in _LATERAL_IMPLS
    )


class _BatchPurePursuit:
    def __init__(self, controllers: list[PurePursuitController], route: BatchRoute):
        self.route = route
        self.wheelbase = np.array([c.wheelbase for c in controllers])
        self.gain = np.array([c.lookahead_gain for c in controllers])
        self.min_la = np.array([c.min_lookahead for c in controllers])
        self.max_la = np.array([c.max_lookahead for c in controllers])
        self.max_steer = np.array([c.max_steer for c in controllers])
        n = len(controllers)
        self.hint = np.zeros(n)
        self.has_hint = np.zeros(n, dtype=bool)
        self._all = np.ones(n, dtype=bool)

    def compute(self, x, y, yaw, v, dt):
        proj = self.route.project(x, y, self.hint, self.has_hint)
        self.hint = proj.station
        self.has_hint = self._all

        lookahead = ops.pymin(
            ops.pymax(self.gain * v, self.min_la), self.max_la
        )
        target = self.route.sample(proj.station + lookahead)
        dx = target.point_x - x
        dy = target.point_y - y
        c = np.cos(-yaw)
        s = np.sin(-yaw)
        local_x = c * dx - s * dy
        local_y = s * dx + c * dy
        alpha = ops.map2(math.atan2, local_y, ops.pymax(local_x, 1e-6))
        dist = ops.pymax(ops.map2(math.hypot, local_x, local_y), 1e-3)
        steer = ops.map2(
            math.atan2, 2.0 * self.wheelbase * np.sin(alpha), dist
        )
        steer = ops.clamp(steer, -self.max_steer, self.max_steer)
        return steer, proj.cross_track, ops.angle_diff(yaw, proj.heading), proj.station


class _BatchStanley:
    def __init__(self, controllers: list[StanleyController], route: BatchRoute):
        self.route = route
        self.wheelbase = np.array([c.wheelbase for c in controllers])
        self.k_cte = np.array([c.k_cte for c in controllers])
        self.v_soft = np.array([c.v_soft for c in controllers])
        self.k_damp = np.array([c.k_damp for c in controllers])
        self.max_steer = np.array([c.max_steer for c in controllers])
        n = len(controllers)
        self.hint = np.zeros(n)
        self.has_hint = np.zeros(n, dtype=bool)
        self._all = np.ones(n, dtype=bool)
        self.prev_steer = np.zeros(n)

    def compute(self, x, y, yaw, v, dt):
        front_x = x + np.cos(yaw) * self.wheelbase
        front_y = y + np.sin(yaw) * self.wheelbase
        proj_front = self.route.project(front_x, front_y, self.hint, self.has_hint)
        self.hint = proj_front.station
        self.has_hint = self._all

        heading_err = ops.angle_diff(proj_front.heading, yaw)
        cross_term = ops.map2(
            math.atan2, -self.k_cte * proj_front.cross_track, v + self.v_soft
        )
        steer = heading_err + cross_term
        damped = (1.0 - self.k_damp) * steer + self.k_damp * self.prev_steer
        steer = np.where(self.k_damp > 0.0, damped, steer)
        steer = ops.clamp(steer, -self.max_steer, self.max_steer)
        self.prev_steer = steer

        proj_rear = self.route.project(
            x, y, proj_front.station, self._all
        )
        return (
            steer,
            proj_rear.cross_track,
            ops.angle_diff(yaw, proj_rear.heading),
            proj_rear.station,
        )


_SHARED_DARE_GAINS: dict[tuple, np.ndarray] = {}
"""Process-wide LQR DARE gain memo.  The gain is a deterministic pure
function of (weights, wheelbase, quantized speed, dt), so lanes — and
whole successive batch calls — with identical controller parameters can
share one solve and still match each serial instance's private cache bit
for bit.  Module scope (rather than per-``_BatchLqr``) makes the memo
survive across batch groups within a campaign."""

_DARE_MEMO = {"hits": 0, "solves": 0}
"""Process-lifetime reuse counters for :data:`_SHARED_DARE_GAINS`
(``--stats`` snapshots deltas into ``GridStats.dare_memo_*``)."""


def dare_memo_counters() -> dict[str, int]:
    """Snapshot of the DARE memo's process-lifetime hit/solve counters."""
    return dict(_DARE_MEMO)


class _BatchLqr:
    def __init__(self, controllers: list[LqrController], route: BatchRoute):
        self.route = route
        self.controllers = controllers
        self.wheelbase = np.array([c.wheelbase for c in controllers])
        self.preview = np.array([c.preview for c in controllers])
        self.max_steer = np.array([c.max_steer for c in controllers])
        n = len(controllers)
        self.hint = np.zeros(n)
        self.has_hint = np.zeros(n, dtype=bool)
        self._all = np.ones(n, dtype=bool)

    def _lane_gain(self, controller: LqrController, speed: float,
                   dt: float) -> np.ndarray:
        quantum = controller._SPEED_QUANTUM  # noqa: SLF001
        v = speed if speed > 0.5 else 0.5  # mirrors _gain's floor
        key = (
            int(round(v / quantum)), int(round(dt * 1e4)),
            controller.wheelbase,
            controller.q.tobytes(), controller.r.tobytes(),
        )
        gain = _SHARED_DARE_GAINS.get(key)
        if gain is None:
            gain = controller._gain(speed, dt)  # noqa: SLF001
            _SHARED_DARE_GAINS[key] = gain
            _DARE_MEMO["solves"] += 1
        else:
            _DARE_MEMO["hits"] += 1
        return gain

    def compute(self, x, y, yaw, v, dt):
        proj = self.route.project(x, y, self.hint, self.has_hint)
        self.hint = proj.station
        self.has_hint = self._all

        cte = proj.cross_track
        heading_err = ops.angle_diff(yaw, proj.heading)
        kmat = np.empty((len(x), 1, 2))
        v_list = v.tolist()
        for i, controller in enumerate(self.controllers):
            kmat[i] = self._lane_gain(controller, v_list[i], dt)
        e = np.stack([cte, heading_err], axis=1)
        feedback = -(np.matmul(kmat, e[:, :, None])[:, 0, 0])

        kappa = self.route.sample(proj.station + self.preview).curvature
        feedforward = ops.map1(math.atan, self.wheelbase * kappa)
        steer = ops.clamp(feedback + feedforward, -self.max_steer, self.max_steer)
        return steer, cte, heading_err, proj.station


_LATERAL_IMPLS = {
    PurePursuitController: _BatchPurePursuit,
    StanleyController: _BatchStanley,
    LqrController: _BatchLqr,
}


class BatchFollower:
    """Vectorized ``WaypointFollower`` over a subset of batch lanes.

    Args:
        followers: one (vectorizable) follower per lane of the subset.
        route: the shared batched route.
    """

    def __init__(self, followers: list[WaypointFollower], route: BatchRoute):
        self.n = n = len(followers)
        self.route = route

        # Lateral controllers, grouped by concrete type.
        self._groups: list[tuple[np.ndarray, object]] = []
        by_type: dict[type, list[int]] = {}
        for i, follower in enumerate(followers):
            by_type.setdefault(type(follower.lateral), []).append(i)
        for lateral_type, lane_ids in by_type.items():
            impl = _LATERAL_IMPLS[lateral_type](
                [followers[i].lateral for i in lane_ids], route
            )
            self._groups.append((np.array(lane_ids), impl))

        profiles = [f.profile for f in followers]
        self.cruise = np.array([p.cruise_speed for p in profiles])
        self.budget = np.array([p.lat_accel_budget for p in profiles])
        self.preview = np.array([p.preview for p in profiles])
        self.brake_decel = np.array([p.brake_decel for p in profiles])
        self.stop_at_goal = np.array([p.stop_at_goal for p in profiles])

        pids = [f.speed_controller for f in followers]
        self.kp = np.array([p.kp for p in pids])
        self.ki = np.array([p.ki for p in pids])
        self.kd = np.array([p.kd for p in pids])
        self.pid_accel_max = np.array([p.accel_max for p in pids])
        self.pid_brake_max = np.array([p.brake_max for p in pids])
        self.int_limit = np.array([p.integral_limit for p in pids])
        self.integral = np.zeros(n)
        self.prev_error = np.zeros(n)
        self.has_prev = np.zeros(n, dtype=bool)

        self.has_acc = np.array([f.acc is not None for f in followers])
        acc_cfg = [
            (f.acc.config if f.acc is not None else AccController().config)
            for f in followers
        ]
        self.acc_time_gap = np.array([c.time_gap for c in acc_cfg])
        self.acc_d0 = np.array([c.standstill_gap for c in acc_cfg])
        self.acc_k_gap = np.array([c.k_gap for c in acc_cfg])
        self.acc_k_rate = np.array([c.k_rate for c in acc_cfg])
        self.acc_accel_max = np.array([c.accel_max for c in acc_cfg])
        self.acc_brake_max = np.array([c.brake_max for c in acc_cfg])
        self.last_radar_range = np.zeros(n)
        self.last_radar_rate = np.zeros(n)
        self.has_last_radar = np.zeros(n, dtype=bool)

        self.goal_latched = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------
    def _target_speed(self, station: np.ndarray) -> np.ndarray:
        """Vectorized ``SpeedProfile.target_speed``."""
        target = self.cruise.copy()
        samples = 4
        for i in range(samples + 1):
            sample = self.route.sample(station + self.preview * i / samples)
            kappa = np.abs(sample.curvature)
            with np.errstate(divide="ignore"):
                cand = np.sqrt(self.budget / kappa)
            target = np.where(
                kappa > 1e-6, ops.pymin(target, cand), target
            )
        if not self.route.closed:
            remaining = self.route.remaining(station)
            v_stop = np.sqrt(ops.pymax(2.0 * self.brake_decel * remaining, 0.0))
            target = np.where(
                self.stop_at_goal, ops.pymin(target, v_stop), target
            )
        return ops.pymax(target, 0.0)

    # ------------------------------------------------------------------
    def decide(
        self,
        est_x: np.ndarray,
        est_y: np.ndarray,
        est_yaw: np.ndarray,
        est_v: np.ndarray,
        dt: float,
        radar_range: np.ndarray,
        radar_rate: np.ndarray,
        radar_fresh: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """One control step for every lane of the subset.

        Returns ``(steer_cmd, accel_cmd, cte, heading_err, station,
        target_speed)`` arrays.
        """
        n = self.n
        steer = np.empty(n)
        cte = np.empty(n)
        heading_err = np.empty(n)
        station = np.empty(n)
        for lane_ids, impl in self._groups:
            g_steer, g_cte, g_he, g_station = impl.compute(
                est_x[lane_ids], est_y[lane_ids], est_yaw[lane_ids],
                est_v[lane_ids], dt,
            )
            steer[lane_ids] = g_steer
            cte[lane_ids] = g_cte
            heading_err[lane_ids] = g_he
            station[lane_ids] = g_station

        if not self.route.closed:
            remaining = self.route.remaining(station)
            hit_goal = (remaining < 3.0) | ((remaining < 8.0) & (est_v < 2.0))
            self.goal_latched |= self.stop_at_goal & hit_goal
        latched = self.goal_latched
        active = ~latched

        target_speed = self._target_speed(station)

        # --- PID with conditional integration (state frozen on latch) --
        error = target_speed - est_v
        derivative = np.where(
            self.has_prev, (error - self.prev_error) / dt, 0.0
        )
        self.prev_error = np.where(active, error, self.prev_error)
        self.has_prev |= active
        unsat = self.kp * error + self.ki * self.integral + self.kd * derivative
        saturated_hi = unsat > self.pid_accel_max
        saturated_lo = unsat < -self.pid_brake_max
        allow = ~((saturated_hi & (error > 0)) | (saturated_lo & (error < 0)))
        new_integral = ops.clamp(
            self.integral + error * dt, -self.int_limit, self.int_limit
        )
        self.integral = np.where(active & allow, new_integral, self.integral)
        output = self.kp * error + self.ki * self.integral + self.kd * derivative
        accel_cmd = ops.clamp(output, -self.pid_brake_max, self.pid_accel_max)

        # --- ACC min-arbitration ---------------------------------------
        if self.has_acc.any():
            take = active & self.has_acc & radar_fresh
            self.last_radar_range = np.where(
                take, radar_range, self.last_radar_range
            )
            self.last_radar_rate = np.where(take, radar_rate, self.last_radar_rate)
            self.has_last_radar |= take
            gap_error = self.last_radar_range - (
                self.acc_d0 + self.acc_time_gap * est_v
            )
            acc_accel = ops.clamp(
                self.acc_k_gap * gap_error + self.acc_k_rate * self.last_radar_rate,
                -self.acc_brake_max,
                self.acc_accel_max,
            )
            use = self.has_acc & self.has_last_radar
            accel_cmd = np.where(use, ops.pymin(accel_cmd, acc_accel), accel_cmd)

        steer_cmd = np.where(latched, 0.0, steer)
        accel_cmd = np.where(latched, -self.brake_decel, accel_cmd)
        target_speed = np.where(latched, 0.0, target_speed)
        return steer_cmd, accel_cmd, cte, heading_err, station, target_speed
