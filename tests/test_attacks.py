"""Tests for repro.attacks: windows, transforms, campaign factory."""

import math

import numpy as np
import pytest

from repro.attacks.actuator import SteeringOffsetAttack, SteeringStuckAttack
from repro.attacks.base import Attack, AttackWindow
from repro.attacks.campaign import ATTACK_CLASSES, AttackCampaign, make_attack, standard_attack
from repro.attacks.channel import CommandDelayAttack, CommandDropAttack
from repro.attacks.compass import CompassOffsetAttack
from repro.attacks.gps import (
    GpsBiasAttack,
    GpsDriftAttack,
    GpsFreezeAttack,
    GpsNoiseAttack,
    GpsReplayAttack,
)
from repro.attacks.imu import ImuAccelBiasAttack, ImuGyroBiasAttack
from repro.attacks.odometry import OdometryScaleAttack
from repro.sim.sensors.compass import CompassReading
from repro.sim.sensors.gps import GpsFix
from repro.sim.sensors.imu import ImuReading
from repro.sim.sensors.odometry import OdometryReading


class TestAttackWindow:
    def test_contains_half_open(self):
        w = AttackWindow(10.0, 20.0)
        assert not w.contains(9.99)
        assert w.contains(10.0)
        assert w.contains(19.99)
        assert not w.contains(20.0)

    def test_elapsed(self):
        w = AttackWindow(10.0, 20.0)
        assert w.elapsed(5.0) == 0.0
        assert w.elapsed(13.5) == pytest.approx(3.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            AttackWindow(5.0, 5.0)

    def test_default_never_ends(self):
        assert AttackWindow(0.0).contains(1e9)


class TestBaseHooks:
    def test_default_hooks_are_identity(self):
        attack = Attack()
        fix = GpsFix(1.0, 2.0, 3.0)
        assert attack.on_gps(1.0, fix) is fix
        assert attack.on_command(1.0, 0.1, 0.2) == (0.1, 0.2)


class TestGpsAttacks:
    def test_bias(self):
        attack = GpsBiasAttack(1.0, -2.0)
        out = attack.on_gps(0.0, GpsFix(0.0, 10.0, 20.0))
        assert (out.x, out.y) == (11.0, 18.0)
        assert attack.magnitude == pytest.approx(math.hypot(1, 2))

    def test_drift_ramps(self):
        attack = GpsDriftAttack(0.0, 0.5, window=AttackWindow(10.0))
        out = attack.on_gps(14.0, GpsFix(14.0, 0.0, 0.0))
        assert out.y == pytest.approx(2.0)

    def test_freeze_replays_pre_onset_fix(self):
        attack = GpsFreezeAttack(window=AttackWindow(5.0))
        attack.observe_gps(4.0, GpsFix(4.0, 40.0, 1.0))
        out = attack.on_gps(6.0, GpsFix(6.0, 60.0, 2.0))
        assert (out.x, out.y) == (40.0, 1.0)
        assert out.t == 6.0

    def test_freeze_without_history_freezes_first(self):
        attack = GpsFreezeAttack(window=AttackWindow(0.0))
        out1 = attack.on_gps(0.0, GpsFix(0.0, 1.0, 1.0))
        out2 = attack.on_gps(1.0, GpsFix(1.0, 9.0, 9.0))
        assert (out2.x, out2.y) == (out1.x, out1.y)

    def test_replay_delays(self):
        attack = GpsReplayAttack(delay=2.0, window=AttackWindow(5.0))
        for i in range(11):
            attack.observe_gps(i * 1.0, GpsFix(i * 1.0, i * 10.0, 0.0))
        out = attack.on_gps(8.0, GpsFix(8.0, 80.0, 0.0))
        assert out.x == pytest.approx(60.0)

    def test_noise_requires_rng(self):
        attack = GpsNoiseAttack(extra_std=1.0)
        with pytest.raises(RuntimeError):
            attack.on_gps(0.0, GpsFix(0.0, 0.0, 0.0))
        attack.bind_rng(np.random.default_rng(0))
        out = attack.on_gps(0.0, GpsFix(0.0, 0.0, 0.0))
        assert (out.x, out.y) != (0.0, 0.0)

    def test_replay_validation(self):
        with pytest.raises(ValueError):
            GpsReplayAttack(delay=0.0)


class TestImuOdomCompass:
    def test_gyro_bias(self):
        attack = ImuGyroBiasAttack(bias=0.1)
        out = attack.on_imu(0.0, ImuReading(0.0, 0.2, 1.0))
        assert out.yaw_rate == pytest.approx(0.3)
        assert out.accel == 1.0

    def test_accel_bias(self):
        attack = ImuAccelBiasAttack(bias=0.5)
        out = attack.on_imu(0.0, ImuReading(0.0, 0.2, 1.0))
        assert out.accel == pytest.approx(1.5)

    def test_odometry_scale(self):
        attack = OdometryScaleAttack(scale=0.5)
        out = attack.on_odometry(0.0, OdometryReading(0.0, 8.0))
        assert out.speed == pytest.approx(4.0)

    def test_odometry_scale_validation(self):
        with pytest.raises(ValueError):
            OdometryScaleAttack(scale=-0.1)

    def test_compass_offset_wraps(self):
        attack = CompassOffsetAttack(offset=1.0)
        out = attack.on_compass(0.0, CompassReading(0.0, 3.0))
        assert -math.pi < out.yaw <= math.pi


class TestActuatorAttacks:
    def test_steer_offset(self):
        attack = SteeringOffsetAttack(offset=0.05)
        assert attack.on_command(0.0, 0.1, 1.0) == (pytest.approx(0.15), 1.0)

    def test_stuck_holds_first_value(self):
        attack = SteeringStuckAttack()
        attack.on_command(0.0, 0.2, 1.0)
        out = attack.on_command(1.0, -0.4, 1.0)
        assert out[0] == pytest.approx(0.2)
        attack.reset()
        out = attack.on_command(2.0, -0.4, 1.0)
        assert out[0] == pytest.approx(-0.4)


class TestChannelAttacks:
    def test_drop_probability(self):
        attack = CommandDropAttack(drop_prob=0.5)
        attack.bind_rng(np.random.default_rng(0))
        dropped = sum(
            attack.on_command(0.0, 0.1, 0.1) is None for _ in range(1000)
        )
        assert 400 < dropped < 600

    def test_drop_requires_rng(self):
        with pytest.raises(RuntimeError):
            CommandDropAttack().on_command(0.0, 0.1, 0.1)

    def test_delay_shifts_commands(self):
        attack = CommandDelayAttack(delay_steps=2)
        assert attack.on_command(0.0, 1.0, 0.0) == (1.0, 0.0)  # backlog hold
        assert attack.on_command(0.1, 2.0, 0.0) == (1.0, 0.0)
        assert attack.on_command(0.2, 3.0, 0.0) == (1.0, 0.0)
        assert attack.on_command(0.3, 4.0, 0.0) == (2.0, 0.0)

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            CommandDelayAttack(delay_steps=0)
        with pytest.raises(ValueError):
            CommandDropAttack(drop_prob=0.0)


class TestCampaign:
    def test_none_campaign(self):
        c = AttackCampaign.none()
        assert c.label == "none"
        assert c.attacks == []

    def test_standard_attack_labels(self):
        c = standard_attack("gps_bias", intensity=0.5, onset=10.0)
        assert c.label == "gps_bias"
        assert len(c.attacks) == 1
        assert c.attacks[0].window.start == 10.0

    def test_standard_none(self):
        assert standard_attack("none").attacks == []

    def test_every_class_instantiates(self):
        for name in ATTACK_CLASSES:
            attack = make_attack(name, intensity=1.0)
            assert attack.channel in ("gps", "imu", "odometry", "compass",
                                      "radar", "command")

    def test_intensity_scales_magnitude(self):
        weak = make_attack("gps_bias", intensity=0.5)
        strong = make_attack("gps_bias", intensity=2.0)
        assert strong.magnitude > weak.magnitude

    def test_unknown_class(self):
        with pytest.raises(ValueError, match="unknown attack class"):
            make_attack("nope")

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            make_attack("gps_bias", intensity=0.0)
