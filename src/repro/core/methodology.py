"""The ADAssure methodology loop: check -> diagnose -> find gaps -> refine.

The paper's methodology is iterative: domain experts start from a small
behavioural assertion set, run the anomaly corpus, and author new
assertions wherever an anomaly is *undetected* (no assertion fired) or
*undiagnosed* (assertions fired but the root cause stays ambiguous).
This module mechanizes that loop over the staged built-in catalog, which
is exactly how the E9 experiment demonstrates convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import CATALOG_STAGES, default_catalog
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.knowledge import KnowledgeBase, default_knowledge_base
from repro.trace.schema import Trace

__all__ = ["AnomalyCase", "GapAnalysis", "RefinementIteration", "RefinementLoop"]


@dataclass(frozen=True, slots=True)
class AnomalyCase:
    """One corpus entry: a trace plus its (experiment-known) true cause."""

    trace: Trace
    true_cause: str


@dataclass(frozen=True, slots=True)
class GapAnalysis:
    """Outcome of checking one anomaly case against one assertion set."""

    true_cause: str
    detected: bool
    """At least one assertion fired after the attack onset."""
    diagnosed: bool
    """The true cause ranked first."""
    ambiguous: bool
    """Detected, and the true cause is in the top 2 but not confidently #1."""
    fired_ids: tuple[str, ...]
    top_cause: str

    @property
    def is_gap(self) -> bool:
        """An anomaly the current assertion set fails to explain."""
        return not (self.detected and self.diagnosed)


@dataclass(slots=True)
class RefinementIteration:
    """Result of one methodology iteration over the whole corpus."""

    stage_names: tuple[str, ...]
    assertion_ids: tuple[str, ...]
    gaps: list[GapAnalysis] = field(default_factory=list)

    @property
    def undetected(self) -> int:
        return sum(1 for g in self.gaps if not g.detected)

    @property
    def undiagnosed(self) -> int:
        return sum(1 for g in self.gaps if g.is_gap)

    @property
    def diagnosed(self) -> int:
        return sum(1 for g in self.gaps if g.diagnosed)

    @property
    def total(self) -> int:
        return len(self.gaps)


class RefinementLoop:
    """Runs the staged catalog over an anomaly corpus, one stage at a time.

    Each iteration adds one stage of :data:`CATALOG_STAGES` to the active
    assertion set (mirroring domain experts authoring the next family of
    assertions in response to remaining gaps), re-checks every corpus
    case, and records detection/diagnosis coverage.
    """

    def __init__(self, corpus: list[AnomalyCase],
                 kb: KnowledgeBase | None = None):
        if not corpus:
            raise ValueError("refinement needs a non-empty anomaly corpus")
        self.corpus = corpus
        self.kb = kb or default_knowledge_base()

    def analyze_case(self, case: AnomalyCase,
                     assertion_ids: tuple[str, ...]) -> GapAnalysis:
        """Check + diagnose one case with one assertion subset."""
        assertions = default_catalog(assertion_ids)
        report = check_trace(case.trace, assertions)
        onset = case.trace.attack_onset()
        if onset is None:
            detected = report.any_fired
        else:
            detected = report.detection_latency(onset) is not None
        kb = self.kb.restricted(frozenset(assertion_ids))
        result = diagnose(report, kb)
        top = result.top().cause
        rank = result.rank_of(case.true_cause)
        diagnosed = detected and top == case.true_cause
        ambiguous = (
            detected and not diagnosed and rank is not None and rank <= 2
        )
        return GapAnalysis(
            true_cause=case.true_cause,
            detected=detected,
            diagnosed=diagnosed,
            ambiguous=ambiguous,
            fired_ids=tuple(report.fired_ids),
            top_cause=top,
        )

    def run(self) -> list[RefinementIteration]:
        """Execute every refinement iteration; returns one entry per stage."""
        iterations: list[RefinementIteration] = []
        active_stages: list[str] = []
        active_ids: list[str] = []
        for stage_name, ids in CATALOG_STAGES.items():
            active_stages.append(stage_name)
            active_ids.extend(ids)
            iteration = RefinementIteration(
                stage_names=tuple(active_stages),
                assertion_ids=tuple(active_ids),
            )
            for case in self.corpus:
                iteration.gaps.append(
                    self.analyze_case(case, tuple(active_ids))
                )
            iterations.append(iteration)
        return iterations
