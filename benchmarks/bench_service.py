"""Bench — streaming service load generator: sessions/sec, p99 verdict.

As a pytest-benchmark (``pytest benchmarks/bench_service.py
--benchmark-only``) this times a small concurrent fleet against an
in-process server and asserts the robustness invariants held under load.

As a script it produces the committed artifact::

    PYTHONPATH=src python benchmarks/bench_service.py --sessions 32

writing ``BENCH_service.json`` with sessions/sec, verdict-latency
percentiles, and the simulation-engine provenance (``sim_engine`` /
``pool_policy``) of the traces that were streamed.
"""

import asyncio

from repro.service.loadgen import run_load


def test_service_load_small(benchmark, tmp_path):
    """8 concurrent sessions through the full server stack."""
    metrics = benchmark.pedantic(
        lambda: asyncio.run(run_load(
            8, shards=1, duration=10.0, chunk_records=64,
            store_dir=str(tmp_path / "store"))),
        rounds=1, iterations=1)
    print()
    print(f"sessions/s: {metrics['sessions_per_s']}  "
          f"verdict p99: {metrics['verdict_latency_s']['p99']}s  "
          f"engine: {metrics['trace_provenance']['sim_engine']}")
    assert metrics["sessions"] == 8
    # every session produced a verdict (the fleet view counted them all)
    assert metrics["verdict_latency_s"]["n"] == 8
    # provenance must travel with the numbers (satellite: BENCH_service
    # records the engine that generated its inputs)
    assert metrics["trace_provenance"]["sim_engine"] in ("serial", "batch")
    assert metrics["trace_provenance"]["pool_policy"]


def _main(argv=None) -> int:
    """Write ``BENCH_service.json`` (the committed artifact)."""
    import argparse
    import json
    import platform
    import os
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_service.py",
        description=_main.__doc__)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--chunk-records", type=int, default=64)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--sim-engine", default=None,
                        choices=("serial", "batch"))
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args(argv)

    old_cache = os.environ.get("ADASSURE_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="adassure-bench-svc-") as tmp:
        os.environ["ADASSURE_CACHE_DIR"] = str(Path(tmp) / "cache")
        try:
            metrics = asyncio.run(run_load(
                args.sessions, shards=args.shards,
                chunk_records=args.chunk_records, duration=args.duration,
                sim_engine=args.sim_engine,
                store_dir=str(Path(tmp) / "store")))
        finally:
            if old_cache is None:
                os.environ.pop("ADASSURE_CACHE_DIR", None)
            else:
                os.environ["ADASSURE_CACHE_DIR"] = old_cache

    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "sessions": args.sessions,
            "shards": args.shards,
            "chunk_records": args.chunk_records,
            "trace_duration_s": args.duration,
        },
        "service": metrics,
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"{metrics['sessions']} sessions in {metrics['wall_s']}s "
          f"({metrics['sessions_per_s']}/s), verdict p99 "
          f"{metrics['verdict_latency_s']['p99']}s, engine "
          f"{metrics['trace_provenance']['sim_engine']}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
