"""Tests for repro.control.estimator: the EKF."""

import math

import numpy as np
import pytest

from repro.control.estimator import Ekf, EkfConfig


class TestEkfConfig:
    def test_defaults_valid(self):
        EkfConfig()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EkfConfig(sigma_gps=0.0)
        with pytest.raises(ValueError):
            EkfConfig(q_v=-1.0)


class TestEkfBasics:
    def test_reset_sets_state(self):
        ekf = Ekf()
        ekf.reset(1.0, 2.0, 0.5, 3.0)
        est = ekf.estimate
        assert (est.x, est.y, est.yaw, est.v) == (1.0, 2.0, 0.5, 3.0)

    def test_predict_propagates(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 10.0)
        ekf.predict(yaw_rate=0.0, accel=0.0, dt=0.1)
        assert ekf.estimate.x == pytest.approx(1.0)

    def test_predict_grows_uncertainty(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 5.0)
        before = ekf.estimate.cov_trace
        for _ in range(10):
            ekf.predict(0.0, 0.0, 0.1)
        assert ekf.estimate.cov_trace > before

    def test_update_shrinks_uncertainty(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 5.0)
        for _ in range(5):
            ekf.predict(0.0, 0.0, 0.1)
        before = ekf.estimate.cov_trace
        ekf.update_gps(0.5 * 5, 0.0)
        assert ekf.estimate.cov_trace < before

    def test_predict_rejects_bad_dt(self):
        ekf = Ekf()
        with pytest.raises(ValueError):
            ekf.predict(0.0, 0.0, 0.0)

    def test_speed_never_negative(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 0.1)
        ekf.predict(0.0, -5.0, 1.0)
        assert ekf.estimate.v >= 0.0


class TestEkfConvergence:
    def test_converges_on_noisy_straight_drive(self):
        rng = np.random.default_rng(0)
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 0.0)
        dt = 0.05
        x = 0.0
        v = 8.0
        errors = []
        for step in range(400):
            t = step * dt
            x += v * dt
            ekf.predict(yaw_rate=rng.normal(0, 0.004),
                        accel=rng.normal(0, 0.06), dt=dt)
            if step % 2 == 0:
                ekf.update_gps(x + rng.normal(0, 0.35),
                               rng.normal(0, 0.35))
                ekf.update_compass(rng.normal(0, 0.01))
            ekf.update_speed(v + rng.normal(0, 0.05))
            if t > 5.0:
                est = ekf.estimate
                errors.append(math.hypot(est.x - x, est.y))
        assert float(np.mean(errors)) < 0.5

    def test_heading_wrap_handled(self):
        # Estimate near +pi, measurement near -pi: innovation must wrap.
        ekf = Ekf()
        ekf.reset(0.0, 0.0, math.pi - 0.02, 5.0)
        ekf.update_compass(-math.pi + 0.02)
        est = ekf.estimate
        # The fused yaw stays near the +/-pi seam, not near zero.
        assert abs(est.yaw) > 3.0

    def test_nis_spikes_on_inconsistent_gps(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 8.0)
        for _ in range(20):
            ekf.predict(0.0, 0.0, 0.05)
            ekf.update_gps(ekf.estimate.x, 0.0)
        calm = ekf.estimate.nis_gps
        nis = ekf.update_gps(ekf.estimate.x + 5.0, 5.0)
        assert nis > 20 * max(calm, 0.05)

    def test_nis_reported_per_channel(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 5.0)
        ekf.predict(0.0, 0.0, 0.05)
        ekf.update_speed(5.0)
        est = ekf.estimate
        assert est.nis_speed >= 0.0
        assert est.nis_gps == 0.0  # gps never updated yet


class TestJosephForm:
    def test_covariance_stays_symmetric_positive(self):
        ekf = Ekf()
        ekf.reset(0.0, 0.0, 0.0, 5.0)
        rng = np.random.default_rng(1)
        for _ in range(200):
            ekf.predict(rng.normal(0, 0.01), rng.normal(0, 0.1), 0.05)
            ekf.update_gps(rng.normal(0, 1), rng.normal(0, 1))
            ekf.update_speed(max(rng.normal(5, 0.1), 0))
            ekf.update_compass(rng.normal(0, 0.05))
        p = ekf.covariance
        assert np.allclose(p, p.T, atol=1e-10)
        assert np.all(np.linalg.eigvalsh(p) > 0)
