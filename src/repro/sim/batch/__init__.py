"""Batched array-native simulation: step a whole grid as NumPy arrays.

The package mirrors the serial :class:`~repro.sim.engine.SimulationRunner`
bit-for-bit (the serial engine is the differential oracle — see
``docs/methodology.md``) while stepping N compatible runs in lockstep as
struct-of-arrays state.  Entry point: :func:`run_batch`.
"""

from repro.sim.batch.engine import BatchCompatError, LaneSpec, run_batch

__all__ = ["BatchCompatError", "LaneSpec", "run_batch"]
