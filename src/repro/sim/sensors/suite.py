"""The vehicle's sensor suite: all sensors polled together each step."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.dynamics import VehicleState
from repro.sim.rng import RngStreams
from repro.sim.sensors.compass import Compass, CompassConfig, CompassReading
from repro.sim.sensors.gps import Gps, GpsConfig, GpsFix
from repro.sim.sensors.imu import Imu, ImuConfig, ImuReading
from repro.sim.sensors.odometry import Odometry, OdometryConfig, OdometryReading

__all__ = ["SensorSuiteConfig", "SensorReadings", "SensorSuite"]


@dataclass(frozen=True, slots=True)
class SensorSuiteConfig:
    """Configuration of the full suite; defaults match an AV research car."""

    gps: GpsConfig = field(default_factory=GpsConfig)
    imu: ImuConfig = field(default_factory=ImuConfig)
    odometry: OdometryConfig = field(default_factory=OdometryConfig)
    compass: CompassConfig = field(default_factory=CompassConfig)

    @staticmethod
    def noiseless() -> "SensorSuiteConfig":
        """An idealized suite (zero noise), useful for unit tests."""
        return SensorSuiteConfig(
            gps=GpsConfig(noise_std=0.0, walk_std=0.0),
            imu=ImuConfig(
                gyro_noise_std=0.0,
                gyro_bias_std=0.0,
                accel_noise_std=0.0,
                accel_bias_std=0.0,
            ),
            odometry=OdometryConfig(noise_std=0.0, scale_error_std=0.0),
            compass=CompassConfig(noise_std=0.0),
        )


@dataclass(slots=True)
class SensorReadings:
    """Fresh readings produced in one engine step (``None`` = not due)."""

    gps: GpsFix | None = None
    imu: ImuReading | None = None
    odometry: OdometryReading | None = None
    compass: CompassReading | None = None

    def any_fresh(self) -> bool:
        return any(
            r is not None for r in (self.gps, self.imu, self.odometry, self.compass)
        )


class SensorSuite:
    """All four sensors, each on its own noise stream and schedule."""

    def __init__(self, config: SensorSuiteConfig, rngs: RngStreams):
        self.config = config
        self.gps = Gps(config.gps, rngs.stream("sensor.gps"))
        self.imu = Imu(config.imu, rngs.stream("sensor.imu"))
        self.odometry = Odometry(config.odometry, rngs.stream("sensor.odometry"))
        self.compass = Compass(config.compass, rngs.stream("sensor.compass"))

    def reset(self) -> None:
        for sensor in (self.gps, self.imu, self.odometry, self.compass):
            sensor.reset()

    def poll(self, t: float, state: VehicleState) -> SensorReadings:
        """Poll every sensor; returns whatever is due at time ``t``."""
        return SensorReadings(
            gps=self.gps.poll(t, state),
            imu=self.imu.poll(t, state),
            odometry=self.odometry.poll(t, state),
            compass=self.compass.poll(t, state),
        )
