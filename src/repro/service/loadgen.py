"""Load generator: drive a fleet of concurrent sessions at the server.

Traces come from the real experiment pipeline (:func:`run_grid` over a
small attack grid), not synthetic noise, so the server ingests the same
violation-dense data the paper's experiments produce — and so the
simulation provenance (``sim_engine``, ``pool_policy``) lands in the
``--stats`` output and ultimately in ``BENCH_service.json``: a benchmark
number without the engine that produced its inputs is not reproducible.

Run standalone::

    python -m repro.service.loadgen --sessions 32 --stats

or import :func:`run_load` from a benchmark harness
(``benchmarks/bench_service.py`` builds ``BENCH_service.json`` on it).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

from repro.experiments.runner import run_grid
from repro.experiments.stats import STATS
from repro.service.aggregates import percentile
from repro.service.client import TraceStreamClient, fetch_status
from repro.service.server import ServerConfig, TraceIngestServer
from repro.trace.schema import Trace

__all__ = ["generate_fleet_traces", "run_load"]

_LOADGEN_ATTACKS = ("none", "gps_bias", "gps_drift", "steer_offset")


def generate_fleet_traces(n_traces: int, *, duration: float = 20.0,
                          sim_engine: str | None = None) -> \
        tuple[list[Trace], dict]:
    """``n_traces`` distinct traces off the experiment grid.

    Returns ``(traces, provenance)`` where provenance records the
    engine/pool the grid actually used (satellite: the bench output must
    say what produced its inputs).  Seeds vary fastest so any ``n`` gives
    a mix of clean and attacked runs.
    """
    n_seeds = max(-(-n_traces // len(_LOADGEN_ATTACKS)), 1)
    runs = run_grid(
        scenarios=("urban_loop",),
        controllers=("pure_pursuit",),
        attacks=_LOADGEN_ATTACKS,
        seeds=tuple(range(1, n_seeds + 1)),
        onset=8.0,
        duration=duration,
        sim_engine=sim_engine,
    )
    grid_stats = STATS.last
    provenance = {
        "sim_engine": grid_stats.sim_engine if grid_stats else "unknown",
        "pool_policy": grid_stats.pool_policy if grid_stats else "unknown",
        "grid_points": len(runs),
        "cache_hit_rate": (round(grid_stats.cache_hit_rate, 4)
                           if grid_stats else None),
    }
    traces = [run.result.trace for run in runs[:n_traces]]
    return traces, provenance


async def _drive_session(host: str, port: int, index: int, trace: Trace,
                         chunk_records: int) -> dict:
    client = TraceStreamClient(host, port, chunk_records=chunk_records)
    t0 = time.perf_counter()
    outcome = await client.run(trace, session_id=f"loadgen-{index:04d}")
    wall = time.perf_counter() - t0
    return {
        "session_id": outcome.session_id,
        "wall_s": wall,
        "n_records": len(trace),
        "chunks": outcome.chunks_applied,
        "busy_retries": outcome.busy_retries,
        "any_fired": bool(outcome.verdict and outcome.verdict["any_fired"]),
    }


async def run_load(n_sessions: int = 32, *, chunk_records: int = 64,
                   shards: int = 2, duration: float = 20.0,
                   sim_engine: str | None = None,
                   store_dir: str | None = None,
                   host: str | None = None,
                   port: int | None = None) -> dict:
    """Stream ``n_sessions`` concurrent sessions; returns the metrics dict.

    With no ``host``/``port``, an in-process server is started on an
    ephemeral port (the benchmark mode: one process, loopback TCP, real
    shards).  Point it at a live server to load-test across machines.
    """
    traces, provenance = generate_fleet_traces(
        n_sessions, duration=duration, sim_engine=sim_engine)
    # Recycle traces if the grid came up short; distinct session ids keep
    # the server treating them as distinct vehicles.
    sessions = [traces[i % len(traces)] for i in range(n_sessions)]

    server: TraceIngestServer | None = None
    if host is None or port is None:
        server = TraceIngestServer(ServerConfig(
            shards=shards, store_dir=store_dir))
        await server.start()
        host, port = server.config.host, server.port
    try:
        t0 = time.perf_counter()
        results = await asyncio.gather(*[
            _drive_session(host, port, i, trace, chunk_records)
            for i, trace in enumerate(sessions)])
        wall = time.perf_counter() - t0
        status = await fetch_status(host, port)
    finally:
        if server is not None:
            await server.stop()

    walls = [r["wall_s"] for r in results]
    fleet = status["fleet"]
    return {
        "sessions": n_sessions,
        "records_streamed": sum(r["n_records"] for r in results),
        "wall_s": round(wall, 4),
        "sessions_per_s": round(n_sessions / wall, 2),
        "session_wall_s": {
            "p50": round(percentile(walls, 50.0), 4),
            "p99": round(percentile(walls, 99.0), 4),
        },
        "verdict_latency_s": {
            k: (round(v, 5) if isinstance(v, float) else v)
            for k, v in fleet["verdict_latency_s"].items()
        },
        "violation_rate": fleet["violation_rate"],
        "busy_retries": sum(r["busy_retries"] for r in results),
        "shards": status["shards"],
        "trace_provenance": provenance,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Stream a synthetic fleet at the trace-ingest server.")
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--chunk-records", type=int, default=64)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per trace (default 20)")
    parser.add_argument("--sim-engine", default=None,
                        choices=("serial", "batch"),
                        help="engine for trace generation (default: env)")
    parser.add_argument("--host", default=None,
                        help="target a running server instead of an "
                             "in-process one")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--stats", action="store_true",
                        help="print the full metrics JSON (includes "
                             "sim_engine / pool_policy provenance)")
    args = parser.parse_args(argv)

    metrics = asyncio.run(run_load(
        args.sessions, chunk_records=args.chunk_records,
        shards=args.shards, duration=args.duration,
        sim_engine=args.sim_engine, host=args.host, port=args.port))
    if args.stats:
        print(json.dumps(metrics, indent=2))
    else:
        print(f"{metrics['sessions']} sessions in {metrics['wall_s']}s "
              f"({metrics['sessions_per_s']}/s), verdict p99 "
              f"{metrics['verdict_latency_s']['p99']}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
