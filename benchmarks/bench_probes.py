"""Bench — round-batched counterfactual probing vs. the serial oracle.

As a pytest-benchmark (``pytest benchmarks/bench_probes.py
--benchmark-only``) this times one small speculative prefetch round-trip
through the lockstep batch engine and asserts the accounting invariants
(every probe memo-served, ``speculative_wasted == issued - consumed``).

As a script it produces the committed artifact::

    PYTHONPATH=src python benchmarks/bench_probes.py

writing ``BENCH_probes.json`` with cold ``adassure explain`` wall times
(serial oracle vs. round-batched) and the combined E10-E13 planner sweep
(serial vs. batch-drained), plus the probe-batching counters.  Both
passes must be bit-identical to their serial oracle — the same contract
``tests/test_probe_batching.py`` enforces in CI on the quick config.
"""

import dataclasses
import os
import tempfile

# The explain subject: a three-channel composed attack on the urban loop
# under the stanley tracker.  Three channels exercise every search axis
# (window ddmin, channel ablation, magnitude bisection, separation-gap
# hypotheses), and the 10-cell window grid keeps the reachable interval
# tree inside the round-zero speculative fleet.
EXPLAIN_SUBJECT = dict(
    scenario="urban_loop", controller="stanley",
    attack="gps_drift+imu_gyro_bias+steer_offset", intensity=1.0,
    seed=11, onset=20.0, duration=60.0, resolution=4.0,
)

def _report_summary(report):
    """Engine-comparable projection of a CausalReport.

    Field-wise (not object identity): the serial and batch passes run in
    separate cache sandboxes, and what must match is every verdict-
    bearing value, bit for bit.
    """
    def conv(x):
        if x is None:
            return None
        if dataclasses.is_dataclass(x) and not isinstance(x, type):
            return {f.name: conv(getattr(x, f.name))
                    for f in dataclasses.fields(x)}
        if isinstance(x, dict):
            return {k: conv(v) for k, v in sorted(x.items())}
        if isinstance(x, (list, tuple)):
            return [conv(v) for v in x]
        return x

    return {
        f: conv(getattr(report, f))
        for f in ("fired", "violated", "necessary", "background", "window",
                  "channels", "magnitude", "margin_deltas", "probes",
                  "minimal_verified")
    }


def _counters(stats):
    return {
        "executed": stats.executed,
        "memo_hits": stats.memo_hits,
        "disk_hits": stats.disk_hits,
        "batch_groups": stats.batch_groups,
        "batch_points": stats.batch_points,
        "batch_fallbacks": stats.batch_fallbacks,
        "speculative_issued": stats.speculative_issued,
        "speculative_wasted": stats.speculative_wasted,
        "planned": stats.planned,
        "plan_batched": stats.plan_batched,
        "plan_fallbacks": stats.plan_fallbacks,
        "dare_memo_hits": stats.dare_memo_hits,
        "dare_memo_solves": stats.dare_memo_solves,
    }


def test_probe_prefetch_small(benchmark, tmp_path, monkeypatch):
    """One speculative prefetch round-trip on a small subject."""
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADASSURE_CACHE", raising=False)
    from repro.experiments.counterfactual import (
        Intervention,
        ProbeEngine,
        Subject,
    )

    subject = Subject(scenario="straight", controller="pure_pursuit",
                      seed=7, duration=8.0)
    original = Intervention(attacks=("gps_bias",), intensity=1.0,
                            onset=2.0, end=6.0)
    fleet = [original.with_intensity(v) for v in (0.5, 0.75, 1.0)]

    def round_trip():
        engine = ProbeEngine(subject, sim_engine="batch")
        issued = engine.prefetch(fleet)
        outcomes = [engine.outcome(iv) for iv in fleet[:2]]
        return engine, issued, outcomes

    engine, issued, outcomes = benchmark.pedantic(
        round_trip, rounds=1, iterations=1)
    assert issued == len(fleet)
    assert all(o.source == "memo" for o in outcomes)
    assert engine.stats.speculative_wasted == issued - len(outcomes)
    assert engine.stats.memo_hits == len(outcomes)


def _measure_explain(sim_engine):
    import importlib
    import sys
    import time

    with tempfile.TemporaryDirectory(prefix="adassure-bench-probes-") as tmp:
        os.environ["ADASSURE_CACHE_DIR"] = tmp
        os.environ["ADASSURE_SIM"] = sim_engine
        # A cold pass: fresh cache directory, fresh in-process stores.
        for mod in [m for m in sys.modules if m.startswith("repro")]:
            del sys.modules[mod]
        counterfactual = importlib.import_module(
            "repro.experiments.counterfactual")
        stats_mod = importlib.import_module("repro.experiments.stats")
        stats_mod.STATS.reset()
        t0 = time.perf_counter()
        report = counterfactual.explain(**EXPLAIN_SUBJECT)
        elapsed = time.perf_counter() - t0
        return elapsed, _report_summary(report), _counters(stats_mod.STATS.total)


def _measure_experiments(sim_engine):
    import importlib
    import sys
    import time

    with tempfile.TemporaryDirectory(prefix="adassure-bench-probes-") as tmp:
        os.environ["ADASSURE_CACHE_DIR"] = tmp
        os.environ["ADASSURE_SIM"] = sim_engine
        for mod in [m for m in sys.modules if m.startswith("repro")]:
            del sys.modules[mod]
        experiments = importlib.import_module("repro.experiments")
        config_mod = importlib.import_module("repro.experiments.config")
        stats_mod = importlib.import_module("repro.experiments.stats")
        config = config_mod.ExperimentConfig(
            seeds=(7, 11),
            controllers=("pure_pursuit", "stanley"),
            trace_scenarios=("s_curve",),
            duration=40.0,
            sweep_intensities=(0.5, 1.0, 2.0),
            sweep_attacks=("gps_bias",),
        )
        stats_mod.STATS.reset()
        t0 = time.perf_counter()
        tables = {
            "e10": experiments.build_mitigation_table(config).render(),
            "e11": experiments.build_multi_attack_table(config).render(),
            "e12": experiments.build_acc_debugging(config).render(),
            "e13": experiments.build_defect_debugging(config).render(),
        }
        elapsed = time.perf_counter() - t0
        return elapsed, tables, _counters(stats_mod.STATS.total)


def _main(argv=None) -> int:
    """Write ``BENCH_probes.json`` (the committed artifact)."""
    import argparse
    import json
    import platform
    import time
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_probes.py",
        description=_main.__doc__)
    parser.add_argument("--output", default="BENCH_probes.json")
    args = parser.parse_args(argv)

    old_cache = os.environ.get("ADASSURE_CACHE_DIR")
    old_sim = os.environ.get("ADASSURE_SIM")
    try:
        print("explain: serial oracle ...")
        t_exp_serial, rep_serial, _ = _measure_explain("serial")
        print(f"explain: serial {t_exp_serial:.2f}s")
        print("explain: round-batched ...")
        t_exp_batch, rep_batch, exp_counters = _measure_explain("batch")
        print(f"explain: batch  {t_exp_batch:.2f}s")

        print("e10-e13: serial oracle ...")
        t_e_serial, tables_serial, _ = _measure_experiments("serial")
        print(f"e10-e13: serial {t_e_serial:.2f}s")
        print("e10-e13: batch-drained ...")
        t_e_batch, tables_batch, e_counters = _measure_experiments("batch")
        print(f"e10-e13: batch  {t_e_batch:.2f}s")
    finally:
        if old_cache is None:
            os.environ.pop("ADASSURE_CACHE_DIR", None)
        else:
            os.environ["ADASSURE_CACHE_DIR"] = old_cache
        if old_sim is None:
            os.environ.pop("ADASSURE_SIM", None)
        else:
            os.environ["ADASSURE_SIM"] = old_sim

    identical_explain = rep_serial == rep_batch
    identical_experiments = tables_serial == tables_batch
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "explain_subject": EXPLAIN_SUBJECT,
            "e10_e13": {
                "seeds": [7, 11],
                "controllers": ["pure_pursuit", "stanley"],
                "duration": 40.0,
            },
        },
        "timings_s": {
            "explain_cold_serial": round(t_exp_serial, 4),
            "explain_cold_batch": round(t_exp_batch, 4),
            "e10_e13_cold_serial": round(t_e_serial, 4),
            "e10_e13_cold_batch": round(t_e_batch, 4),
        },
        "counters": {
            "explain_batch": exp_counters,
            "e10_e13_batch": e_counters,
        },
        "speedups": {
            "explain_cold": round(t_exp_serial / t_exp_batch, 2),
            "e10_e13_cold": round(t_e_serial / t_e_batch, 2),
        },
        "bit_identical": identical_explain and identical_experiments,
        "bit_identical_explain": identical_explain,
        "bit_identical_e10_e13": identical_experiments,
        "note": (
            "speculative round-batching: explain() pushes the baseline, "
            "the clean counterfactual and the searches' reachable probe "
            "trees through the lockstep batch engine before the first "
            "verdict is inspected; E10-E13 declare their sweeps to a "
            "ProbePlan and drain as compatibility-grouped lane batches. "
            "Wasted speculative lanes are never checked or committed. "
            "Verdicts are bit-identical to the serial oracle "
            "(tests/test_probe_batching.py enforces this in CI)."
        ),
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    print(f"explain  {payload['speedups']['explain_cold']}x  "
          f"e10-e13 {payload['speedups']['e10_e13_cold']}x  "
          f"bit_identical {payload['bit_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
