"""Fault base class: benign sensor-degradation injectors.

Faults reuse the :class:`~repro.attacks.base.Attack` scheduling window and
per-channel hook interface — the engine applies them through the same
injection point — but model *non-adversarial* input corruption: hardware
dropouts, wedged drivers repeating stale samples, NaN bursts from a
failing unit, transport latency, and lossy links.  Unlike attacks, a
fault model is channel-generic: the same ``Dropout`` applies to GPS or
compass alike, so every fault takes its target ``channel`` as a
constructor argument and fans all per-channel hooks into one
:meth:`Fault.apply` transform.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow

__all__ = ["FAULT_CHANNELS", "Fault"]

FAULT_CHANNELS = ("gps", "imu", "odometry", "compass", "radar")
"""Sensor channels a fault can target (command faults are attacks' turf)."""


class Fault(Attack):
    """A scheduled benign fault on one sensor channel.

    Subclasses override :meth:`apply` (and optionally :meth:`observe` /
    :meth:`reset`); the per-channel hooks all delegate to it, so one
    fault class serves every channel.  Returning ``None`` from ``apply``
    drops the message for this step.
    """

    name: str = "fault"
    kind: str = "fault"

    def __init__(self, channel: str, window: AttackWindow | None = None):
        super().__init__(window)
        if channel not in FAULT_CHANNELS:
            raise ValueError(
                f"unknown fault channel {channel!r}; "
                f"expected one of {FAULT_CHANNELS}"
            )
        self.channel = channel

    def apply(self, t: float, value):
        """Transform one in-window message; ``None`` drops it."""
        return value

    # --- hook fan-in ---------------------------------------------------
    def on_gps(self, t, fix):
        return self.apply(t, fix)

    def on_imu(self, t, reading):
        return self.apply(t, reading)

    def on_odometry(self, t, reading):
        return self.apply(t, reading)

    def on_compass(self, t, reading):
        return self.apply(t, reading)

    def on_radar(self, t, reading):
        return self.apply(t, reading)
