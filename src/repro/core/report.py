"""Human-readable debugging reports (plain text, terminal-friendly)."""

from __future__ import annotations

from repro.core.diagnosis import DiagnosisResult
from repro.core.verdicts import CheckReport

__all__ = ["render_causal_report", "render_check_report", "render_diagnosis"]


def render_check_report(report: CheckReport, max_violations: int = 20) -> str:
    """Render a check report as the debugging summary a user reads first."""
    lines = [
        f"ADAssure check report — scenario={report.scenario or '?'} "
        f"controller={report.controller or '?'} attack={report.attack_label or '?'}",
        f"trace duration: {report.duration:.1f} s",
        "",
    ]
    fired = [s for s in report.summaries.values() if s.fired]
    held = [s for s in report.summaries.values() if not s.fired]
    if not fired:
        lines.append("all assertions held — no anomaly detected")
    else:
        lines.append(f"{len(fired)} assertion(s) fired, {len(held)} held:")
        fired.sort(key=lambda s: s.first_violation_t or 0.0)
        for s in fired:
            lines.append(
                f"  {s.assertion_id:<4} {s.name:<34} "
                f"first at t={s.first_violation_t:6.1f} s  "
                f"episodes={s.episodes:<3d} violated {s.total_violation_time:5.1f} s  "
                f"worst margin {s.worst_margin:+.2f}"
            )
        lines.append("")
        lines.append("violation episodes (time order):")
        for v in report.violations[:max_violations]:
            lines.append(
                f"  [{v.t_start:6.1f} .. {v.t_end:6.1f}] {v.assertion_id:<4} "
                f"{v.name} (severity {v.severity:.2f})"
            )
        if len(report.violations) > max_violations:
            lines.append(
                f"  ... and {len(report.violations) - max_violations} more"
            )
    return "\n".join(lines)


def render_diagnosis(result: DiagnosisResult, top_k: int = 4) -> str:
    """Render a diagnosis ranking with its supporting evidence."""
    lines = ["ADAssure root-cause ranking:"]
    for i, d in enumerate(result.ranking[:top_k], start=1):
        marker = "=>" if i == 1 else "  "
        lines.append(
            f" {marker} {i}. {d.cause:<16} posterior={d.posterior:6.1%}  "
            f"({d.description})"
        )
        if d.supporting:
            lines.append(f"        supported by: {', '.join(d.supporting)}")
        if d.contradicting:
            lines.append(
                f"        expected but silent: {', '.join(d.contradicting)}"
            )
    if not result.confident and len(result.ranking) >= 2:
        lines.append(
            "    note: top causes are close — ambiguous diagnosis; "
            "consider authoring a separating assertion (see methodology)."
        )
    return "\n".join(lines)


def _render_intervention(iv) -> str:
    end = "∞" if iv.end == float("inf") else f"{iv.end:.1f}"
    return (f"{iv.label} @ intensity {iv.intensity:.3f}, "
            f"window [{iv.onset:.1f}, {end}) s")


def render_causal_report(report) -> str:
    """Render a counterfactual :class:`~repro.experiments.counterfactual.CausalReport`.

    Takes the report duck-typed (``core`` must not import ``experiments``);
    the canonical entry point is ``CausalReport.render()``.
    """
    s = report.subject
    lines = [
        f"ADAssure causal report — scenario={s.scenario} "
        f"controller={s.controller} seed={s.seed}",
        f"intervention : {_render_intervention(report.intervention)}",
    ]
    if not report.violated:
        lines.append("verdict      : no assertion fired — nothing to explain")
        return "\n".join(lines)
    lines.append(f"verdict      : VIOLATING ({', '.join(report.fired)})")
    if report.background:
        lines.append(
            f"background   : {', '.join(report.background)} fire(s) even "
            "without the intervention — excluded from the signature")
    if report.necessary:
        lines.append("necessity    : confirmed — removing the intervention "
                     "clears every attributable assertion")
    else:
        lines.append("necessity    : NOT confirmed — the violation persists "
                     "without the intervention (not causally necessary)")
    if report.window is not None:
        w = report.window
        tag = "1-minimal" if w.minimal else "budget-exhausted"
        lines.append(
            f"window       : [{w.start:.1f}, {w.end:.1f}) s "
            f"(of [{w.original_start:.1f}, {w.original_end:.1f})), "
            f"{tag} at {w.resolution:.2g} s, {w.probes} probe(s)")
    if report.channels is not None:
        c = report.channels
        kept = "+".join(cls for _, cls in c.kept)
        dropped = "+".join(cls for _, cls in c.dropped) or "none"
        tag = "1-minimal" if c.minimal else "budget-exhausted"
        lines.append(
            f"channels     : {kept} sufficient (dropped: {dropped}), "
            f"{tag}, {c.probes} probe(s)")
    if report.magnitude is not None:
        m = report.magnitude
        lines.append(
            f"magnitude    : intensity {m.minimal:.4f} still violates "
            f"(boundary in ({m.lower:.4f}, {m.minimal:.4f}]), "
            f"{m.probes} probe(s)")
    if report.minimal is not None and report.minimal != report.intervention:
        verified = "verified" if report.minimal_verified else "UNVERIFIED"
        lines.append(
            f"minimal      : {_render_intervention(report.minimal)} "
            f"({verified})")
    if report.margin_deltas:
        lines.append("margin deltas (with → without the intervention):")
        for aid, (with_m, without_m) in sorted(report.margin_deltas.items()):
            lines.append(f"  {aid:<4} {with_m:+.2f} → {without_m:+.2f}")
    if report.tiebreak is not None:
        t = report.tiebreak
        scores = ", ".join(f"{c}={t.distances[c]:.2f}"
                           for c in t.candidates)
        lines.append(
            f"tie-break    : ambiguous ranking re-tested "
            f"counterfactually → {t.chosen} (signature distances: {scores})")
    if report.gap is not None:
        g = report.gap
        lines.append(
            f"gap          : no counterfactual separates "
            f"{g.causes[0]} from {g.causes[1]} "
            f"(signature separation {g.separation:.2f}); "
            f"proposed separating assertions: {', '.join(g.proposed)}")
    status = "ISOLATED" if report.isolated else "NOT isolated"
    lines.append(
        f"confidence   : {report.confidence:.3f}  "
        f"({report.flipped}/{report.probes} probe(s) flipped the verdict; "
        f"budget {report.budget}"
        f"{', exhausted' if report.budget_exhausted else ''})")
    lines.append(f"result       : {status}")
    return "\n".join(lines)
