"""Advisory file leases for shared-directory writers.

Several subsystems persist incremental state into directories that more
than one process may reach at once: grid campaigns share a checkpoint-
manifest directory (two ``adassure experiment`` invocations pointed at
the same cache), and the monitoring service checkpoints sessions that a
second server instance could try to adopt.  Plain "last write wins"
silently corrupts those ledgers — each writer keeps flushing its own
view of the file, so completed work recorded by one is erased by the
other.

:class:`FileLease` is the shared guard: a small JSON sidecar file naming
the current owner (host, pid, a random token) and the wall-clock time of
its last heartbeat.  Acquisition is atomic (``O_CREAT | O_EXCL``); an
existing lease can only be taken over once its heartbeat is older than
the TTL (the owner died without releasing).  Leases are *advisory*: a
writer that loses the race is told so — loudly, via the return value —
and must degrade (go read-only, pick another session id) rather than
fight.  Silent loss is the failure mode this module exists to remove.

The TTL default can be tuned with ``ADASSURE_LEASE_TTL`` (seconds).
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path

__all__ = ["FileLease", "LeaseConflict", "default_lease_ttl", "lease_state"]

DEFAULT_LEASE_TTL = 60.0
"""Seconds without a heartbeat before a lease is considered abandoned."""


def default_lease_ttl() -> float:
    """``$ADASSURE_LEASE_TTL`` (seconds) or the built-in default."""
    env = os.environ.get("ADASSURE_LEASE_TTL")
    if env:
        try:
            ttl = float(env)
            if ttl > 0:
                return ttl
        except ValueError:
            pass
    return DEFAULT_LEASE_TTL


class LeaseConflict(RuntimeError):
    """Another live writer holds the lease.

    Carries the competing owner's identity so the caller can report
    *who* holds the resource, not just that acquisition failed.
    """

    def __init__(self, path: Path, owner: dict):
        self.path = path
        self.owner = dict(owner)
        label = owner.get("owner", "<unknown>")
        super().__init__(
            f"{path}: held by {label} "
            f"(heartbeat {owner.get('heartbeat', '?')})")


def _record_stale(record: dict | None, ttl: float) -> bool:
    """Whether a lease record should be treated as abandoned.

    A heartbeat older than the TTL means the owner died without
    releasing.  A heartbeat more than one TTL *in the future* means the
    stamp came from a badly skewed (or corrupt) clock — trusting it
    would let one broken writer lock the resource forever, so it is also
    treated as abandoned; a live skewed owner will notice the theft at
    release time (owner check) rather than corrupting anything.
    """
    if record is None:
        return True  # corrupt or vanished: treat as abandoned
    try:
        heartbeat = float(record["heartbeat"])
    except (KeyError, TypeError, ValueError):
        return True
    age = time.time() - heartbeat
    return age > ttl or -age > ttl


def lease_state(path: str | Path, ttl: float | None = None) -> str:
    """Classify one lease file: ``"active"``, ``"stale"`` or ``"absent"``.

    Read-only — for health reporting (``adassure cache stats``) and for
    shard-board scans that must not disturb live claimants.
    """
    path = Path(path)
    if not path.exists():
        return "absent"
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        record = None
    ttl = ttl if ttl is not None else default_lease_ttl()
    return "stale" if _record_stale(record, ttl) else "active"


class FileLease:
    """One advisory lease file guarding a shared resource.

    Usage::

        lease = FileLease(path)
        if not lease.acquire():        # or acquire(raising=True)
            report_conflict(lease.holder())
            ...degrade...
        try:
            ...write, calling lease.refresh() on each flush...
        finally:
            lease.release()
    """

    def __init__(self, path: str | Path, ttl: float | None = None):
        self.path = Path(path)
        self.ttl = float(ttl) if ttl is not None else default_lease_ttl()
        self.owner_id = f"{socket.gethostname()}:{os.getpid()}:" \
                        f"{uuid.uuid4().hex[:8]}"
        self._held = False
        self.stale_breaks = 0
        """Abandoned leases this handle broke while acquiring — workers
        surface it as a reclaim/health counter."""

    # -- inspection -----------------------------------------------------
    @property
    def held(self) -> bool:
        return self._held

    def holder(self) -> dict | None:
        """The current lease record on disk, or ``None`` if absent/corrupt."""
        try:
            return json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _stale(self, record: dict | None) -> bool:
        return _record_stale(record, self.ttl)

    # -- lifecycle ------------------------------------------------------
    def _record(self) -> bytes:
        payload = {"owner": self.owner_id, "heartbeat": time.time()}
        return (json.dumps(payload) + "\n").encode("utf-8")

    def acquire(self, raising: bool = False) -> bool:
        """Try to take the lease.

        Returns ``True`` on success.  On conflict returns ``False`` (or
        raises :class:`LeaseConflict` with ``raising=True``) — callers
        must surface this, never swallow it.  A stale lease (heartbeat
        older than the TTL) is broken and taken over.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):  # second pass after breaking a stale lease
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                current = self.holder()
                if current is not None and current.get("owner") == self.owner_id:
                    self._held = True  # re-acquire our own lease
                    return True
                if not self._stale(current):
                    if raising:
                        raise LeaseConflict(self.path, current or {})
                    return False
                # Abandoned: break it and retry the exclusive create.
                self.stale_breaks += 1
                try:
                    self.path.unlink()
                except OSError:
                    pass
                continue
            try:
                os.write(fd, self._record())
            finally:
                os.close(fd)
            self._held = True
            return True
        # Lost the post-break race to another waiter.
        if raising:
            raise LeaseConflict(self.path, self.holder() or {})
        return False

    def refresh(self) -> None:
        """Heartbeat: re-stamp the lease so it does not go stale mid-run.

        Best-effort — a failed heartbeat must not crash the writer; the
        worst case is another writer breaking the lease after the TTL,
        which the conflict handling already covers.  A stolen lease is
        *not* re-stamped: heartbeating over a thief's record would let
        two writers silently fight forever, whereas leaving it lets the
        owner detect the theft at release time.
        """
        if not self._held:
            return
        current = self.holder()
        if current is not None and current.get("owner") != self.owner_id:
            return  # stolen mid-run; report at release, don't fight
        try:
            tmp = self.path.with_suffix(self.path.suffix +
                                        f".hb.{os.getpid()}")
            tmp.write_bytes(self._record())
            os.replace(tmp, self.path)
        except OSError:
            pass

    def release(self) -> None:
        """Give the lease up (only if we still own it)."""
        if not self._held:
            return
        self._held = False
        current = self.holder()
        if current is not None and current.get("owner") != self.owner_id:
            return  # someone broke our stale lease; it is theirs now
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "FileLease":
        self.acquire(raising=True)
        return self

    def __exit__(self, *exc) -> None:
        self.release()
