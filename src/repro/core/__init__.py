"""ADAssure core: assertions, monitoring, and root-cause diagnosis.

This package is the paper's contribution.  It provides:

* :mod:`repro.core.verdicts` — violations, per-assertion results, reports;
* :mod:`repro.core.dsl` — the assertion base class with episode semantics
  plus reusable combinators for authoring new assertions;
* :mod:`repro.core.catalog` — the built-in assertion catalog (A1..A16,
  with the innovation assertion split per channel), each encoding one
  domain-expert expectation about a healthy control loop;
* :mod:`repro.core.monitor` / :mod:`repro.core.checker` — online and
  offline evaluation with identical semantics;
* :mod:`repro.core.knowledge` / :mod:`repro.core.diagnosis` — the
  cause/assertion knowledge base and the root-cause ranking engine;
* :mod:`repro.core.methodology` — the iterative refinement loop (gap
  analysis over an anomaly corpus, staged catalog growth);
* :mod:`repro.core.report` — human-readable debugging reports.
"""

from repro.core.catalog import CATALOG_STAGES, default_catalog, make_assertion
from repro.core.checker import check_trace
from repro.core.diagnosis import (
    Diagnosis,
    DiagnosisResult,
    MultiDiagnosis,
    diagnose,
    diagnose_multi,
)
from repro.core.dsl import (
    BoundAssertion,
    FunctionAssertion,
    TraceAssertion,
    WindowMeanBoundAssertion,
)
from repro.core.knowledge import (
    CauseProfile,
    KnowledgeBase,
    default_knowledge_base,
    defect_knowledge_base,
)
from repro.core.spec import AssertionSpec, CatalogSpec
from repro.core.methodology import GapAnalysis, RefinementLoop
from repro.core.monitor import OnlineMonitor
from repro.core.report import render_check_report, render_diagnosis
from repro.core.tuning import CalibrationResult, calibrate_catalog
from repro.core.verdicts import AssertionSummary, CheckReport, Violation

__all__ = [
    "Violation",
    "AssertionSummary",
    "CheckReport",
    "TraceAssertion",
    "BoundAssertion",
    "WindowMeanBoundAssertion",
    "FunctionAssertion",
    "default_catalog",
    "make_assertion",
    "CATALOG_STAGES",
    "OnlineMonitor",
    "check_trace",
    "KnowledgeBase",
    "CauseProfile",
    "default_knowledge_base",
    "diagnose",
    "diagnose_multi",
    "Diagnosis",
    "DiagnosisResult",
    "MultiDiagnosis",
    "RefinementLoop",
    "GapAnalysis",
    "render_check_report",
    "render_diagnosis",
    "calibrate_catalog",
    "CalibrationResult",
    "defect_knowledge_base",
    "CatalogSpec",
    "AssertionSpec",
]
