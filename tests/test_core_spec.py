"""Tests for repro.core.spec: persistable catalog configurations."""

import pytest

from repro.core.catalog import CATALOG_IDS
from repro.core.checker import check_trace
from repro.core.spec import AssertionSpec, CatalogSpec
from repro.core.tuning import calibrate_catalog

from conftest import make_trace


class TestAssertionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AssertionSpec("A99")
        with pytest.raises(ValueError):
            AssertionSpec("A1", bound_scale=0.0)


class TestCatalogSpec:
    def test_default_builds_full_catalog(self):
        catalog = CatalogSpec.default().build()
        assert [a.assertion_id for a in catalog] == list(CATALOG_IDS)

    def test_disable_assertion(self):
        spec = CatalogSpec.default()
        spec.set("A1", enabled=False)
        assert "A1" not in spec.enabled_ids()
        catalog = spec.build()
        assert all(a.assertion_id != "A1" for a in catalog)

    def test_bound_scale_applied(self):
        spec = CatalogSpec.default()
        spec.set("A1", bound_scale=3.0)
        catalog = spec.build()
        a1 = next(a for a in catalog if a.assertion_id == "A1")
        assert a1.bound_scale == 3.0
        # The relaxed bound tolerates a 5 m cte (stock bound: 2.5 m).
        trace = make_trace(200, mutate=lambda s, r: r.replace(cte_true=5.0))
        assert not check_trace(trace, [a1]).any_fired

    def test_set_preserves_other_fields(self):
        spec = CatalogSpec.default()
        spec.set("A1", bound_scale=2.0)
        spec.set("A1", enabled=False)
        assert spec.specs["A1"].bound_scale == 2.0
        assert not spec.specs["A1"].enabled


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        spec = CatalogSpec.default()
        spec.set("A4", bound_scale=1.5)
        spec.set("A11", enabled=False)
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = CatalogSpec.load(path)
        assert loaded.specs["A4"].bound_scale == 1.5
        assert not loaded.specs["A11"].enabled
        assert loaded.enabled_ids() == spec.enabled_ids()

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            CatalogSpec.from_dict({"format_version": 99})

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not a valid"):
            CatalogSpec.load(path)


class TestCalibrationIntegration:
    def test_calibration_to_spec_roundtrip(self, tmp_path):
        noisy_nominal = make_trace(
            600, mutate=lambda s, r: r.replace(cte_true=2.7))
        result = calibrate_catalog([noisy_nominal], target_headroom=0.1)
        spec = CatalogSpec.from_calibration(result)
        path = tmp_path / "calibrated.json"
        spec.save(path)
        catalog = CatalogSpec.load(path).build()
        # The persisted calibration still silences the nominal corpus.
        assert not check_trace(noisy_nominal, catalog).any_fired
        assert "calibrated" in spec.description
