"""Human-readable debugging reports (plain text, terminal-friendly)."""

from __future__ import annotations

from repro.core.diagnosis import DiagnosisResult
from repro.core.verdicts import CheckReport

__all__ = ["render_check_report", "render_diagnosis"]


def render_check_report(report: CheckReport, max_violations: int = 20) -> str:
    """Render a check report as the debugging summary a user reads first."""
    lines = [
        f"ADAssure check report — scenario={report.scenario or '?'} "
        f"controller={report.controller or '?'} attack={report.attack_label or '?'}",
        f"trace duration: {report.duration:.1f} s",
        "",
    ]
    fired = [s for s in report.summaries.values() if s.fired]
    held = [s for s in report.summaries.values() if not s.fired]
    if not fired:
        lines.append("all assertions held — no anomaly detected")
    else:
        lines.append(f"{len(fired)} assertion(s) fired, {len(held)} held:")
        fired.sort(key=lambda s: s.first_violation_t or 0.0)
        for s in fired:
            lines.append(
                f"  {s.assertion_id:<4} {s.name:<34} "
                f"first at t={s.first_violation_t:6.1f} s  "
                f"episodes={s.episodes:<3d} violated {s.total_violation_time:5.1f} s  "
                f"worst margin {s.worst_margin:+.2f}"
            )
        lines.append("")
        lines.append("violation episodes (time order):")
        for v in report.violations[:max_violations]:
            lines.append(
                f"  [{v.t_start:6.1f} .. {v.t_end:6.1f}] {v.assertion_id:<4} "
                f"{v.name} (severity {v.severity:.2f})"
            )
        if len(report.violations) > max_violations:
            lines.append(
                f"  ... and {len(report.violations) - max_violations} more"
            )
    return "\n".join(lines)


def render_diagnosis(result: DiagnosisResult, top_k: int = 4) -> str:
    """Render a diagnosis ranking with its supporting evidence."""
    lines = ["ADAssure root-cause ranking:"]
    for i, d in enumerate(result.ranking[:top_k], start=1):
        marker = "=>" if i == 1 else "  "
        lines.append(
            f" {marker} {i}. {d.cause:<16} posterior={d.posterior:6.1%}  "
            f"({d.description})"
        )
        if d.supporting:
            lines.append(f"        supported by: {', '.join(d.supporting)}")
        if d.contradicting:
            lines.append(
                f"        expected but silent: {', '.join(d.contradicting)}"
            )
    if not result.confident and len(result.ranking) >= 2:
        lines.append(
            "    note: top causes are close — ambiguous diagnosis; "
            "consider authoring a separating assertion (see methodology)."
        )
    return "\n".join(lines)
