"""Actuator models: lag, rate limits and saturation between command and plant.

Controllers command a steering angle and a longitudinal acceleration; the
physical actuators apply them imperfectly.  Modeling this gap matters for
ADAssure twice over: (1) the A16 actuation-consistency assertion compares
commanded vs. applied signals, and (2) actuator attacks/faults are injected
exactly at this boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ActuatorLimits", "Actuators"]


@dataclass(frozen=True, slots=True)
class ActuatorLimits:
    """Limits and time constants of the steering and drive actuators."""

    steer_max: float = 0.61
    """Steering angle saturation, rad."""
    steer_rate_max: float = 0.8
    """Maximum steering slew rate, rad/s."""
    steer_tau: float = 0.15
    """First-order steering lag time constant, s."""
    accel_max: float = 3.0
    """Acceleration saturation, m/s^2."""
    brake_max: float = 6.0
    """Deceleration saturation magnitude, m/s^2."""
    accel_tau: float = 0.25
    """First-order drive/brake lag time constant, s."""

    def __post_init__(self) -> None:
        if min(self.steer_max, self.steer_rate_max, self.accel_max, self.brake_max) <= 0:
            raise ValueError("actuator limits must be positive")
        if self.steer_tau < 0 or self.accel_tau < 0:
            raise ValueError("time constants must be non-negative")


class Actuators:
    """Stateful steering + drive actuators.

    Each channel is a first-order lag toward the (saturated) command, with
    the steering channel additionally rate limited.  ``tau == 0`` degrades
    to an ideal (instantaneous) actuator, which some unit tests use.
    """

    def __init__(self, limits: ActuatorLimits | None = None):
        self.limits = limits or ActuatorLimits()
        self._steer = 0.0
        self._accel = 0.0

    @property
    def steer(self) -> float:
        """Currently applied steering angle, rad."""
        return self._steer

    @property
    def accel(self) -> float:
        """Currently applied longitudinal acceleration, m/s^2."""
        return self._accel

    def reset(self, steer: float = 0.0, accel: float = 0.0) -> None:
        """Reset internal actuator state (e.g. at scenario start)."""
        self._steer = self._saturate_steer(steer)
        self._accel = self._saturate_accel(accel)

    def apply(self, steer_cmd: float, accel_cmd: float, dt: float) -> tuple[float, float]:
        """Advance actuator state toward the commands over ``dt``.

        Returns:
            ``(steer_applied, accel_applied)`` after lag/rate/saturation.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        lim = self.limits

        target_steer = self._saturate_steer(steer_cmd)
        if lim.steer_tau > 0:
            alpha = 1.0 - _exp_decay(dt, lim.steer_tau)
            desired = self._steer + alpha * (target_steer - self._steer)
        else:
            desired = target_steer
        max_delta = lim.steer_rate_max * dt
        delta = _clamp(desired - self._steer, -max_delta, max_delta)
        self._steer = self._saturate_steer(self._steer + delta)

        target_accel = self._saturate_accel(accel_cmd)
        if lim.accel_tau > 0:
            alpha = 1.0 - _exp_decay(dt, lim.accel_tau)
            self._accel = self._accel + alpha * (target_accel - self._accel)
        else:
            self._accel = target_accel
        self._accel = self._saturate_accel(self._accel)

        return self._steer, self._accel

    def _saturate_steer(self, steer: float) -> float:
        return _clamp(steer, -self.limits.steer_max, self.limits.steer_max)

    def _saturate_accel(self, accel: float) -> float:
        return _clamp(accel, -self.limits.brake_max, self.limits.accel_max)


def _exp_decay(dt: float, tau: float) -> float:
    """exp(-dt/tau), the discrete first-order decay factor."""
    return math.exp(-dt / tau)


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
