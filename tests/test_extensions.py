"""Tests for the extension features: EKF gating and combined attacks."""

import pytest

from repro.attacks.campaign import combined_attack, standard_attack
from repro.control.estimator import Ekf, EkfConfig
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.sim.engine import run_scenario

from conftest import short_scenario


class TestEkfGating:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EkfConfig(gate_nis=0.0)
        EkfConfig(gate_nis=13.8)  # valid

    def test_gate_rejects_outlier(self):
        gated = Ekf(EkfConfig(gate_nis=13.8))
        gated.reset(0.0, 0.0, 0.0, 8.0)
        for _ in range(20):
            gated.predict(0.0, 0.0, 0.05)
            gated.update_gps(gated.estimate.x, 0.0)
        x_before = gated.estimate.x
        nis = gated.update_gps(x_before + 50.0, 50.0)
        assert nis > 13.8
        # State untouched by the rejected fix.
        assert gated.estimate.x == pytest.approx(x_before)
        assert abs(gated.estimate.y) < 0.5

    def test_ungated_filter_follows_outlier(self):
        plain = Ekf()
        plain.reset(0.0, 0.0, 0.0, 8.0)
        for _ in range(20):
            plain.predict(0.0, 0.0, 0.05)
            plain.update_gps(plain.estimate.x, 0.0)
        y_before = plain.estimate.y
        plain.update_gps(plain.estimate.x, 50.0)
        assert plain.estimate.y > y_before + 0.1

    def test_gating_neutralizes_freeze_attack(self):
        scenario = short_scenario("s_curve", duration=40.0)
        campaign = standard_attack("gps_freeze", onset=12.0)
        base = run_scenario(scenario, campaign=campaign)
        hardened = run_scenario(scenario, campaign=campaign,
                                ekf_config=EkfConfig(gate_nis=13.8))
        assert hardened.metrics.max_abs_cte < 0.3 * base.metrics.max_abs_cte

    def test_gating_free_when_nominal(self):
        scenario = short_scenario("s_curve", duration=30.0)
        base = run_scenario(scenario)
        hardened = run_scenario(scenario,
                                ekf_config=EkfConfig(gate_nis=13.8))
        assert hardened.metrics.mean_abs_cte == pytest.approx(
            base.metrics.mean_abs_cte, abs=0.05)


class TestCombinedAttacks:
    def test_label_and_contents(self):
        campaign = combined_attack(("gps_bias", "imu_gyro_bias"), onset=10.0)
        assert campaign.label == "gps_bias+imu_gyro_bias"
        assert len(campaign.attacks) == 2
        channels = {a.channel for a in campaign.attacks}
        assert channels == {"gps", "imu"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combined_attack(())

    def test_disjoint_pair_fires_both_signatures(self):
        scenario = short_scenario("s_curve", duration=40.0)
        result = run_scenario(
            scenario,
            campaign=combined_attack(("imu_gyro_bias", "steer_offset"),
                                     onset=12.0),
        )
        report = check_trace(result.trace)
        assert "A8" in report.fired_ids   # imu signature
        assert "A16" in report.fired_ids  # actuation signature

    def test_disjoint_pair_both_in_top2(self):
        scenario = short_scenario("s_curve", duration=40.0)
        result = run_scenario(
            scenario,
            campaign=combined_attack(("imu_gyro_bias", "steer_offset"),
                                     onset=12.0),
        )
        ranking = diagnose(check_trace(result.trace))
        top2 = ranking.top_k(2)
        assert set(top2) == {"imu_gyro_bias", "steer_offset"}
