"""E4 / Table 3 — root-cause diagnosis accuracy.

For every attacked run, the diagnosis engine ranks candidate causes from
the assertion evidence; this table scores top-1 and top-2 accuracy against
the injected ground truth, per attack class.  Expected shape: high top-1
overall, with residual confusion concentrated in attack pairs that share
channel signatures.

With ``counterfactual=True``, ambiguous rankings (top cause not
confidently separated from the runner-up) are re-tested by simulating
each head candidate as a hypothesis and preferring the one whose actual
signature matches the observed evidence
(:func:`~repro.experiments.counterfactual.counterfactual_tiebreak`) —
the causal layer acting as E4's tie-breaker.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_diagnosis_accuracy"]


def build_diagnosis_accuracy(config: ExperimentConfig | None = None,
                             workers: int | None = None,
                             counterfactual: bool = False,
                             probe_budget: int = 8) -> Table:
    """Per-attack top-1/top-2 diagnosis accuracy plus common confusion."""
    config = config or ExperimentConfig.full()
    scenarios = (config.scenario,) + tuple(config.trace_scenarios[:1])
    runs = run_grid(
        scenarios=scenarios,
        controllers=("pure_pursuit",),
        attacks=tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )

    tiebreaks = 0
    diagnoses = {}
    for run in runs:
        diagnosis = run.diagnosis
        if counterfactual and diagnosis.ambiguous:
            from repro.experiments.counterfactual import (
                counterfactual_tiebreak,
            )
            diagnosis, _gap = counterfactual_tiebreak(
                run, onset=config.attack_onset, duration=config.duration,
                budget=probe_budget)
            tiebreaks += 1
        diagnoses[id(run)] = diagnosis

    table = Table(
        title="Table 3 (E4): root-cause diagnosis accuracy "
              f"(scenarios={'/'.join(scenarios)}, controller=pure_pursuit, "
              f"{len(config.seeds)} seed(s))",
        columns=["attack", "runs", "top-1", "top-2", "mean posterior",
                 "most common confusion"],
    )

    by_attack: dict[str, list] = {}
    for run in runs:
        by_attack.setdefault(run.attack, []).append(run)

    total_runs = total_top1 = total_top2 = 0
    for attack in config.attacks:
        group = by_attack[attack]
        top1 = top2 = 0
        posteriors = []
        confusions: list[str] = []
        for run in group:
            diagnosis = diagnoses[id(run)]
            rank = diagnosis.rank_of(attack)
            if rank == 1:
                top1 += 1
            else:
                confusions.append(diagnosis.top().cause)
            if rank is not None and rank <= 2:
                top2 += 1
            for d in diagnosis.ranking:
                if d.cause == attack:
                    posteriors.append(d.posterior)
                    break
        n = len(group)
        total_runs += n
        total_top1 += top1
        total_top2 += top2
        confusion = (
            max(set(confusions), key=confusions.count) if confusions else "-"
        )
        table.add_row(
            attack, n, f"{top1}/{n}", f"{top2}/{n}",
            f"{sum(posteriors) / len(posteriors):.2f}" if posteriors else "-",
            confusion,
        )
    table.add_row(
        "TOTAL", total_runs,
        f"{total_top1}/{total_runs} ({100.0 * total_top1 / total_runs:.0f}%)",
        f"{total_top2}/{total_runs} ({100.0 * total_top2 / total_runs:.0f}%)",
        "-", "-",
    )
    if counterfactual:
        table.add_note(
            f"counterfactual tie-break applied to {tiebreaks} ambiguous "
            "run(s) (see docs/counterfactual.md)")
    return table


def main() -> None:
    print(build_diagnosis_accuracy().render())


if __name__ == "__main__":
    main()
