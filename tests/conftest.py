"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.attacks.campaign import standard_attack
from repro.sim.engine import RunResult, run_scenario
from repro.sim.scenario import Scenario, standard_scenarios
from repro.trace.schema import Trace, TraceMeta, TraceRecord

DT = 0.05


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    """Run the whole suite against a throwaway persistent-cache dir.

    Tests must neither depend on nor pollute the user's
    ``~/.cache/adassure``; results also stay reproducible when a stale
    cache from an older code revision exists on the machine.
    """
    old = os.environ.get("ADASSURE_CACHE_DIR")
    os.environ["ADASSURE_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("adassure-cache"))
    yield
    if old is None:
        os.environ.pop("ADASSURE_CACHE_DIR", None)
    else:
        os.environ["ADASSURE_CACHE_DIR"] = old


def make_record(step: int = 0, t: float | None = None, **kwargs) -> TraceRecord:
    """A TraceRecord with sensible defaults for synthetic tests.

    By default the record describes a healthy vehicle cruising at 8 m/s
    along +x with fresh, mutually consistent sensor channels.
    """
    if t is None:
        t = step * DT
    x = 8.0 * t
    defaults = dict(
        true_x=x, true_y=0.0, true_yaw=0.0, true_v=8.0,
        true_yaw_rate=0.0, true_accel=0.0, true_lat_accel=0.0,
        cte_true=0.0, heading_err_true=0.0, station_true=x,
        dist_to_goal=max(100.0 - x, 0.0),
        gps_x=x, gps_y=0.0, gps_fresh=True,
        imu_yaw_rate=0.0, imu_accel=0.0, imu_fresh=True,
        odom_speed=8.0, odom_fresh=True,
        compass_yaw=0.0, compass_fresh=True,
        est_x=x, est_y=0.0, est_yaw=0.0, est_v=8.0,
        est_cov_trace=0.5, nis_gps=2.0, nis_speed=1.0, nis_compass=1.0,
        cte_est=0.0, heading_err_est=0.0, station_est=x,
        target_speed=8.0, steer_cmd=0.0, accel_cmd=0.0,
        steer_applied=0.0, accel_applied=0.0,
        attack_active=False, attack_name="", attack_channel="",
    )
    defaults.update(kwargs)
    return TraceRecord(step=step, t=t, **defaults)


def make_trace(num_steps: int = 100, meta: TraceMeta | None = None,
               mutate=None) -> Trace:
    """A synthetic healthy cruise trace; ``mutate(step, record) -> record``
    lets tests inject per-step deviations."""
    trace = Trace(meta or TraceMeta(scenario="synthetic", controller="test",
                                    dt=DT, route_length=400.0))
    for step in range(num_steps):
        record = make_record(step)
        if mutate is not None:
            record = mutate(step, record)
        trace.append(record)
    return trace


def short_scenario(name: str = "s_curve", seed: int = 7,
                   duration: float = 30.0) -> Scenario:
    """A shortened standard scenario for fast closed-loop tests."""
    return dataclasses.replace(
        standard_scenarios(seed=seed)[name], duration=duration
    )


@pytest.fixture(scope="session")
def nominal_run() -> RunResult:
    """One nominal closed-loop run shared by many tests (s_curve, 45 s)."""
    scenario = dataclasses.replace(standard_scenarios(seed=7)["s_curve"],
                                   duration=45.0)
    return run_scenario(scenario, controller="pure_pursuit")


@pytest.fixture(scope="session")
def gps_bias_run() -> RunResult:
    """A GPS-bias attacked run shared by detection/diagnosis tests."""
    scenario = dataclasses.replace(standard_scenarios(seed=7)["s_curve"],
                                   duration=40.0)
    return run_scenario(scenario, controller="pure_pursuit",
                        campaign=standard_attack("gps_bias", onset=15.0))
