"""Public-API surface checks: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.geom",
    "repro.sim",
    "repro.sim.sensors",
    "repro.carla_lite",
    "repro.control",
    "repro.attacks",
    "repro.trace",
    "repro.core",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_exports(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert len(exported) == len(set(exported))


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_quickstart_docstring_names_exist():
    """The package docstring's quickstart must reference real symbols."""
    import repro
    import repro.core

    doc = repro.__doc__
    for name in ("run_scenario", "standard_scenarios", "standard_attack"):
        assert name in doc
        assert hasattr(repro, name)
    for name in ("default_catalog", "check_trace", "diagnose"):
        assert name in doc
        assert hasattr(repro.core, name)
