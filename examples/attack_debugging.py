"""Attack-campaign debugging session: the paper's core use case.

Sweeps every standard attack class against the urban-loop scenario, and
for each run prints which assertions fired, how fast the attack was
detected, and whether the root-cause ranking matches the injected ground
truth — a miniature of the E1/E2/E4 evaluation.

Run:  python examples/attack_debugging.py
"""

from repro import run_scenario, standard_attack, standard_scenarios
from repro.core import check_trace, default_catalog, diagnose

ATTACKS = [
    "gps_bias", "gps_drift", "gps_freeze", "gps_noise", "imu_gyro_bias",
    "odom_scale", "compass_offset", "steer_offset", "cmd_delay",
]
ONSET = 15.0


def main() -> None:
    scenario = standard_scenarios(seed=7)["urban_loop"]
    print(f"scenario: {scenario.name} ({scenario.route.length:.0f} m loop), "
          f"controller: pure pursuit, attack onset: t={ONSET:.0f} s")
    print()
    header = (f"{'attack':<15} {'detected':<9} {'latency':<8} "
              f"{'diagnosis':<15} {'ok':<4} fired assertions")
    print(header)
    print("-" * len(header))

    correct = 0
    for attack in ATTACKS:
        result = run_scenario(
            scenario, controller="pure_pursuit",
            campaign=standard_attack(attack, onset=ONSET),
        )
        report = check_trace(result.trace, default_catalog())
        ranking = diagnose(report)

        latency = report.detection_latency(ONSET)
        detected = latency is not None
        top = ranking.top().cause
        ok = detected and top == attack
        correct += ok
        print(f"{attack:<15} {'yes' if detected else 'NO':<9} "
              f"{f'{latency:.1f} s' if latency is not None else '-':<8} "
              f"{top:<15} {'yes' if ok else 'NO':<4} "
              f"{','.join(report.fired_ids)}")

    print()
    print(f"correctly diagnosed: {correct}/{len(ATTACKS)}")


if __name__ == "__main__":
    main()
