"""Radar attacks: spoofed lead-vehicle tracks.

Automotive radar spoofing (signal injection or a compromised radar ECU)
manipulates the reported range/range-rate of the tracked lead vehicle,
which feeds the ACC car-following law directly.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.sim.sensors.radar import RadarReading

__all__ = ["RadarRangeScaleAttack", "RadarGhostAttack", "RadarBlindAttack"]


class RadarRangeScaleAttack(Attack):
    """Scales the reported range (rate untouched).

    ``scale > 1`` makes the lead appear farther: the ACC closes the real
    gap dangerously.  Scaling only the range leaves the reported rate
    inconsistent with the range's own derivative — the A19 signature.
    """

    name = "radar_scale"
    channel = "radar"

    def __init__(self, scale: float = 1.6, window: AttackWindow | None = None):
        super().__init__(window)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def on_radar(self, t: float, reading: RadarReading) -> RadarReading:
        return reading.with_range(reading.range_m * self.scale)


class RadarGhostAttack(Attack):
    """Injects a ghost target a fixed distance *closer* than the real lead.

    The ACC brakes for a phantom; reported range and rate stay mutually
    consistent (a constant offset vanishes under differentiation), so the
    behavioural headway/speed assertions and the range-jump check at onset
    are what catch it.
    """

    name = "radar_ghost"
    channel = "radar"

    def __init__(self, offset: float = 15.0, window: AttackWindow | None = None):
        super().__init__(window)
        if offset <= 0:
            raise ValueError("offset must be positive")
        self.offset = offset

    def on_radar(self, t: float, reading: RadarReading) -> RadarReading:
        return reading.with_range(reading.range_m - self.offset)


class RadarBlindAttack(Attack):
    """Suppresses radar tracks entirely (jamming / sensor blinding).

    The ACC holds its last track, then effectively free-runs — the gap
    erodes as the lead slows.
    """

    name = "radar_blind"
    channel = "radar"

    def on_radar(self, t: float, reading: RadarReading) -> RadarReading | None:
        return None
