"""E13 (extension) — debugging controller implementation defects.

The other half of "debugging AD control algorithms": not attacks but
shipped regressions.  Each classic controller bug (gain error, sign flip,
stale input, deadband, saturation) is injected into the Pure Pursuit
tracker; the catalog checks the run and the *defect* knowledge base ranks
the regression classes.

Expected shape: every defect detected with a distinct dominant signature
(A11 for gain, behavioural collapse for sign flip, A20 for deadband), and
high top-1 identification within the regression hypothesis set.  The
deadband row documents a methodology success story: the original catalog
missed it, and A20 was authored in response (see catalog docstring).
"""

from __future__ import annotations

from repro.control.base import make_lateral_controller
from repro.control.defects import DEFECT_CLASSES, DefectiveController, make_defect
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.core.diagnosis import diagnose
from repro.core.knowledge import defect_knowledge_base
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import ProbePlan, scenario_lane
from repro.experiments.tables import Table
from repro.sim.engine import SimulationRunner
from repro.sim.scenario import standard_scenarios

__all__ = ["build_defect_debugging", "DEFECT_PARAMS"]

DEFECT_PARAMS: dict[str, dict] = {
    "ctrl_gain_error": {"factor": 7.0},
    "ctrl_sign_flip": {},
    "ctrl_stale_input": {"delay_steps": 16},
    "ctrl_deadband": {"threshold": 0.12},
    "ctrl_saturation": {"limit": 0.02},
}
"""Injected magnitudes (chosen as realistic regression sizes)."""

_SCENARIO = "s_curve"


def _defect_follower(defect_name: str | None, scenario) -> WaypointFollower:
    lateral = make_lateral_controller("pure_pursuit")
    if defect_name is not None:
        lateral = DefectiveController(
            lateral, make_defect(defect_name, **DEFECT_PARAMS[defect_name])
        )
    return WaypointFollower(
        lateral, profile=SpeedProfile(cruise_speed=scenario.cruise_speed)
    )


def _run_with_defect(defect_name: str | None, seed: int):
    # Full scenario duration always: truncating the run would fire the
    # A15 liveness check for the wrong reason (goal unreachable in time).
    scenario = standard_scenarios(seed=seed)[_SCENARIO]
    return SimulationRunner(scenario,
                            _defect_follower(defect_name, scenario)).run()


def build_defect_debugging(config: ExperimentConfig | None = None,
                           workers: int | None = None) -> Table:
    """Defect detection + identification table.

    ``workers`` is accepted for experiment-interface uniformity; the
    defect x seed sweep is declared up front to a
    :class:`~repro.experiments.plan.ProbePlan` — defective controllers
    are not vectorizable, so these run as per-lane *object* lanes inside
    the lockstep batch, still one simulation pass per compatible group —
    and commits through the shared params-keyed cache, so repeated
    campaigns re-simulate nothing.
    """
    config = config or ExperimentConfig.full()
    kb = defect_knowledge_base()
    table = Table(
        title="Table 9 (E13, extension): controller-defect debugging "
              f"(scenario={_SCENARIO}, controller=pure_pursuit, "
              f"{len(config.seeds)} seed(s))",
        columns=["defect", "max|cte| [m]", "detected", "top-1 correct",
                 "dominant assertions"],
    )

    plan = ProbePlan()
    sweep: dict[tuple, object] = {}
    for defect_name in [None] + list(DEFECT_CLASSES):
        for seed in config.seeds:
            scenario = standard_scenarios(seed=seed)[_SCENARIO]

            def simulate(defect_name=defect_name, seed=seed):
                return _run_with_defect(defect_name, seed)

            sweep[(defect_name, seed)] = plan.plan_scored(
                {"kind": "defect", "defect": defect_name or "none",
                 "defect_params": DEFECT_PARAMS.get(defect_name, {}),
                 "scenario": _SCENARIO, "seed": seed},
                simulate,
                lane=lambda defect_name=defect_name, scenario=scenario:
                scenario_lane(scenario,
                              follower=_defect_follower(defect_name,
                                                        scenario)),
                group=(_SCENARIO, None),
            )

    for defect_name in [None] + list(DEFECT_CLASSES):
        detected = correct = 0
        damages = []
        fired_union: set[str] = set()
        for seed in config.seeds:
            result, report = sweep[(defect_name, seed)].result()
            ranking = diagnose(report, kb)
            truth = defect_name or "none"
            if truth == "none":
                detected += report.any_fired
            else:
                detected += report.any_fired
            correct += ranking.top().cause == truth
            damages.append(result.metrics.max_abs_cte)
            fired_union.update(report.fired_ids)
        n = len(config.seeds)
        table.add_row(
            defect_name or "none",
            max(damages),
            f"{detected}/{n}" + (" (FPs)" if defect_name is None else ""),
            f"{correct}/{n}",
            ",".join(sorted(fired_union)) or "-",
        )
    table.add_note("diagnosis runs against the regression hypothesis set "
                   "(defect_knowledge_base), the developer's debugging "
                   "context; A20 was authored to close the deadband gap.")
    return table


def main() -> None:
    print(build_defect_debugging().render())


if __name__ == "__main__":
    main()
