"""Tests for repro.trace.diff."""

import pytest

from repro.attacks.campaign import standard_attack
from repro.sim.engine import run_scenario
from repro.trace.diff import diff_traces
from repro.trace.schema import Trace

from conftest import make_trace, short_scenario


class TestDiffValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            diff_traces(Trace(), make_trace(10))

    def test_dt_mismatch_rejected(self):
        a = make_trace(10)
        b = make_trace(10)
        b.meta.dt = 0.1
        with pytest.raises(ValueError, match="time steps"):
            diff_traces(a, b)

    def test_unknown_channel_needs_tolerance(self):
        a, b = make_trace(10), make_trace(10)
        with pytest.raises(ValueError, match="tolerance"):
            diff_traces(a, b, channels=["gps_fresh"])
        # ... but works once a tolerance is supplied.
        diff = diff_traces(a, b, channels=["gps_fresh"],
                           tolerances={"gps_fresh": 0.5})
        assert not diff.divergences


class TestDiffSynthetic:
    def test_identical_traces_equivalent(self):
        a, b = make_trace(100), make_trace(100)
        diff = diff_traces(a, b)
        assert diff.divergences == []
        assert diff.first_channel is None
        assert "equivalent" in diff.render()

    def test_single_channel_divergence_located(self):
        a = make_trace(100)
        b = make_trace(100, mutate=lambda s, r: (
            r.replace(gps_y=3.0) if s >= 40 else r))
        diff = diff_traces(a, b)
        assert diff.first_channel == "gps_y"
        d = diff.divergences[0]
        assert d.t_first == pytest.approx(40 * 0.05)
        assert d.max_abs_diff == pytest.approx(3.0)

    def test_divergences_time_ordered(self):
        def mutate(s, r):
            if s >= 60:
                r = r.replace(steer_cmd=0.3)
            if s >= 30:
                r = r.replace(gps_y=5.0)
            return r

        diff = diff_traces(make_trace(100), make_trace(100, mutate=mutate))
        channels = [d.channel for d in diff.divergences]
        assert channels.index("gps_y") < channels.index("steer_cmd")

    def test_common_prefix_only(self):
        diff = diff_traces(make_trace(50), make_trace(100))
        assert diff.duration_compared == pytest.approx(49 * 0.05)

    def test_render_lists_channels(self):
        b = make_trace(100, mutate=lambda s, r: (
            r.replace(gps_y=3.0) if s >= 40 else r))
        text = diff_traces(make_trace(100), b).render()
        assert "gps_y" in text


class TestDiffRealRuns:
    def test_attack_diff_starts_at_gps_channel(self):
        # The paradigm use: nominal vs attacked run — the GPS channel must
        # diverge first (it is the root cause), the pose later.
        scenario = short_scenario("s_curve", duration=35.0)
        nominal = run_scenario(scenario)
        attacked = run_scenario(
            scenario, campaign=standard_attack("gps_bias", onset=15.0))
        diff = diff_traces(nominal.trace, attacked.trace)
        assert diff.first_channel in ("gps_x", "gps_y")
        assert diff.divergences[0].t_first == pytest.approx(15.0, abs=0.3)
        # Ground-truth position diverges strictly after the sensor channel.
        pose_div = [d for d in diff.divergences if d.channel == "true_y"]
        assert pose_div and pose_div[0].t_first > 15.0
