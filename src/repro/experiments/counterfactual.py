"""Counterfactual root-cause isolation: delta-debug the diagnosis.

Knowledge-base pattern matching (:mod:`repro.core.diagnosis`) ranks
*hypotheses*; this module tests them.  Given a violating run, it
re-simulates counterfactuals — the injection removed, its window
bisected, its channels ablated, its magnitude minimized — to isolate the
smallest intervention that still flips the verdict, Zeller-style.  Two
properties the rest of the repo already paid for make this practical:

* **determinism** — every run is a pure function of its coordinates, so a
  counterfactual differs from the original *only* by the edit
  (``tests/test_counterfactual_exact.py`` pins this bit-for-bit under
  both the serial and the lockstep batch engine);
* **the content-addressed run cache** — probes are params-keyed through
  :class:`~repro.experiments.backend.ScoredResultStore`, so a repeated
  explanation re-simulates nothing, probes are shardable across any
  fleet that shares the cache directory, and every probe commits
  exactly once.

The search cores (:func:`ddmin_interval`, :func:`ddmin_subset`,
:func:`bisect_intensity`) are pure functions over a ``violates``
predicate, so they are property-tested without a simulator in the loop
(``tests/test_counterfactual.py``).  The driver, :func:`explain`,
composes them into a :class:`CausalReport`; the same probe machinery
backs :func:`counterfactual_tiebreak` (E4's escape hatch for ambiguous
rankings) and :func:`detect_separation_gap` (the automated half of the
paper's E9 refinement loop: flag cause pairs no counterfactual can
separate and propose the assertion signature that would).

Probe accounting is deliberately cache-independent: every probe —
memo hit, disk hit or fresh simulation — counts against the budget, so
an explanation is a deterministic function of its inputs; the cache only
changes how fast it converges (``adassure explain --stats`` shows the
hit split).  See ``docs/counterfactual.md`` for the full algorithm.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace

from repro.attacks.campaign import (
    ATTACK_CLASSES,
    AttackCampaign,
    campaign_classes,
    reparameterized_attack,
)
from repro.core.diagnosis import (
    DiagnosisResult,
    apply_tiebreak,
    diagnose,
)
from repro.core.knowledge import KnowledgeBase, default_knowledge_base
from repro.core.verdicts import CheckReport
from repro.experiments.stats import STATS, GridStats
from repro.faults.campaign import (
    FaultCampaign,
    fault_classes,
    reparameterized_fault,
)
from repro.sim.engine import RunResult, run_scenario
from repro.sim.scenario import Scenario, acc_scenario, standard_scenarios

__all__ = [
    "CausalReport",
    "Intervention",
    "IntensityResult",
    "IntervalResult",
    "ProbeBudgetExhausted",
    "ProbeEngine",
    "ProbeOutcome",
    "SeparationGap",
    "Subject",
    "SubsetResult",
    "TiebreakResult",
    "bisect_intensity",
    "counterfactual_tiebreak",
    "ddmin_interval",
    "ddmin_subset",
    "detect_separation_gap",
    "explain",
    "probe_params",
]

PROBE_KIND = "counterfactual"
"""``params["kind"]`` discriminator for every probe cache entry."""

DEFAULT_BUDGET = 48
"""Default probe budget per explanation (every probe counts, cached or not)."""

DEFAULT_RESOLUTION = 0.5
"""Default window-bisection granularity, seconds."""

GAP_SEPARATION = 0.5
"""Candidate signatures closer than this (L1 over assertion strengths)
are considered counterfactually inseparable — the refinement-gap signal."""


class ProbeBudgetExhausted(RuntimeError):
    """A search hit its probe budget; the best result so far is returned
    with ``exhausted=True`` rather than raising to the caller."""


@dataclass(slots=True)
class _Budget:
    """Probe counter shared by the searches of one explanation."""

    limit: int
    used: int = 0

    @property
    def remaining(self) -> int:
        return max(self.limit - self.used, 0)

    def charge(self) -> None:
        if self.used >= self.limit:
            raise ProbeBudgetExhausted(
                f"probe budget of {self.limit} exhausted")
        self.used += 1


# ---------------------------------------------------------------------------
# Search cores: pure functions over a `violates` predicate.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class IntervalResult:
    """Outcome of :func:`ddmin_interval` (integer step space)."""

    lo: int
    hi: int
    probes: int
    exhausted: bool

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def minimal(self) -> bool:
        """1-minimality was *verified* (the budget did not cut the search
        short): trimming one more unit off either end no longer violates."""
        return not self.exhausted


def ddmin_interval(violates, n: int, budget: int = 64) -> IntervalResult:
    """Shrink the violating interval ``[0, n)`` to a 1-minimal sub-interval.

    ``violates(lo, hi)`` must hold for ``(0, n)`` (the caller verifies it;
    it is never re-probed here).  Zeller-style delta debugging specialised
    to contiguous windows: greedily trim power-of-two-sized steps off the
    right, then the left, halving the step on failure until single-unit
    trims fail on both ends.

    Guarantees (the hypothesis suite pins each):

    * the returned interval always still violates — a non-monotone
      predicate cannot over-shrink it below a violating witness;
    * the interval only ever shrinks, so non-monotone streams cannot
      loop the search;
    * on normal exit the interval is 1-minimal;
    * at most ``budget`` probes are issued; on exhaustion the best
      violating interval found so far comes back with ``exhausted=True``.
    """
    if n < 1:
        raise ValueError("interval must span at least one unit")
    budget_ = _Budget(int(budget))
    lo, hi = 0, n
    exhausted = False

    def test(a: int, b: int) -> bool:
        budget_.charge()
        return bool(violates(a, b))

    step = 1
    while step * 2 < n:
        step *= 2
    try:
        while step >= 1:
            if hi - lo > step and test(lo, hi - step):
                hi -= step
            elif hi - lo > step and test(lo + step, hi):
                lo += step
            else:
                step //= 2
    except ProbeBudgetExhausted:
        exhausted = True
    return IntervalResult(lo=lo, hi=hi, probes=budget_.used,
                          exhausted=exhausted)


@dataclass(frozen=True, slots=True)
class SubsetResult:
    """Outcome of :func:`ddmin_subset`."""

    kept: tuple
    probes: int
    exhausted: bool

    @property
    def minimal(self) -> bool:
        return not self.exhausted


def ddmin_subset(violates, items, budget: int = 64) -> SubsetResult:
    """1-minimal sufficient subset of ``items`` (order-preserving).

    ``violates(subset)`` must hold for the full tuple.  Fast path: probe
    each singleton — any violating singleton is immediately 1-minimal
    (the common case for independent attack channels).  Otherwise greedy
    leave-one-out elimination until no single removal still violates.
    Same budget contract as :func:`ddmin_interval`.
    """
    items = tuple(items)
    if not items:
        raise ValueError("subset minimization needs at least one item")
    budget_ = _Budget(int(budget))
    kept = list(items)
    exhausted = False

    def test(subset) -> bool:
        budget_.charge()
        return bool(violates(tuple(subset)))

    try:
        if len(kept) > 1:
            for item in items:
                if test([item]):
                    kept = [item]
                    break
        changed = len(kept) > 1
        while changed and len(kept) > 1:
            changed = False
            for item in list(kept):
                candidate = [x for x in kept if x != item]
                if test(candidate):
                    kept = candidate
                    changed = True
                    break
    except ProbeBudgetExhausted:
        exhausted = True
    return SubsetResult(kept=tuple(kept), probes=budget_.used,
                        exhausted=exhausted)


@dataclass(frozen=True, slots=True)
class IntensityResult:
    """Outcome of :func:`bisect_intensity`."""

    minimal: float
    """Smallest probed magnitude that still violates."""
    lower: float
    """Largest probed magnitude that did not (the boundary sits between)."""
    probes: int
    exhausted: bool

    @property
    def boundary_width(self) -> float:
        return self.minimal - self.lower


def bisect_intensity(violates, hi: float, *, rel_resolution: float = 1 / 16,
                     budget: int = 64) -> IntensityResult:
    """1-minimize the magnitude knob toward the verdict boundary.

    ``violates(hi)`` must hold.  Standard bisection keeping the upper end
    violating, down to a boundary bracket of ``hi * rel_resolution``.
    Magnitude-free interventions (freeze, blinding) simply converge to a
    near-zero minimal intensity — "violates at any magnitude".
    """
    if hi <= 0:
        raise ValueError("intensity must be positive")
    budget_ = _Budget(int(budget))
    lo = 0.0
    resolution = hi * float(rel_resolution)
    exhausted = False
    try:
        while hi - lo > resolution:
            budget_.charge()
            mid = 0.5 * (lo + hi)
            if violates(mid):
                hi = mid
            else:
                lo = mid
    except ProbeBudgetExhausted:
        exhausted = True
    return IntensityResult(minimal=hi, lower=lo, probes=budget_.used,
                           exhausted=exhausted)


# ---------------------------------------------------------------------------
# Interventions and probes
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Intervention:
    """One (possibly edited) injection configuration for a probe.

    The unit the delta-debugger edits: attack/fault channel sets, a
    shared magnitude knob, and a shared injection window.  The *original*
    intervention reconstructs the violating run's campaigns
    object-for-object; edits derive siblings via :meth:`with_window`,
    :meth:`with_channels` and :meth:`with_intensity`.
    """

    attacks: tuple[str, ...] = ()
    faults: tuple[str, ...] = ()
    intensity: float = 1.0
    onset: float = 15.0
    end: float = math.inf

    @staticmethod
    def from_labels(attack: str = "none", fault: str = "none",
                    intensity: float = 1.0, onset: float = 15.0,
                    end: float = math.inf) -> "Intervention":
        """Decode ``+``-joined campaign labels into an intervention."""
        return Intervention(
            attacks=campaign_classes(attack),
            faults=fault_classes(fault),
            intensity=float(intensity),
            onset=float(onset),
            end=float(end),
        )

    @property
    def empty(self) -> bool:
        return not self.attacks and not self.faults

    @property
    def label(self) -> str:
        parts = list(self.attacks) + list(self.faults)
        return "+".join(parts) if parts else "none"

    @property
    def channels(self) -> tuple[tuple[str, str], ...]:
        """Ablatable units as ``(kind, class)`` pairs."""
        return tuple(("attack", cls) for cls in self.attacks) + tuple(
            ("fault", cls) for cls in self.faults)

    def removed(self) -> "Intervention":
        return replace(self, attacks=(), faults=())

    def with_window(self, onset: float, end: float) -> "Intervention":
        return replace(self, onset=float(onset), end=float(end))

    def with_intensity(self, intensity: float) -> "Intervention":
        return replace(self, intensity=float(intensity))

    def with_channels(self, channels) -> "Intervention":
        """Keep only the given ``(kind, class)`` pairs (order preserved)."""
        keep = set(channels)
        return replace(
            self,
            attacks=tuple(c for c in self.attacks if ("attack", c) in keep),
            faults=tuple(c for c in self.faults if ("fault", c) in keep),
        )

    def edit_dict(self) -> dict:
        """Canonical JSON description — the probe cache-key component.

        Every field rides in the key, so an *edited* intervention can
        never alias the original entry or a sibling edit (the
        key-collision regression in ``tests/test_counterfactual.py``
        pins this).  An unbounded window serialises as ``None`` (JSON
        has no infinity).
        """
        return {
            "attacks": list(self.attacks),
            "faults": list(self.faults),
            "intensity": float(self.intensity),
            "onset": float(self.onset),
            "end": None if math.isinf(self.end) else float(self.end),
        }

    def campaigns(self) -> tuple[AttackCampaign, FaultCampaign]:
        """Instantiate the attack and fault campaigns for this probe."""
        attack = reparameterized_attack(
            "+".join(self.attacks) if self.attacks else "none",
            intensity=self.intensity, onset=self.onset, end=self.end)
        fault = reparameterized_fault(
            "+".join(self.faults) if self.faults else "none",
            intensity=self.intensity, onset=self.onset, end=self.end)
        return attack, fault


@dataclass(frozen=True, slots=True)
class Subject:
    """The run under explanation: everything probes share with it."""

    scenario: str
    controller: str
    seed: int
    duration: float | None = None

    def build_scenario(self) -> Scenario:
        """Reconstruct the scenario exactly as the grid runner does."""
        if self.scenario == "acc_follow":
            scenario = acc_scenario(seed=self.seed)
            if self.duration is not None:
                import dataclasses
                scenario = dataclasses.replace(scenario,
                                               duration=self.duration)
            return scenario
        scenarios = standard_scenarios(seed=self.seed, duration=self.duration)
        if self.scenario not in scenarios:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {sorted(scenarios)} or 'acc_follow'")
        return scenarios[self.scenario]


def probe_params(subject: Subject, intervention: Intervention) -> dict:
    """The :class:`~repro.experiments.backend.ScoredResultStore` params
    dict for one probe: subject coordinates plus the *full* intervention
    edit, so a modified intervention never aliases the original grid
    entry (different key space entirely) or any sibling probe."""
    return {
        "kind": PROBE_KIND,
        "scenario": subject.scenario,
        "controller": subject.controller,
        "seed": int(subject.seed),
        "duration": None if subject.duration is None
        else float(subject.duration),
        "edit": intervention.edit_dict(),
    }


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """One probe's verdict relative to the baseline violation signature."""

    violated: bool
    """True when the probe re-fires any of the baseline's fired assertions
    (or, for the baseline probe itself, fires anything at all)."""
    fired: tuple[str, ...]
    evidence: dict[str, float]
    margins: dict[str, float]
    """Worst normalized margin per assertion (negative = violated)."""
    report: CheckReport
    result: RunResult
    source: str
    """``"memo"`` / ``"disk"`` (cache layers) or ``"sim"`` (fresh run)."""


class ProbeEngine:
    """Executes counterfactual probes with budget and cache accounting.

    Every probe — cached or fresh — counts against the budget, so the
    explanation a given budget produces is deterministic regardless of
    cache temperature.  All execution funnels through the params-keyed
    :class:`~repro.experiments.backend.ScoredResultStore`
    (:func:`~repro.experiments.runner.scored_store`), which is what makes
    probes cached, shardable and exactly-once; per-probe memo/disk hits
    accumulate into one :class:`~repro.experiments.stats.GridStats`
    record (visible via ``--stats``).
    """

    def __init__(self, subject: Subject, budget: int = DEFAULT_BUDGET,
                 sim_engine: str | None = None):
        from repro.experiments.runner import resolve_sim_engine, scored_store
        self.subject = subject
        self.budget = _Budget(int(budget))
        self.sim_engine = resolve_sim_engine(sim_engine)
        self.store = scored_store()
        self.baseline_fired: frozenset[str] = frozenset()
        self.flipped = 0
        self.stats = GridStats(workers=1)
        self.stats.sim_engine = self.sim_engine

    @property
    def remaining(self) -> int:
        return self.budget.remaining

    @property
    def probes(self) -> int:
        return self.budget.used

    # -- execution ------------------------------------------------------
    def _simulate(self, intervention: Intervention) -> RunResult:
        scenario = self.subject.build_scenario()
        attack, faults = intervention.campaigns()
        return run_scenario(scenario, controller=self.subject.controller,
                            campaign=attack, faults=faults)

    def _resolve_or_run(self, intervention: Intervention):
        import time

        from repro.core.checker import check_trace
        params = probe_params(self.subject, intervention)
        hit = self.store.resolve(params)
        if hit is not None:
            (result, report), source = hit
            if source == "memo":
                self.stats.memo_hits += 1
            else:
                self.stats.disk_hits += 1
            return result, report, source
        t0 = time.perf_counter()
        result = self._simulate(intervention)
        t1 = time.perf_counter()
        report = check_trace(result.trace)
        t2 = time.perf_counter()
        self.store.commit(params, (result, report))
        self.stats.executed += 1
        self.stats.phase_time["simulate"] += t1 - t0
        self.stats.phase_time["check"] += t2 - t1
        return result, report, "sim"

    def prefetch(self, interventions) -> int:
        """Batch-simulate uncached probes through the lockstep engine.

        Only active with ``sim_engine="batch"``; an optimization, not a
        semantic: results are bit-identical to the serial path (the
        differential suite pins this), so prefetching never changes an
        explanation — and it charges no budget (the later
        :meth:`outcome` calls do).  Returns the number of lanes batched.
        Any engine rejection falls back silently to per-probe serial
        simulation.
        """
        if self.sim_engine != "batch":
            return 0
        from repro.core.checker import check_trace
        from repro.sim.batch import LaneSpec, run_batch
        pending: list[tuple[dict, Intervention]] = []
        for intervention in interventions:
            params = probe_params(self.subject, intervention)
            if self.store.resolve(params) is None:
                pending.append((params, intervention))
        if len(pending) < 2:
            return 0
        from repro.control.acc import AccController
        from repro.control.base import make_lateral_controller
        from repro.control.follower import SpeedProfile, WaypointFollower
        scenario = self.subject.build_scenario()
        specs = []
        for _, intervention in pending:
            attack, faults = intervention.campaigns()
            follower = WaypointFollower(
                make_lateral_controller(self.subject.controller),
                profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
                acc=AccController() if scenario.lead is not None else None,
            )
            specs.append(LaneSpec(scenario=scenario, follower=follower,
                                  campaign=attack, faults=faults))
        try:
            results = run_batch(specs)
        except Exception:
            self.stats.batch_fallbacks += 1
            return 0
        for (params, _), result in zip(pending, results):
            report = check_trace(result.trace)
            self.store.commit(params, (result, report))
        self.stats.batch_groups += 1
        self.stats.batch_points += len(pending)
        self.stats.executed += len(pending)
        return len(pending)

    def outcome(self, intervention: Intervention) -> ProbeOutcome:
        """Run one probe (budget-charged) and score it against the
        baseline violation signature."""
        self.budget.charge()
        result, report, source = self._resolve_or_run(intervention)
        fired = tuple(report.fired_ids)
        if self.baseline_fired:
            violated = bool(self.baseline_fired & set(fired))
        else:
            violated = report.any_fired
        if not violated:
            self.flipped += 1
        margins = {aid: s.worst_margin
                   for aid, s in report.summaries.items()}
        return ProbeOutcome(violated=violated, fired=fired,
                            evidence=report.evidence(), margins=margins,
                            report=report, result=result, source=source)

    def violates(self, intervention: Intervention) -> bool:
        return self.outcome(intervention).violated

    def record_stats(self) -> None:
        """Report this engine's accumulated counters into
        :data:`~repro.experiments.stats.STATS` (one record per
        explanation, like one ``run_grid`` call)."""
        self.stats.grid_points = self.probes
        STATS.record(self.stats)


# ---------------------------------------------------------------------------
# Hypothesis testing: tie-break + separation-gap detection
# ---------------------------------------------------------------------------

def evidence_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """L1 distance between two assertion-strength signatures."""
    keys = set(a) | set(b)
    return float(sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys))


@dataclass(frozen=True, slots=True)
class TiebreakResult:
    """Outcome of counterfactually re-ranking an ambiguous diagnosis."""

    candidates: tuple[str, ...]
    """Probed causes, in original ranking order."""
    distances: dict[str, float]
    """Per-candidate L1 distance between the observed signature and the
    signature the candidate actually produces when re-simulated."""
    diagnosis: DiagnosisResult
    """The re-ranked diagnosis (head re-ordered by distance)."""

    @property
    def chosen(self) -> str:
        return self.diagnosis.top().cause


@dataclass(frozen=True, slots=True)
class SeparationGap:
    """A cause pair no counterfactual separates under the current catalog.

    The automated version of the paper's refinement trigger: when the
    top candidates' *re-simulated* signatures are nearly identical, no
    amount of probing can tell them apart — the assertion catalog lacks
    a separating assertion.  ``proposed`` names the assertion signature
    that would separate them (from the knowledge-base profiles where the
    causes differ most, falling back to a channel-consistency
    suggestion); E9's gap-proposal addendum surfaces these.
    """

    causes: tuple[str, str]
    separation: float
    """L1 distance between the two candidates' simulated signatures."""
    distances: dict[str, float]
    """Each candidate's distance to the *observed* signature."""
    proposed: tuple[str, ...]
    """Assertion ids (or a new-assertion suggestion) that would separate."""

    @property
    def separable(self) -> bool:
        return self.separation >= GAP_SEPARATION


def _propose_separators(cause_a: str, cause_b: str,
                        signatures: dict[str, dict[str, float]],
                        kb: KnowledgeBase) -> tuple[str, ...]:
    """Assertion ids that would separate two confusable causes.

    Preference order: assertions whose *simulated* strengths differ most
    (real separators if any simulation disagreement exists at all), then
    knowledge-base profile entries with the largest fire-probability gap,
    then — when both are flat — a suggestion to author a new cross-channel
    consistency assertion."""
    sim_a, sim_b = signatures.get(cause_a, {}), signatures.get(cause_b, {})
    diffs = sorted(
        ((abs(sim_a.get(k, 0.0) - sim_b.get(k, 0.0)), k)
         for k in set(sim_a) | set(sim_b)),
        reverse=True,
    )
    proposed = [k for d, k in diffs[:3] if d >= 0.05]
    if proposed:
        return tuple(proposed)
    try:
        prof_a, prof_b = kb.profile(cause_a), kb.profile(cause_b)
    except KeyError:
        prof_a = prof_b = None
    if prof_a is not None and prof_b is not None:
        keys = set(prof_a.fire_probs) | set(prof_b.fire_probs)
        gaps = sorted(((abs(prof_a.prob(k) - prof_b.prob(k)), k)
                       for k in keys), reverse=True)
        proposed = [k for g, k in gaps[:3] if g >= 0.25]
        if proposed:
            return tuple(proposed)
    chan_a = cause_a.split("_", 1)[0]
    chan_b = cause_b.split("_", 1)[0]
    return (f"new: {chan_a}-vs-{chan_b} cross-channel consistency",)


def detect_separation_gap(engine: ProbeEngine, observed: dict[str, float],
                          candidates, base: Intervention,
                          kb: KnowledgeBase | None = None,
                          ) -> tuple[dict[str, dict[str, float]],
                                     dict[str, float], SeparationGap | None]:
    """Simulate each candidate cause and measure whether anything separates.

    For every candidate attack class, probes the *hypothesis* "this cause
    alone, at the observed window and magnitude" and collects its
    signature.  Returns the signatures, each candidate's distance to the
    observed signature, and a :class:`SeparationGap` when the top two
    candidates' simulated signatures are closer than
    :data:`GAP_SEPARATION` (else ``None``).
    """
    kb = kb or default_knowledge_base()
    candidates = [c for c in candidates if c in ATTACK_CLASSES]
    hypotheses = {
        cause: Intervention(attacks=(cause,), intensity=base.intensity,
                            onset=base.onset, end=base.end)
        for cause in candidates
    }
    engine.prefetch(hypotheses.values())
    signatures: dict[str, dict[str, float]] = {}
    distances: dict[str, float] = {}
    for cause, hypothesis in hypotheses.items():
        if engine.remaining <= 0:
            break
        out = engine.outcome(hypothesis)
        signatures[cause] = out.evidence
        distances[cause] = evidence_distance(observed, out.evidence)
    gap = None
    probed = [c for c in candidates if c in signatures]
    if len(probed) >= 2:
        a, b = probed[0], probed[1]
        separation = evidence_distance(signatures[a], signatures[b])
        if separation < GAP_SEPARATION:
            gap = SeparationGap(
                causes=(a, b), separation=separation,
                distances={a: distances[a], b: distances[b]},
                proposed=_propose_separators(a, b, signatures, kb),
            )
    return signatures, distances, gap


def counterfactual_tiebreak(run, onset: float | None = None,
                            duration: float | None = None,
                            kb: KnowledgeBase | None = None,
                            top_k: int = 2, budget: int = 12,
                            sim_engine: str | None = None,
                            ) -> tuple[DiagnosisResult, SeparationGap | None]:
    """Counterfactually re-rank an ambiguous grid run's diagnosis.

    E4's escape hatch: when the knowledge-base ranking is not
    :attr:`~repro.core.diagnosis.DiagnosisResult.confident`, re-simulate
    each head candidate as a hypothesis and prefer the one whose actual
    signature lies closest to the observed evidence
    (:func:`~repro.core.diagnosis.apply_tiebreak`).  Returns the
    (possibly re-ranked) diagnosis plus a :class:`SeparationGap` when no
    counterfactual separates the candidates.

    Args:
        run: a :class:`~repro.experiments.runner.GridRun`.
        onset: injection onset; defaults to the trace's recorded
            ground-truth onset.
        duration: the grid's duration override, if any (must match the
            original run for probes to share its configuration).
    """
    diagnosis = run.diagnosis
    if not diagnosis.ambiguous:
        return diagnosis, None
    if onset is None:
        onset = run.result.trace.attack_onset()
    if onset is None:
        return diagnosis, None
    subject = Subject(scenario=run.scenario, controller=run.controller,
                      seed=run.seed, duration=duration)
    base = Intervention(attacks=campaign_classes(run.attack),
                        intensity=run.intensity, onset=float(onset))
    engine = ProbeEngine(subject, budget=budget, sim_engine=sim_engine)
    engine.baseline_fired = frozenset(
        s.assertion_id for s in run.report.summaries.values() if s.fired)
    candidates = [d.cause for d in diagnosis.ranking[:top_k]]
    try:
        _, distances, gap = detect_separation_gap(
            engine, run.report.evidence(), candidates, base, kb=kb)
    finally:
        engine.record_stats()
    return apply_tiebreak(diagnosis, distances), gap


# ---------------------------------------------------------------------------
# The explain driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class WindowSummary:
    """Minimal violating injection window, in seconds."""

    start: float
    end: float
    original_start: float
    original_end: float
    resolution: float
    probes: int
    minimal: bool

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ChannelSummary:
    """Minimal sufficient channel set of a composed intervention."""

    kept: tuple[tuple[str, str], ...]
    dropped: tuple[tuple[str, str], ...]
    probes: int
    minimal: bool


@dataclass(frozen=True, slots=True)
class MagnitudeSummary:
    """Minimal violating magnitude (verdict-boundary bracket)."""

    minimal: float
    lower: float
    original: float
    probes: int
    exhausted: bool


@dataclass(slots=True)
class CausalReport:
    """Ranked causal explanation of one violating run.

    The deliverable of :func:`explain`: the smallest intervention that
    still flips the verdict, per-assertion margin deltas between the
    violating run and its attack-free counterfactual, and a confidence
    derived from how many probes actually flipped the verdict (each flip
    is an independent confirmation that the boundary is where the report
    says it is: confidence = 1 − 2^−flips, and 0 whenever necessity
    itself failed).
    """

    subject: Subject
    intervention: Intervention
    violated: bool
    fired: tuple[str, ...] = ()
    background: tuple[str, ...] = ()
    """Assertions that fire even with the intervention removed (scenario
    noise, e.g. truncation tripping a liveness check) — excluded from the
    signature under explanation."""
    necessary: bool = False
    """Removing the intervention clears every *attributable* violation
    (fired minus background)."""
    minimal: Intervention | None = None
    """The composed minimal intervention (window ∧ channels ∧ magnitude)."""
    minimal_verified: bool = False
    """The composed minimal intervention was re-probed and still violates."""
    window: WindowSummary | None = None
    channels: ChannelSummary | None = None
    magnitude: MagnitudeSummary | None = None
    margin_deltas: dict[str, tuple[float, float]] = field(default_factory=dict)
    """assertion id -> (margin with intervention, margin without)."""
    diagnosis: DiagnosisResult | None = None
    tiebreak: TiebreakResult | None = None
    gap: SeparationGap | None = None
    probes: int = 0
    flipped: int = 0
    budget: int = DEFAULT_BUDGET
    budget_exhausted: bool = False

    @property
    def confidence(self) -> float:
        if not self.necessary:
            return 0.0
        return 1.0 - 0.5 ** self.flipped

    @property
    def isolated(self) -> bool:
        """A minimal intervention was isolated and verified: necessity
        confirmed, and every search that ran completed within budget."""
        if not (self.violated and self.necessary):
            return False
        for search in (self.window, self.channels):
            if search is not None and not search.minimal:
                return False
        if self.magnitude is not None and self.magnitude.exhausted:
            return False
        if self.minimal is not None and not self.minimal_verified:
            return False
        return True

    def render(self) -> str:
        from repro.core.report import render_causal_report
        return render_causal_report(self)


def explain(
    scenario: str,
    controller: str,
    attack: str = "none",
    fault: str = "none",
    intensity: float = 1.0,
    onset: float = 15.0,
    seed: int = 7,
    duration: float | None = None,
    budget: int = DEFAULT_BUDGET,
    resolution: float = DEFAULT_RESOLUTION,
    sim_engine: str | None = None,
    kb: KnowledgeBase | None = None,
) -> CausalReport:
    """Counterfactually isolate the minimal intervention behind a run.

    The four searches, in order (each only spends budget the previous
    ones left):

    (a) **necessity** — re-simulate with the intervention removed; the
        explanation is causal only if that clears the violation;
    (b) **window** — ddmin the injection window to a 1-minimal violating
        interval at ``resolution``-second granularity;
    (c) **channels** — ablate composed attack/fault channel sets to the
        minimal sufficient subset;
    (d) **magnitude** — bisect the intensity knob to the verdict boundary.

    The composed minimal intervention is then re-probed once to verify
    the axes compose.  When the diagnosis of the violating run is
    ambiguous, the hypothesis tester re-ranks its head and looks for a
    separation gap (see :func:`counterfactual_tiebreak`).

    All probes run through the shared result store; `budget` counts every
    probe, cached or not, so the report is cache-independent.
    """
    subject = Subject(scenario=scenario, controller=controller,
                      seed=int(seed), duration=duration)
    original = Intervention.from_labels(attack, fault, intensity=intensity,
                                        onset=onset)
    engine = ProbeEngine(subject, budget=budget, sim_engine=sim_engine)
    report = CausalReport(subject=subject, intervention=original,
                          violated=False, budget=budget)
    try:
        base = engine.outcome(original)
        report.fired = base.fired
        report.violated = bool(base.fired)
        report.diagnosis = diagnose(base.report, kb)
        if not report.violated or original.empty:
            return report
        engine.baseline_fired = frozenset(base.fired)

        # (a) necessity + margin deltas against the clean counterfactual.
        # Assertions that fire even with the intervention removed are
        # *background* (e.g. a truncated scenario tripping a liveness
        # check) — they are subtracted from the signature under
        # explanation, and every later probe is scored against the
        # attributable remainder only.
        clean = engine.outcome(original.removed())
        background = frozenset(base.fired) & frozenset(clean.fired)
        attributable = frozenset(base.fired) - background
        report.background = tuple(
            aid for aid in base.fired if aid in background)
        report.necessary = bool(attributable)
        engine.baseline_fired = attributable
        if attributable and clean.violated:
            # The clean probe was scored against the full baseline (the
            # attributable set did not exist yet); it did clear the
            # attributable signature, so it counts as a flip.
            engine.flipped += 1
        report.margin_deltas = {
            aid: (base.margins.get(aid, 0.0), clean.margins.get(aid, 0.0))
            for aid in base.fired if aid in attributable
        }
        if not report.necessary:
            return report

        scenario_obj = subject.build_scenario()
        end_eff = min(original.end, scenario_obj.duration)

        # (b) window ddmin over [onset, end_eff) at `resolution` steps.
        window_res = None
        span = end_eff - original.onset
        if span > 0 and engine.remaining > 0:
            n = max(int(math.ceil(span / resolution - 1e-9)), 1)

            def window_time(i: int) -> float:
                # The last cell absorbs the sub-resolution remainder.
                return end_eff if i >= n else original.onset + i * resolution

            def window_violates(a: int, b: int) -> bool:
                return engine.violates(
                    original.with_window(window_time(a), window_time(b)))

            window_res = ddmin_interval(window_violates, n, budget=10 ** 9)
            report.window = WindowSummary(
                start=window_time(window_res.lo),
                end=window_time(window_res.hi),
                original_start=original.onset,
                original_end=end_eff,
                resolution=resolution,
                probes=window_res.probes,
                minimal=window_res.minimal,
            )

        # (c) channel ablation for composed interventions.
        channel_res = None
        parts = original.channels
        if len(parts) > 1 and engine.remaining > 0:

            def subset_violates(subset) -> bool:
                return engine.violates(original.with_channels(subset))

            channel_res = ddmin_subset(subset_violates, parts, budget=10 ** 9)
            report.channels = ChannelSummary(
                kept=channel_res.kept,
                dropped=tuple(p for p in parts if p not in channel_res.kept),
                probes=channel_res.probes,
                minimal=channel_res.minimal,
            )

        # (d) magnitude 1-minimization toward the verdict boundary.
        magnitude_res = None
        if engine.remaining > 0:

            def intensity_violates(x: float) -> bool:
                return engine.violates(original.with_intensity(x))

            magnitude_res = bisect_intensity(
                intensity_violates, original.intensity, budget=10 ** 9)
            report.magnitude = MagnitudeSummary(
                minimal=magnitude_res.minimal,
                lower=magnitude_res.lower,
                original=original.intensity,
                probes=magnitude_res.probes,
                exhausted=magnitude_res.exhausted,
            )

        # Compose the minimal intervention and verify the axes compose.
        minimal = original
        if channel_res is not None:
            minimal = minimal.with_channels(channel_res.kept)
        if window_res is not None and report.window is not None:
            minimal = minimal.with_window(report.window.start,
                                          report.window.end)
        if magnitude_res is not None and not magnitude_res.exhausted:
            minimal = minimal.with_intensity(magnitude_res.minimal)
        report.minimal = minimal
        if minimal == original:
            report.minimal_verified = True
        elif engine.remaining > 0:
            verify = engine.outcome(minimal)
            report.minimal_verified = verify.violated
            if not verify.violated:
                # Non-monotone interaction: the per-axis minima do not
                # compose.  Fall back to the least aggressive composition
                # (window-only) — still a true minimal-window statement.
                fallback = original
                if window_res is not None and report.window is not None:
                    fallback = original.with_window(report.window.start,
                                                    report.window.end)
                report.minimal = fallback
                if engine.remaining > 0 and fallback != original:
                    report.minimal_verified = engine.violates(fallback)

        # Hypothesis testing when the diagnosis stays ambiguous.
        if (report.diagnosis is not None and report.diagnosis.ambiguous
                and engine.remaining >= 2):
            candidates = [d.cause for d in report.diagnosis.ranking[:2]]
            _, distances, gap = detect_separation_gap(
                engine, base.evidence, candidates, original, kb=kb)
            if distances:
                report.tiebreak = TiebreakResult(
                    candidates=tuple(c for c in candidates
                                     if c in distances),
                    distances=distances,
                    diagnosis=apply_tiebreak(report.diagnosis, distances),
                )
            report.gap = gap
        return report
    finally:
        report.probes = engine.probes
        report.flipped = engine.flipped
        report.budget_exhausted = engine.remaining <= 0
        engine.record_stats()


_CACHE_KEY_RE = re.compile(r"^[0-9a-f]{40}$")


def resolve_cache_key(key: str):
    """Map a 40-hex run-cache key back to its grid point, if known.

    Scans the cache's checkpoint manifests (each records the full point
    list of a campaign) and returns the first point whose
    :func:`~repro.experiments.cache.cache_key` matches.  Returns ``None``
    when the key matches no manifested point — off-grid entries (probe
    results, ``run_scored`` configurations) are not reverse-mappable.
    """
    if not _CACHE_KEY_RE.match(key):
        raise ValueError(f"{key!r} is not a 40-hex cache key")
    import json

    from repro.experiments.cache import RunCache, cache_key
    cache = RunCache.from_env()
    if cache is None:
        return None
    checkpoint_dir = cache.root / "checkpoints"
    if not checkpoint_dir.is_dir():
        return None
    for manifest_path in sorted(checkpoint_dir.glob("*.json")):
        try:
            data = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        for entry in data.get("completed", []):
            point = tuple(entry)
            try:
                if cache_key(*point) == key:
                    return point
            except (TypeError, ValueError):
                continue
    return None
