"""Tests for repro.experiments.ascii_plot."""

import pytest

from repro.experiments.ascii_plot import line_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        s = sparkline(list(range(9)))
        assert list(s) == sorted(s)

    def test_constant_series(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(set(s)) == 1

    def test_fixed_scale(self):
        # With a fixed scale the same value renders the same glyph.
        a = sparkline([1.0], lo=0.0, hi=10.0)
        b = sparkline([1.0, 9.0], lo=0.0, hi=10.0)
        assert a[0] == b[0]


class TestLinePlot:
    def test_requires_series(self):
        with pytest.raises(ValueError):
            line_plot({})

    def test_renders_axes_and_legend(self):
        text = line_plot(
            {"nominal": ([0, 1, 2], [0.1, 0.2, 0.1]),
             "attacked": ([0, 1, 2], [0.1, 1.0, 3.0])},
            x_label="t [s]", y_label="|cte| [m]",
        )
        assert "|cte| [m]" in text
        assert "t [s]" in text
        assert "nominal" in text and "attacked" in text
        assert "└" in text

    def test_distinct_glyphs(self):
        text = line_plot({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])})
        assert "*" in text and "o" in text

    def test_plot_width_respected(self):
        text = line_plot({"a": ([0, 1], [0, 1])}, width=30, height=6)
        body_lines = [l for l in text.splitlines() if "│" in l]
        assert all(len(l) <= 30 + 13 for l in body_lines)
