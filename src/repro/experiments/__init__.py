"""Experiment harness: regenerates every table/figure of the evaluation.

Each ``e<N>_*`` module rebuilds one reconstructed paper artifact (see
DESIGN.md's per-experiment index and EXPERIMENTS.md for measured outputs).
All experiments accept an :class:`~repro.experiments.config.ExperimentConfig`
so the benchmark suite can run them in a reduced *quick* mode while the CLI
reproduces the full-size tables.
"""

from repro.experiments.backend import (
    BatchExecutor,
    CacheResultStore,
    Executor,
    PoolExecutor,
    ResultStore,
    Scheduler,
    SerialExecutor,
    build_grid,
)
from repro.experiments.cache import RunCache, cache_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.counterfactual import (
    CausalReport,
    Intervention,
    ProbeEngine,
    SeparationGap,
    Subject,
    counterfactual_tiebreak,
    explain,
    resolve_cache_key,
)
from repro.experiments.runner import (
    GridRun,
    clear_cache,
    resolve_executor,
    resolve_workers,
    run_grid,
    set_memo_limit,
)
from repro.experiments.stats import STATS, GridStats
from repro.experiments.tables import Table

from repro.experiments.e1_detection import build_detection_matrix
from repro.experiments.e2_latency import build_latency_table
from repro.experiments.e3_traces import build_anomaly_traces
from repro.experiments.e4_diagnosis import build_diagnosis_accuracy
from repro.experiments.e5_robustness import build_controller_robustness
from repro.experiments.e6_sweep import build_intensity_sweep
from repro.experiments.e7_overhead import build_monitor_overhead
from repro.experiments.e8_ablation import build_assertion_ablation
from repro.experiments.e9_refinement import build_refinement_loop
from repro.experiments.e10_mitigation import build_mitigation_table
from repro.experiments.e11_multi_attack import build_multi_attack_table
from repro.experiments.e12_acc import build_acc_debugging
from repro.experiments.e13_defects import build_defect_debugging
from repro.experiments.e14_degradation import build_degradation_table

__all__ = [
    "ExperimentConfig",
    "Table",
    "run_grid",
    "GridRun",
    "RunCache",
    "cache_key",
    "clear_cache",
    "resolve_executor",
    "resolve_workers",
    "set_memo_limit",
    "Scheduler",
    "Executor",
    "ResultStore",
    "BatchExecutor",
    "PoolExecutor",
    "SerialExecutor",
    "CacheResultStore",
    "build_grid",
    "GridStats",
    "STATS",
    "CausalReport",
    "Intervention",
    "ProbeEngine",
    "SeparationGap",
    "Subject",
    "counterfactual_tiebreak",
    "explain",
    "resolve_cache_key",
    "build_detection_matrix",
    "build_latency_table",
    "build_anomaly_traces",
    "build_diagnosis_accuracy",
    "build_controller_robustness",
    "build_intensity_sweep",
    "build_monitor_overhead",
    "build_assertion_ablation",
    "build_refinement_loop",
    "build_mitigation_table",
    "build_multi_attack_table",
    "build_acc_debugging",
    "build_defect_debugging",
    "build_degradation_table",
]

ALL_EXPERIMENTS = {
    "e1": build_detection_matrix,
    "e2": build_latency_table,
    "e3": build_anomaly_traces,
    "e4": build_diagnosis_accuracy,
    "e5": build_controller_robustness,
    "e6": build_intensity_sweep,
    "e7": build_monitor_overhead,
    "e8": build_assertion_ablation,
    "e9": build_refinement_loop,
    "e10": build_mitigation_table,
    "e11": build_multi_attack_table,
    "e12": build_acc_debugging,
    "e13": build_defect_debugging,
    "e14": build_degradation_table,
}
"""Experiment id -> builder, for the CLI and the benchmark suite.

``e1``-``e9`` reproduce the reconstructed paper evaluation; ``e10``-``e14``
are extensions (mitigation, concurrent attacks, ACC, controller defects,
fault-degradation) documented in EXPERIMENTS.md.
"""
