"""E7 / Figure 4 — online monitoring overhead.

Measures the wall-clock cost of feeding the online monitor per simulation
step as a function of how many assertions are active.  Expected shape:
cost grows ~linearly in the number of assertions and stays a small
fraction of a 50 ms control period — the methodology is cheap enough to
leave enabled on the bench vehicle.
"""

from __future__ import annotations

import time

from repro.core.catalog import CATALOG_IDS, default_catalog
from repro.core.monitor import OnlineMonitor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_monitor_overhead"]

_SUBSET_SIZES = (1, 2, 4, 8, 12, len(CATALOG_IDS))


def build_monitor_overhead(config: ExperimentConfig | None = None,
                           workers: int | None = None) -> Table:
    """Monitor cost per step vs. number of active assertions."""
    config = config or ExperimentConfig.full()
    # One representative trace, reused for every subset size.
    run = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=("gps_drift",),
        seeds=(config.seeds[0],),
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )[0]
    records = list(run.result.trace)
    dt_ms = run.result.trace.dt * 1e3

    table = Table(
        title="Figure 4 (E7): online monitor overhead per simulation step "
              f"(trace: {len(records)} steps of {dt_ms:.0f} ms)",
        columns=["# assertions", "us/step", "% of control period",
                 "steps/sec"],
    )

    for size in _SUBSET_SIZES:
        ids = CATALOG_IDS[:size]
        assertions = default_catalog(ids)
        monitor = OnlineMonitor(assertions)
        t0 = time.perf_counter()
        monitor.feed_all(records)
        monitor.finish()
        elapsed = time.perf_counter() - t0
        per_step_us = 1e6 * elapsed / len(records)
        table.add_row(
            size,
            f"{per_step_us:.0f}",
            f"{100.0 * (per_step_us / 1e3) / dt_ms:.2f}",
            f"{len(records) / elapsed:.0f}",
        )
    table.add_note("single-threaded CPython; the control period is "
                   f"{dt_ms:.0f} ms (20 Hz loop).")
    return table


def main() -> None:
    print(build_monitor_overhead().render())


if __name__ == "__main__":
    main()
