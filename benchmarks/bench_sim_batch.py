"""Bench — batched lockstep simulation vs per-run serial stepping.

Times :func:`repro.sim.batch.run_batch` on a small heterogeneous lane set
and *fails* if any trace column, metric or assertion verdict drifts from
the serial :class:`~repro.sim.engine.SimulationRunner` — this is the CI
tripwire for batch-engine equivalence regressions.  Full-size speedup
numbers (64 lanes, full scenario duration) are produced by
``python -m repro.sim.batch``, which writes ``BENCH_sim.json``.
"""

import numpy as np
import pytest

from repro.attacks.campaign import standard_attack
from repro.control.base import make_lateral_controller
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.core.checker import check_trace
from repro.sim.batch import LaneSpec, run_batch
from repro.sim.engine import SimulationRunner
from repro.sim.scenario import standard_scenarios
from repro.trace.schema import Trace

_LANES = [
    ("pure_pursuit", "none", 1),
    ("pure_pursuit", "gps_bias", 1),
    ("stanley", "gps_drift", 7),
    ("stanley", "none", 7),
    ("lqr", "steer_offset", 3),
    ("lqr", "none", 3),
    ("pure_pursuit", "compass_offset", 9),
    ("stanley", "odom_scale", 9),
]


def _spec(controller, attack, seed, duration):
    scenario = standard_scenarios(seed=seed, duration=duration)["s_curve"]
    return LaneSpec(
        scenario=scenario,
        follower=WaypointFollower(
            make_lateral_controller(controller),
            profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
        ),
        campaign=standard_attack(attack) if attack != "none" else None,
    )


@pytest.fixture(scope="module")
def serial_results(quick_config):
    return [
        SimulationRunner(spec.scenario, spec.follower, spec.campaign).run()
        for spec in (_spec(c, a, s, quick_config.duration)
                     for c, a, s in _LANES)
    ]


def test_sim_batch(benchmark, quick_config, serial_results):
    specs = [_spec(c, a, s, quick_config.duration) for c, a, s in _LANES]
    batch_results = benchmark.pedantic(lambda: run_batch(specs),
                                       rounds=1, iterations=1)
    # Equivalence drift fails the suite — the speedup is worthless if the
    # two engines stop agreeing.
    for serial, batch in zip(serial_results, batch_results):
        sc, bc = serial.trace.columns(), batch.trace.columns()
        for name in Trace.field_names:
            a, b = sc.get(name), bc.get(name)
            if a.dtype.kind == "f":
                assert np.array_equal(a, b, equal_nan=True), name
            else:
                assert np.array_equal(a, b), name
        assert serial.metrics == batch.metrics
        assert serial.outcome == batch.outcome
        serial_report = check_trace(serial.trace)
        batch_report = check_trace(batch.trace)
        assert serial_report.summaries == batch_report.summaries
        assert serial_report.violations == batch_report.violations


def test_sim_serial_oracle(benchmark, quick_config):
    specs = [_spec(c, a, s, quick_config.duration) for c, a, s in _LANES]
    results = benchmark.pedantic(
        lambda: [SimulationRunner(sp.scenario, sp.follower, sp.campaign).run()
                 for sp in specs],
        rounds=1, iterations=1)
    assert len(results) == len(_LANES)
