"""Tests for repro.trace.io: JSONL/CSV round trips + truncation salvage."""

import gzip

import pytest

from repro.trace.io import (
    TraceIOError,
    TraceTruncationWarning,
    read_trace_auto,
    read_trace_csv,
    read_trace_jsonl,
    trace_from_bytes,
    trace_from_jsonl_bytes,
    trace_to_jsonl_bytes,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.schema import TraceMeta

from conftest import make_trace


def sample_trace():
    def mutate(step, record):
        if step % 3 == 0:
            return record.replace(gps_fresh=False, attack_active=True,
                                  attack_name="gps_bias", attack_channel="gps")
        return record

    return make_trace(
        25,
        meta=TraceMeta(scenario="s_curve", controller="mpc",
                       attack="gps_bias", seed=11, dt=0.05,
                       route_length=321.5, extra={"note": "test"}),
        mutate=mutate,
    )


class TestJsonl:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        back = read_trace_jsonl(path)
        assert len(back) == len(trace)
        assert back.meta.to_dict() == trace.meta.to_dict()
        for a, b in zip(trace, back):
            assert a == b

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"step": 0}\n')
        with pytest.raises(ValueError, match="metadata"):
            read_trace_jsonl(path)

    def test_corrupt_record_reports_line(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        lines[3] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":4"):
            read_trace_jsonl(path)

    def test_missing_channel_rejected(self, tmp_path):
        # Two short records: the first has data after it, so this is
        # structural corruption (schema drift), not a truncated tail.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"meta": {}}\n{"step": 0, "t": 0.0}\n'
                        '{"step": 1, "t": 0.1}\n')
        with pytest.raises(ValueError, match="missing channel"):
            read_trace_jsonl(path)


class TestTruncation:
    """A stream cut off mid-write salvages the prefix with a warning;
    corruption *inside* the file stays a hard error."""

    def test_incomplete_final_line_salvages_prefix(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        text = path.read_text()
        path.write_text(text[: int(len(text) * 0.8)])  # cut mid-record
        with pytest.warns(TraceTruncationWarning, match="kept"):
            back = read_trace_jsonl(path)
        assert 0 < len(back) < len(trace)
        for a, b in zip(back, trace):
            assert a == b

    def test_truncated_gzip_stream_salvages_prefix(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl.gz"
        write_trace_jsonl(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 20])  # chop the gzip tail
        with pytest.warns(TraceTruncationWarning):
            back = read_trace_jsonl(path)
        assert len(back) < len(trace)

    def test_truncated_bytes_payload_salvages_prefix(self):
        trace = sample_trace()
        data = trace_to_jsonl_bytes(trace)
        with pytest.warns(TraceTruncationWarning):
            back = trace_from_jsonl_bytes(data[: len(data) - 20])
        assert len(back) < len(trace)

    def test_bytes_roundtrip_uncompressed(self):
        trace = sample_trace()
        data = trace_to_jsonl_bytes(trace, compress=False)
        back = trace_from_jsonl_bytes(data)
        assert len(back) == len(trace)

    def test_midfile_corruption_still_hard_error(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        lines[5] = lines[5][:40]  # broken record with records after it
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceIOError, match=":6"):
            read_trace_jsonl(path)

    def test_header_only_file_is_empty_trace(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        header = path.read_text().splitlines()[0]
        path.write_text(header + "\n")
        back = read_trace_jsonl(path)
        assert len(back) == 0
        assert back.meta.scenario == trace.meta.scenario


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert len(back) == len(trace)
        assert back.meta.scenario == "s_curve"
        for a, b in zip(trace, back):
            assert a == b

    def test_bool_fields_preserved(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert [r.gps_fresh for r in back] == [r.gps_fresh for r in trace]
        assert [r.attack_active for r in back] == [
            r.attack_active for r in trace
        ]

    def test_wrong_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="columns"):
            read_trace_csv(path)


class TestSubMagicPayloads:
    """Regression: payloads too short to carry a format magic must raise
    a clear TraceIOError, not a raw struct/Unicode/IndexError.  This is
    what a torn network frame or a zero-byte cache file looks like."""

    @pytest.mark.parametrize("payload", [b"", b"\x1f", b"PK\x03"],
                             ids=["0-byte", "1-byte", "3-byte"])
    def test_trace_from_bytes_rejects_short_payloads(self, payload):
        with pytest.raises(TraceIOError, match="too short"):
            trace_from_bytes(payload)

    @pytest.mark.parametrize("payload", [b"", b"\x1f", b"PK\x03"],
                             ids=["0-byte", "1-byte", "3-byte"])
    def test_read_trace_auto_rejects_short_files(self, tmp_path, payload):
        path = tmp_path / "stub.trace"
        path.write_bytes(payload)
        with pytest.raises(TraceIOError, match="too short"):
            read_trace_auto(path)

    def test_non_utf8_garbage_is_a_trace_error(self):
        # 4+ bytes, no known magic, not decodable text: still TraceIOError.
        with pytest.raises(TraceIOError, match="not a trace payload"):
            trace_from_bytes(b"\xff\xfe\xfd\xfc\xfb")
