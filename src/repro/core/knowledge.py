"""Cause/assertion knowledge base.

For every candidate root cause the knowledge base stores the probability
that each assertion fires when that cause is present.  The profiles below
encode the *mechanistic* signatures of the standard attack classes — which
channel lies, what the redundancy checks see, how the closed loop reacts —
not fitted numbers; the diagnosis experiments then measure how well these
first-principles profiles identify injected ground truth.

The knowledge base is the methodology's second extension point (after the
assertion DSL): debugging a new platform means adding cause profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CauseProfile",
    "KnowledgeBase",
    "default_knowledge_base",
    "defect_knowledge_base",
]

FALSE_POSITIVE_RATE = 0.06
"""Probability an assertion fires for reasons unrelated to the cause."""


@dataclass(frozen=True, slots=True)
class CauseProfile:
    """One candidate root cause and its expected assertion signature."""

    cause: str
    description: str
    fire_probs: dict[str, float] = field(default_factory=dict)
    """assertion_id -> P(assertion fires | this cause)."""

    def prob(self, assertion_id: str) -> float:
        """Fire probability for an assertion (floor: false-positive rate)."""
        return self.fire_probs.get(assertion_id, FALSE_POSITIVE_RATE)


class KnowledgeBase:
    """A set of cause profiles over a common assertion vocabulary."""

    def __init__(self, profiles: list[CauseProfile]):
        names = [p.cause for p in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cause names: {names}")
        self._profiles = {p.cause: p for p in profiles}

    @property
    def causes(self) -> list[str]:
        return list(self._profiles)

    def profile(self, cause: str) -> CauseProfile:
        if cause not in self._profiles:
            raise KeyError(f"unknown cause {cause!r}")
        return self._profiles[cause]

    def profiles(self) -> list[CauseProfile]:
        return list(self._profiles.values())

    def add(self, profile: CauseProfile) -> None:
        """Extend the knowledge base (the methodology's refinement step)."""
        if profile.cause in self._profiles:
            raise ValueError(f"cause {profile.cause!r} already present")
        self._profiles[profile.cause] = profile

    def restricted(self, assertion_ids: set[str] | frozenset[str]) -> "KnowledgeBase":
        """A copy whose profiles only mention the given assertions.

        Used by the E8 ablation: diagnosing with a catalog subset must not
        let the knowledge base peek at assertions that were not evaluated.
        """
        return KnowledgeBase([
            CauseProfile(
                cause=p.cause,
                description=p.description,
                fire_probs={a: q for a, q in p.fire_probs.items()
                            if a in assertion_ids},
            )
            for p in self._profiles.values()
        ])


def default_knowledge_base() -> KnowledgeBase:
    """Profiles for the standard attack classes plus the nominal cause.

    Probabilities follow the mechanism of each attack:

    * which *consistency* checks see the lying channel directly (high),
    * which *behavioural* checks fire because the closed loop actually
      deviates (medium — depends on controller/scenario), and
    * which checks are structurally blind to the cause (floor).
    """
    profiles = [
        CauseProfile(
            cause="none",
            description="no fault: nominal operation",
            fire_probs={},
        ),
        CauseProfile(
            cause="gps_bias",
            description="GNSS spoofing: jump-and-hold position offset",
            fire_probs={
                "A5": 0.90,   # the onset jump is kinematically impossible
                "A9G": 0.85,  # GPS innovation spikes at onset
                "A4": 0.80,   # fix disagrees with dead reckoning at onset
                "A7": 0.45,   # GPS-derived speed spikes across the jump
                "A1": 0.55,   # vehicle gets dragged off the lane
                "A3": 0.60,
                "A15": 0.50,  # offset goal is often missed
                "A2": 0.25,
            },
        ),
        CauseProfile(
            cause="gps_drift",
            description="GNSS spoofing: slow drag-away drift",
            fire_probs={
                "A4": 0.90,   # dead reckoning accumulates the discrepancy
                "A3": 0.70,   # sustained tracking degradation
                "A1": 0.60,
                "A15": 0.55,
                "A9G": 0.25,  # per-fix innovation stays inside the gate
                "A5": 0.08,   # drift is designed to defeat the jump check
                "A2": 0.20,
            },
        ),
        CauseProfile(
            cause="gps_freeze",
            description="GNSS denial: frozen position solution",
            fire_probs={
                "A6": 0.95,   # the literal freeze signature
                "A9G": 0.90,  # innovations grow with every meter moved
                "A7": 0.80,   # GPS-derived speed collapses to zero
                "A4": 0.75,
                "A10": 0.70,  # estimated station stalls
                "A1": 0.65,   # open-loop behaviour diverges
                "A13": 0.45,
                "A15": 0.70,
                "A5": 0.15,
            },
        ),
        CauseProfile(
            cause="gps_noise",
            description="GNSS jamming: inflated position noise",
            fire_probs={
                "A5": 0.90,   # fix-to-fix jumps exceed the envelope
                "A9G": 0.85,
                "A4": 0.55,
                "A11": 0.35,  # noisy estimate shakes the steering
                "A7": 0.30,
                "A1": 0.25,
                "A3": 0.25,
            },
        ),
        CauseProfile(
            cause="imu_gyro_bias",
            description="IMU injection: constant yaw-rate bias",
            fire_probs={
                "A8": 0.95,   # gyro integral diverges from compass
                "A9C": 0.30,  # the compass largely re-anchors the filter
                "A12": 0.30,  # apparent lateral acceleration inflates
                "A2": 0.20,
                "A1": 0.15,
            },
        ),
        CauseProfile(
            cause="odom_scale",
            description="wheel-speed tampering: scaled odometry messages",
            fire_probs={
                "A7": 0.90,   # wheel speed disagrees with GPS speed
                "A9S": 0.90,  # speed innovations inflate
                "A4": 0.70,   # dead reckoning integrates the scaled speed
                "A9G": 0.50,  # corrupted speed state leaks into position
                "A12": 0.40,  # true overspeed in corners
                "A1": 0.45,
                "A3": 0.40,
                "A15": 0.30,
                "A14": 0.15,  # the loop tracks the *lie*, so this stays quiet
            },
        ),
        CauseProfile(
            cause="compass_offset",
            description="heading spoofing: rotated compass messages",
            fire_probs={
                "A8": 0.85,   # step between gyro integral and compass delta
                "A4": 0.75,   # dead reckoning veers with the rotated heading
                "A9C": 0.35,  # onset spike; the filter absorbs it quickly
                "A3": 0.45,
                "A1": 0.40,
                "A2": 0.35,
                "A9G": 0.30,
                "A15": 0.25,
            },
        ),
        CauseProfile(
            cause="steer_offset",
            description="actuation tampering: steering offset at the EPS",
            fire_probs={
                "A16": 0.95,  # the reference actuator model sees the offset
                "A3": 0.35,   # small steady-state cte remains
                "A1": 0.20,
                "A15": 0.15,
            },
        ),
        CauseProfile(
            cause="radar_scale",
            description="radar spoofing: scaled range (lead appears farther)",
            fire_probs={
                "A19": 0.90,  # range derivative contradicts the Doppler rate
                "A17": 0.75,  # the ACC tailgates the real lead
                "A18": 0.55,  # the scale engaging produces a range step
                "A14": 0.10,
            },
        ),
        CauseProfile(
            cause="radar_ghost",
            description="radar spoofing: phantom target closer than the lead",
            fire_probs={
                "A18": 0.90,  # the onset step is kinematically impossible
                "A19": 0.45,  # the step also corrupts the windowed slope
                "A14": 0.25,
            },
        ),
        CauseProfile(
            cause="radar_blind",
            description="radar jamming: lead track suppressed",
            fire_probs={
                "A17": 0.80,  # ACC free-runs into the slowing lead
                "A18": 0.20,  # re-acquire jumps if the track flickers
                "A14": 0.20,
            },
        ),
        CauseProfile(
            cause="cmd_delay",
            description="network attack: delayed control commands",
            fire_probs={
                "A16": 0.80,  # applied steering lags the reference model
                "A11": 0.70,  # latency-induced limit cycle
                "A12": 0.50,
                "A2": 0.50,
                "A3": 0.50,
                "A1": 0.45,
                "A13": 0.30,
                "A15": 0.30,
            },
        ),
        CauseProfile(
            cause="sensor_fault",
            description="benign delivery fault: dropout / freeze / NaN burst",
            fire_probs={
                "A22": 0.75,  # unprotected stacks keep cruising on the loss
                "A21": 0.65,  # tracking degrades inside the fault window
                "A6": 0.60,   # a frozen or silent fix stops moving
                "A9G": 0.45,  # innovations grow while the EKF coasts
                "A4": 0.40,
                "A10": 0.35,
                "A1": 0.35,
                "A15": 0.40,
            },
        ),
    ]
    return KnowledgeBase(profiles)


def defect_knowledge_base() -> KnowledgeBase:
    """Profiles for controller *implementation defects* (E13).

    This is a separate hypothesis set from the attack knowledge base: when
    a developer debugs a controller change, the candidate causes are the
    classic regression classes, not external attacks.  Profiles follow the
    closed-loop mechanism of each bug (measured signatures are in
    EXPERIMENTS.md, E13).
    """
    return KnowledgeBase([
        CauseProfile(
            cause="none",
            description="no defect: controller behaves as designed",
            fire_probs={},
        ),
        CauseProfile(
            cause="ctrl_gain_error",
            description="regression: feedback gain scaled up",
            fire_probs={
                "A11": 0.90,  # limit-cycle is the gain signature
                "A12": 0.25,
                "A1": 0.15,
            },
        ),
        CauseProfile(
            cause="ctrl_sign_flip",
            description="regression: inverted steering sign",
            fire_probs={
                "A1": 0.95,   # immediate, unbounded divergence
                "A2": 0.90,
                "A3": 0.90,
                "A15": 0.85,
                "A10": 0.70,  # estimated progress stalls off-route
                "A11": 0.50,  # thrashing while diverging
                "A13": 0.35,
            },
        ),
        CauseProfile(
            cause="ctrl_stale_input",
            description="regression: controller consumes an old pose",
            fire_probs={
                "A11": 0.85,  # latency-induced oscillation
                "A1": 0.80,   # oscillation grows into departure
                "A3": 0.80,
                "A2": 0.70,
                "A15": 0.70,
                "A12": 0.55,
                "A10": 0.45,
                "A13": 0.40,
            },
        ),
        CauseProfile(
            cause="ctrl_deadband",
            description="regression: small commands truncated to zero",
            fire_probs={
                "A20": 0.90,  # error persists, controller stays silent
                "A3": 0.30,
                "A1": 0.15,
            },
        ),
        CauseProfile(
            cause="ctrl_saturation",
            description="regression: output clamped far below the limit",
            fire_probs={
                "A1": 0.90,   # cannot steer through curves
                "A3": 0.85,
                "A2": 0.60,
                "A15": 0.60,
                "A20": 0.10,  # it does respond — just too weakly
            },
        ),
    ])
