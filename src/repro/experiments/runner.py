"""Grid runner: scenario x controller x attack x seed, with check+diagnose.

Every experiment funnels through :func:`run_grid` so runs are executed and
scored uniformly, and so an in-process memo cache lets experiments that
share grid points (e.g. E1 and E2) reuse simulations instead of re-running
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.campaign import standard_attack
from repro.core.checker import check_trace
from repro.core.diagnosis import DiagnosisResult, diagnose
from repro.core.verdicts import CheckReport
from repro.sim.engine import RunResult, run_scenario
from repro.sim.scenario import standard_scenarios

__all__ = ["GridRun", "run_grid", "clear_cache"]


@dataclass(slots=True)
class GridRun:
    """One fully scored grid point."""

    scenario: str
    controller: str
    attack: str
    intensity: float
    seed: int
    result: RunResult
    report: CheckReport
    diagnosis: DiagnosisResult

    @property
    def onset_latency(self) -> float | None:
        onset = self.result.trace.attack_onset()
        if onset is None:
            return None
        return self.report.detection_latency(onset)


_CACHE: dict[tuple, GridRun] = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh simulations)."""
    _CACHE.clear()


def _run_one(
    scenario_name: str,
    controller: str,
    attack: str,
    intensity: float,
    seed: int,
    onset: float,
    duration: float | None,
) -> GridRun:
    key = (scenario_name, controller, attack, intensity, seed, onset, duration)
    if key in _CACHE:
        return _CACHE[key]
    scenario = standard_scenarios(seed=seed, duration=duration)[scenario_name]
    campaign = (
        standard_attack(attack, intensity=intensity, onset=onset)
        if attack != "none"
        else standard_attack("none")
    )
    result = run_scenario(scenario, controller=controller, campaign=campaign)
    report = check_trace(result.trace)
    run = GridRun(
        scenario=scenario_name,
        controller=controller,
        attack=attack,
        intensity=intensity,
        seed=seed,
        result=result,
        report=report,
        diagnosis=diagnose(report),
    )
    _CACHE[key] = run
    return run


def run_grid(
    scenarios: tuple[str, ...] | list[str],
    controllers: tuple[str, ...] | list[str],
    attacks: tuple[str, ...] | list[str],
    seeds: tuple[int, ...] | list[int],
    intensity: float = 1.0,
    onset: float = 15.0,
    duration: float | None = None,
) -> list[GridRun]:
    """Run (and score) the full cartesian grid; memoized per process."""
    runs = []
    for scenario in scenarios:
        for controller in controllers:
            for attack in attacks:
                for seed in seeds:
                    runs.append(
                        _run_one(scenario, controller, attack, intensity,
                                 seed, onset, duration)
                    )
    return runs
