"""E8 / Table 5 — assertion-set ablation for diagnosis accuracy.

Re-diagnoses the same attacked traces with growing subsets of the catalog
(behaviour-only, +GPS consistency, +inertial/innovation, full).  Expected
shape: behaviour-only assertions *detect* most attacks but barely
*diagnose* them (every attack looks like "the car left the lane");
each consistency family added disambiguates the attacks on its channel.
"""

from __future__ import annotations

from repro.core.catalog import CATALOG_STAGES, default_catalog
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.knowledge import default_knowledge_base
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_assertion_ablation"]


def build_assertion_ablation(config: ExperimentConfig | None = None,
                             workers: int | None = None) -> Table:
    """Diagnosis accuracy per cumulative catalog stage."""
    config = config or ExperimentConfig.full()
    runs = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )
    kb = default_knowledge_base()

    table = Table(
        title="Table 5 (E8): assertion-set ablation "
              f"(scenario={config.scenario}, {len(runs)} attacked runs)",
        columns=["assertion set", "# assertions", "detected", "top-1", "top-2"],
    )

    active_ids: list[str] = []
    active_stages: list[str] = []
    for stage_name, ids in CATALOG_STAGES.items():
        active_ids.extend(ids)
        active_stages.append(stage_name)
        subset = tuple(active_ids)
        sub_kb = kb.restricted(frozenset(subset))
        detected = top1 = top2 = 0
        for run in runs:
            report = check_trace(run.result.trace, default_catalog(subset))
            onset = run.result.trace.attack_onset()
            det = (onset is not None
                   and report.detection_latency(onset) is not None)
            detected += det
            if not det:
                continue
            result = diagnose(report, sub_kb)
            rank = result.rank_of(run.attack)
            if rank == 1:
                top1 += 1
            if rank is not None and rank <= 2:
                top2 += 1
        n = len(runs)
        table.add_row(
            "+".join(active_stages),
            len(subset),
            f"{detected}/{n}",
            f"{top1}/{n}",
            f"{top2}/{n}",
        )
    table.add_note("stages are cumulative; diagnosis uses the knowledge base "
                   "restricted to the evaluated assertions.")
    return table


def main() -> None:
    print(build_assertion_ablation().render())


if __name__ == "__main__":
    main()
