"""Bench E6 — Figure 3: attack-intensity sweep (detectability vs. harm)."""

from conftest import run_and_print

from repro.experiments import build_intensity_sweep


def test_e6_intensity_sweep(benchmark, quick_config):
    table = run_and_print(benchmark, build_intensity_sweep, quick_config)
    rows = [r for r in table.rows if r[0] == "gps_bias"]
    rates = [int(r[2].split("/")[0]) for r in rows]
    damages = [float(r[4]) for r in rows]
    # Paper-shape claims: detection rate is monotone in intensity and
    # damage grows with intensity.
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert damages[-1] > damages[0]
