"""Elementwise primitives that mirror the serial engine's scalar math.

The batched engine's contract is *bit-exactness*: for every lane, every
recorded float must equal the one the serial :class:`~repro.sim.engine.
SimulationRunner` produces.  That rules out "obvious" vectorizations in a
few places, all concentrated here:

* ``min``/``max``/``_clamp`` — CPython's builtins keep the *first*
  argument on ties and propagate NaN positionally; the ``np.where``
  chains below reproduce those semantics exactly (``np.minimum`` etc. do
  not, and differ on NaN).
* ``math.tan/atan/atan2/hypot`` disagree with their numpy ufunc
  counterparts in the last ulp on this platform (empirically verified),
  so those few call sites go through scalar loops (:func:`map1`/
  :func:`map2`).  ``sin``/``cos``/``sqrt``/``fmod``/``exp-of-scalar``
  *do* match and stay vectorized.
* :func:`normalize_angle` — vectorized ``np.fmod`` matches
  ``math.fmod`` bitwise; the non-finite guard raises like the scalar
  version so a NaN-poisoned lane fails the whole batch exactly where the
  serial run would crash (callers fall back to serial execution).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "clamp",
    "pymax",
    "pymin",
    "normalize_angle",
    "angle_diff",
    "map1",
    "map2",
]

_TWO_PI = 2.0 * math.pi


def clamp(value: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """``lo if v < lo else hi if v > hi else v`` — the engine's _clamp."""
    return np.where(value < lo, lo, np.where(value > hi, hi, value))


def pymax(a: np.ndarray, b) -> np.ndarray:
    """Python's two-argument ``max(a, b)``: ``b if b > a else a``."""
    return np.where(b > a, b, a)


def pymin(a: np.ndarray, b) -> np.ndarray:
    """Python's two-argument ``min(a, b)``: ``b if b < a else a``."""
    return np.where(b < a, b, a)


def normalize_angle(angle: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.geom.angles.normalize_angle` (bit-exact).

    Raises:
        ValueError: if any element is non-finite — the same failure the
            scalar version raises for the offending lane.  Batch callers
            treat this as "this batch contains a lane the serial engine
            would crash on" and fall back to serial execution.
    """
    angle = np.asarray(angle)
    if not np.isfinite(angle).all():
        raise ValueError("cannot normalize non-finite angle in batch")
    wrapped = np.fmod(angle, _TWO_PI)
    return np.where(
        wrapped > math.pi,
        wrapped - _TWO_PI,
        np.where(wrapped <= -math.pi, wrapped + _TWO_PI, wrapped),
    )


def angle_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.geom.angles.angle_diff`."""
    return normalize_angle(a - b)


def map1(fn, a: np.ndarray) -> np.ndarray:
    """Apply a scalar ``math.*`` function per element (libm fidelity)."""
    out = np.empty(len(a))
    for i, v in enumerate(a.tolist()):
        out[i] = fn(v)
    return out


def map2(fn, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two-argument :func:`map1` (``atan2``, ``hypot``)."""
    out = np.empty(len(a))
    bs = np.broadcast_to(b, np.shape(a)).tolist()
    for i, v in enumerate(a.tolist()):
        out[i] = fn(v, bs[i])
    return out
