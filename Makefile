# Development entry points for the ADAssure reproduction.

.PHONY: install test bench bench-compare bench-runner bench-sim bench-distributed bench-probes experiments examples clean

install:
	pip install -e . || pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Benchmark every evaluation artifact and archive the timings under
# .benchmarks/ so bench-compare can diff runs.
bench:
	pytest benchmarks/ --benchmark-only --benchmark-autosave

# Compare the two most recent autosaved benchmark runs.
bench-compare:
	pytest-benchmark compare --group-by name

# Benchmark the grid runner itself (cold serial / cold parallel / warm
# disk cache / warm memo) and write machine-readable BENCH_runner.json.
bench-runner:
	python -m repro.experiments.stats --output BENCH_runner.json

# Benchmark the batched lockstep simulation engine against the serial
# oracle (64 lanes, bit-identity verified) and write BENCH_sim.json.
bench-sim:
	python -m repro.sim.batch --lanes 64 --output BENCH_sim.json

# Benchmark the distributed campaign backend (cold serial / worker fleet
# / chaos pass with the fleet SIGKILLed mid-shard) → BENCH_distributed.json.
bench-distributed:
	python benchmarks/bench_distributed.py --output BENCH_distributed.json

# Benchmark round-batched counterfactual probing and the E10-E13 planner
# sweeps against their serial oracles (bit-identity verified) and write
# BENCH_probes.json.
bench-probes:
	python benchmarks/bench_probes.py --output BENCH_probes.json

# Regenerate every evaluation table/figure at full size (a few minutes).
experiments:
	python -m repro.cli experiment all | tee experiments_full_output.txt

examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; python $$f > /dev/null && echo "   ok"; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
