"""Scenario definitions: route + speed + duration + vehicle/sensor config.

A scenario fixes everything about a run except the controller and the
attack campaign, which the experiment grid varies.  The standard scenarios
mirror the test cases an AV control-algorithm evaluation drives: straight,
constant-radius curve, s-curve, lane change, slalom, and a closed urban
loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.polyline import Polyline
from repro.geom.routes import (
    arc_route,
    lane_change_route,
    s_curve_route,
    slalom_route,
    straight_route,
    urban_loop_route,
)
from repro.sim.lead import LeadVehicleConfig
from repro.sim.sensors.suite import SensorSuiteConfig

__all__ = ["Scenario", "ScenarioOutcome", "standard_scenarios", "acc_scenario"]


@dataclass(frozen=True, slots=True)
class Scenario:
    """A fully specified driving task."""

    name: str
    route: Polyline
    cruise_speed: float = 10.0
    duration: float = 60.0
    dt: float = 0.05
    model: str = "kinematic"
    """Dynamics model: ``kinematic`` or ``dynamic``."""
    seed: int = 0
    sensors: SensorSuiteConfig = field(default_factory=SensorSuiteConfig)
    initial_lateral_offset: float = 0.0
    """Spawn offset left of the route start (tests convergence)."""
    initial_speed: float = 0.0
    lead: LeadVehicleConfig | None = None
    """Optional lead vehicle (enables the radar + ACC car-following path)."""

    def __post_init__(self) -> None:
        if self.cruise_speed <= 0:
            raise ValueError("cruise_speed must be positive")
        if self.duration <= 0 or self.dt <= 0:
            raise ValueError("duration and dt must be positive")
        if self.dt > 0.2:
            raise ValueError("dt above 0.2 s destabilizes the control loop")

    @property
    def num_steps(self) -> int:
        return int(round(self.duration / self.dt))

    def with_seed(self, seed: int) -> "Scenario":
        import dataclasses

        return dataclasses.replace(self, seed=seed)


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """Qualitative outcome labels computed by the engine."""

    completed: bool
    """The run executed its full duration."""
    diverged: bool
    """Ground-truth cross-track error exceeded the divergence bound."""
    divergence_time: float | None


def standard_scenarios(seed: int = 0, duration: float | None = None) -> dict[str, Scenario]:
    """The six standard scenarios, keyed by name.

    Args:
        seed: base seed stamped into every scenario.
        duration: optionally override every scenario's duration (the
            experiment harness shortens runs for quick modes).
    """

    def make(name: str, route: Polyline, cruise: float, dur: float) -> Scenario:
        return Scenario(
            name=name,
            route=route,
            cruise_speed=cruise,
            duration=duration if duration is not None else dur,
            seed=seed,
        )

    return {
        "straight": make("straight", straight_route(length=400.0), 10.0, 45.0),
        "curve": make("curve", arc_route(radius=40.0, lead_in=40.0), 8.0, 45.0),
        "s_curve": make("s_curve", s_curve_route(length=300.0), 8.0, 50.0),
        "lane_change": make(
            "lane_change", lane_change_route(approach=80.0, tail=120.0), 10.0, 35.0
        ),
        "slalom": make("slalom", slalom_route(num_gates=8), 7.0, 45.0),
        "urban_loop": make("urban_loop", urban_loop_route(), 8.0, 60.0),
    }


def acc_scenario(seed: int = 0, duration: float = 55.0,
                 lead: LeadVehicleConfig | None = None) -> Scenario:
    """The car-following scenario: long straight with a slowing lead.

    Used by the ACC-debugging experiment (E12) and the radar-attack tests.
    """
    return Scenario(
        name="acc_follow",
        route=straight_route(length=380.0),
        cruise_speed=12.0,
        duration=duration,
        seed=seed,
        lead=lead or LeadVehicleConfig.slowdown(),
    )
