"""Bench — vectorized offline checker vs the per-step oracle.

Times the vectorized engine on a small simulated campaign and *fails* if
its verdicts drift from the per-step engine's — this is the CI tripwire
for checker-equivalence regressions.  Full measurements (including the
binary-vs-JSONL payload comparison) are produced by
``python -m repro.core.checker``, which writes ``BENCH_checker.json``.
"""

import pytest

from repro.attacks.campaign import standard_attack
from repro.core.checker import check_trace
from repro.sim.engine import run_scenario
from repro.sim.scenario import standard_scenarios


@pytest.fixture(scope="module")
def campaign_traces(quick_config):
    traces = []
    for attack in ("none", "gps_bias", "gps_freeze", "radar_scale"):
        scenario = standard_scenarios(
            seed=7, duration=quick_config.duration)[quick_config.scenario]
        campaign = (standard_attack(attack, onset=quick_config.attack_onset)
                    if attack != "none" else None)
        trace = run_scenario(scenario, controller="pure_pursuit",
                             campaign=campaign).trace
        trace.columns()  # checker input is the columnar view
        traces.append(trace)
    return traces


def test_checker_vectorized(benchmark, campaign_traces):
    reports = benchmark.pedantic(
        lambda: [check_trace(t, engine="vector") for t in campaign_traces],
        rounds=1, iterations=1)
    # Equivalence drift fails the suite — the speedup is worthless if the
    # two engines stop agreeing.
    for trace, vectorized in zip(campaign_traces, reports):
        oracle = check_trace(trace, engine="step")
        assert vectorized.summaries == oracle.summaries, trace.meta.attack
        assert vectorized.violations == oracle.violations, trace.meta.attack
        assert vectorized.duration == oracle.duration


def test_checker_step_oracle(benchmark, campaign_traces):
    reports = benchmark.pedantic(
        lambda: [check_trace(t, engine="step") for t in campaign_traces],
        rounds=1, iterations=1)
    assert any(r.any_fired for r in reports)  # the attacks are not invisible
