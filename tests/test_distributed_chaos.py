"""Chaos suite for the distributed campaign backend.

Injects the failures the lease/heartbeat/commit ordering exists to
survive — SIGKILLed workers, stale and stolen leases, torn board and
done-marker writes, clock-skewed heartbeats — and asserts the two
invariants the design guarantees:

* **convergence**: the campaign always finishes, and its verdict set is
  dict-equal to a single-host serial run;
* **exactly-once**: every grid point ends up as exactly one cache entry,
  no matter how many claimants executed it.

Worker deaths are deterministic, not timing races: the
``ADASSURE_CHAOS_KILL_AFTER=N`` hook SIGKILLs a worker right after its
N-th result commit — *between* the commit and the shard bookkeeping,
the exact window crash-exact resume covers.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.experiments import runner
from repro.experiments.cache import RunCache, cache_key
from repro.experiments.distributed import (
    GridSpec,
    ShardBoard,
    lease_health,
    run_worker,
)
from repro.experiments.runner import clear_cache, run_grid
from repro.experiments.stats import STATS

GRID = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("none", "gps_bias"), seeds=(1, 7),
            onset=5.0, duration=6.0)

_REAL_EXECUTE = runner._execute_point


def _spec(shard_points):
    return GridSpec.build(
        scenarios=GRID["scenarios"], controllers=GRID["controllers"],
        attacks=GRID["attacks"], seeds=GRID["seeds"], intensity=1.0,
        onset=GRID["onset"], duration=GRID["duration"],
        shard_points=shard_points)


def _verdict_set(runs):
    """Campaign verdicts keyed by grid point — the dict the differential
    assertions compare."""
    return {
        (r.scenario, r.controller, r.attack, r.intensity, r.seed): (
            tuple(r.report.fired_ids),
            r.diagnosis.top_k(1)[0] if r.diagnosis.ranking else None,
            len(r.result.trace.records),
        )
        for r in runs
    }


def _spawn_worker(spec_path, cache_dir, worker_id, *, kill_after=None,
                  ttl=1.0):
    env = os.environ.copy()
    env["ADASSURE_CACHE_DIR"] = str(cache_dir)
    env["ADASSURE_CACHE"] = "1"
    env["ADASSURE_WORKERS"] = "1"
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if kill_after is not None:
        env["ADASSURE_CHAOS_KILL_AFTER"] = str(kill_after)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker",
         "--grid-file", str(spec_path), "--worker-id", worker_id,
         "--lease-ttl", str(ttl), "--max-wait", "30"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADASSURE_CACHE", raising=False)
    monkeypatch.delenv("ADASSURE_CHAOS_KILL_AFTER", raising=False)
    clear_cache()
    yield tmp_path
    clear_cache()


@pytest.fixture(scope="module")
def serial_verdicts(tmp_path_factory):
    """Ground truth: the same campaign run single-host serial."""
    ref_dir = tmp_path_factory.mktemp("serial-ref")
    old = os.environ.get("ADASSURE_CACHE_DIR")
    os.environ["ADASSURE_CACHE_DIR"] = str(ref_dir)
    clear_cache()
    try:
        runs = run_grid(workers=1, executor="serial", **GRID)
        return _verdict_set(runs)
    finally:
        clear_cache()
        if old is None:
            os.environ.pop("ADASSURE_CACHE_DIR", None)
        else:
            os.environ["ADASSURE_CACHE_DIR"] = old


def _resume_and_verify(cache_dir, serial_verdicts, n_points=4):
    """Load the campaign back (disk hits only) and check both invariants."""
    clear_cache()  # memo only — verdicts must come from the shared store
    runs = run_grid(workers=1, executor="serial", **GRID)
    assert STATS.last.executed == 0, "resume re-executed committed points"
    assert _verdict_set(runs) == serial_verdicts
    assert RunCache().stats()["entries"] == n_points  # exactly once
    return runs


class TestSigkilledWorker:
    def test_shard_reclaimed_and_campaign_converges(
            self, cache_dir, serial_verdicts):
        spec = _spec(shard_points=2)
        spec_path = spec.save(RunCache())

        # The victim dies via SIGKILL right after its first result commit
        # — after the cache write, before any shard bookkeeping.
        victim = _spawn_worker(spec_path, cache_dir, "victim",
                               kill_after=1, ttl=1.0)
        victim.wait(timeout=120)
        assert victim.returncode == -9  # actually SIGKILLed, not exited

        cache = RunCache()
        board = ShardBoard(cache, spec)
        assert not board.all_done()  # it died owning an unfinished shard
        committed = [p for p in spec.points()
                     if cache.contains(cache_key(*p, catalog=spec.catalog))]
        assert len(committed) == 1  # the one commit before the kill

        # A survivor joins: the victim's lease goes stale after the TTL,
        # the shard is reclaimed, and only the missing points re-run.
        report = run_worker(spec, worker_id="survivor", ttl=1.0,
                            max_wait_s=60.0)
        assert board.all_done()
        assert report.shards_reclaimed >= 1
        assert report.points_skipped == 1  # the victim's commit survived
        assert report.points_executed == 3
        assert report.stale_breaks >= 1  # it broke the corpse's lease

        _resume_and_verify(cache_dir, serial_verdicts)

    def test_kill_between_commit_and_done_marker_is_lossless(
            self, cache_dir, serial_verdicts):
        # Kill after the *second* commit: the victim dies with its whole
        # shard committed but the done marker unwritten — the narrowest
        # window between result durability and bookkeeping.
        spec = _spec(shard_points=2)
        spec_path = spec.save(RunCache())
        victim = _spawn_worker(spec_path, cache_dir, "victim",
                               kill_after=2, ttl=1.0)
        victim.wait(timeout=120)
        assert victim.returncode == -9

        cache = RunCache()
        board = ShardBoard(cache, spec)
        assert not board.all_done()  # bookkeeping lost...
        committed = [p for p in spec.points()
                     if cache.contains(cache_key(*p, catalog=spec.catalog))]
        assert len(committed) == 2  # ...but no result was

        report = run_worker(spec, worker_id="survivor", ttl=1.0,
                            max_wait_s=60.0)
        assert board.all_done()
        assert report.points_skipped == 2  # nothing re-ran, nothing lost
        assert report.points_executed == 2
        _resume_and_verify(cache_dir, serial_verdicts)


class TestDuplicateClaimants:
    def test_stolen_lease_is_reported_not_corrupting(
            self, cache_dir, serial_verdicts, monkeypatch):
        spec = _spec(shard_points=4)  # one shard holds the whole grid
        board = ShardBoard(RunCache(), spec)
        stolen = {"done": False}

        def steal_mid_shard(point):
            if not stolen["done"]:
                stolen["done"] = True
                # A duplicate claimant (force-broken lease / wild clock
                # skew) overwrites the lease while we are mid-shard.
                board.lease_path(0).write_text(json.dumps(
                    {"owner": "thief", "heartbeat": time.time()}))
            return _REAL_EXECUTE(point)

        monkeypatch.setattr(runner, "_execute_point", steal_mid_shard)
        report = run_worker(spec, worker_id="loser", ttl=30.0)
        assert report.lease_conflicts == 1  # loudly reported
        assert report.points_executed == 4  # the work still completed
        health = lease_health(RunCache())
        assert health["lease_conflicts"] >= 1  # durable event trail

        monkeypatch.setattr(runner, "_execute_point", _REAL_EXECUTE)
        _resume_and_verify(cache_dir, serial_verdicts)

    def test_double_execution_commits_identical_bytes(self, cache_dir):
        # Two claimants execute the same point: the content-addressed
        # commit collapses them to one entry with identical payloads.
        spec = _spec(shard_points=4)
        point = spec.points()[0]
        cache = RunCache()
        key = cache_key(*point, catalog=spec.catalog)
        _, run_a, _ = runner._execute_point(point)
        cache.store(key, run_a.result, run_a.report, run_a.diagnosis)
        first = cache._trace_path(key).read_bytes()
        _, run_b, _ = runner._execute_point(point)
        cache.store(key, run_b.result, run_b.report, run_b.diagnosis)
        assert cache._trace_path(key).read_bytes() == first
        assert cache.stats()["entries"] == 1


class TestTornWrites:
    def test_torn_board_and_done_marker_recovered(
            self, cache_dir, serial_verdicts):
        spec = _spec(shard_points=2)
        board = ShardBoard(RunCache(), spec)
        board.dir.mkdir(parents=True, exist_ok=True)
        board.board_path.write_text('{"grid_id": "torn')  # torn board
        board.done_path(1).write_text('{"grid_id"')       # torn done marker

        report = run_worker(spec, worker_id="repair", ttl=30.0)
        assert board.all_done()  # torn records classified as "not done"
        assert report.shards_claimed == 2
        payload = json.loads(board.board_path.read_text())
        assert payload["grid_id"] == spec.grid_id  # board repaired
        _resume_and_verify(cache_dir, serial_verdicts)


class TestClockSkew:
    def test_future_heartbeat_is_stale_and_reclaimable(self, cache_dir):
        spec = _spec(shard_points=2)
        board = ShardBoard(RunCache(), spec)
        board.ensure()
        # A claimant with a clock a day fast: trusting its heartbeat
        # would lock the shard until tomorrow.
        board.lease_path(0).write_text(json.dumps(
            {"owner": "delorean", "heartbeat": time.time() + 86400.0}))
        lease = board.claim(0, ttl=5.0, owner_hint="survivor")
        assert lease is not None
        assert lease.stale_breaks == 1
        lease.release()


class TestFleetWipeout:
    def test_whole_fleet_killed_campaign_still_converges(
            self, cache_dir, serial_verdicts, monkeypatch):
        # Every worker dies after one commit; the coordinator detects the
        # dead fleet and finishes the campaign with its in-process serial
        # fallback.  The verdict set must still be dict-equal to serial.
        monkeypatch.setenv("ADASSURE_CHAOS_KILL_AFTER", "1")
        STATS.reset()
        runs = run_grid(executor="distributed", dist_workers=2,
                        shard_points=1, **GRID)
        assert len(runs) == 4
        assert _verdict_set(runs) == serial_verdicts
        stats = STATS.last
        assert stats.executor == "distributed"
        assert stats.dist_points >= 1   # the fleet's commits were adopted
        assert stats.executed >= 1      # the fallback finished the rest
        assert stats.dist_points + stats.executed == 4
        assert RunCache().stats()["entries"] == 4  # exactly once

        monkeypatch.delenv("ADASSURE_CHAOS_KILL_AFTER")
        _resume_and_verify(cache_dir, serial_verdicts)
