"""Integration tests for the experiment builders (quick config).

These run real (reduced) simulation grids, so they are the slowest tests
in the suite; the in-process run cache keeps the total manageable because
all builders share grid points.
"""

import pytest

from repro.core.catalog import CATALOG_STAGES
from repro.experiments import (
    ExperimentConfig,
    build_anomaly_traces,
    build_assertion_ablation,
    build_detection_matrix,
    build_diagnosis_accuracy,
    build_intensity_sweep,
    build_latency_table,
    build_monitor_overhead,
    build_refinement_loop,
    build_controller_robustness,
)
from repro.experiments.config import STANDARD_ATTACKS


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


class TestE1Detection:
    def test_matrix_shape_and_claims(self, config):
        table = build_detection_matrix(config)
        attacks = table.column_values("attack")
        assert attacks[0] == "none"
        assert set(STANDARD_ATTACKS) <= set(attacks)
        detected = dict(zip(attacks, table.column_values("detected")))
        # Headline claim: no false positives, every attack detected.
        assert detected["none"].startswith("0/")
        for attack in STANDARD_ATTACKS:
            n = detected[attack].split("/")[1]
            assert detected[attack] == f"{n}/{n}"


class TestE2Latency:
    def test_consistency_beats_behaviour_for_gps_bias(self, config):
        table = build_latency_table(config)
        rows = {r[0]: r for r in table.rows}
        row = rows["gps_bias"]
        consistency = float(row[2])
        behaviour = float(row[3]) if row[3] != "-" else float("inf")
        assert consistency <= behaviour


class TestE3Traces:
    def test_attacked_exceeds_nominal_after_onset(self, config):
        tables = build_anomaly_traces(config)
        assert len(tables) == len(config.trace_scenarios)
        table = tables[0]
        # Compare last sampled row: attacked |cte| > nominal |cte| for the
        # first controller.
        last = table.rows[-1]
        nominal, attacked = last[1], last[2]
        if nominal != "-" and attacked != "-":
            assert float(attacked) > float(nominal)


class TestE4Diagnosis:
    def test_total_accuracy_high(self, config):
        table = build_diagnosis_accuracy(config)
        total_row = table.rows[-1]
        assert total_row[0] == "TOTAL"
        top1_num, top1_den = total_row[2].split()[0].split("/")
        assert int(top1_num) / int(top1_den) >= 0.7


class TestE5Robustness:
    def test_covers_grid(self, config):
        table = build_controller_robustness(config)
        n_expected = (len(STANDARD_ATTACKS) + 1) * len(config.controllers)
        assert len(table.rows) == n_expected

    def test_nominal_rows_clean(self, config):
        table = build_controller_robustness(config)
        for row in table.rows:
            if row[0] == "none":
                assert float(row[2]) < 1.0  # max|cte| under a meter


class TestE6Sweep:
    def test_detection_rate_monotone_nondecreasing(self, config):
        table = build_intensity_sweep(config)
        rates = [int(r[2].split("/")[0]) for r in table.rows
                 if r[0] == "gps_bias"]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_damage_grows_with_intensity(self, config):
        table = build_intensity_sweep(config)
        damage = [float(r[4]) for r in table.rows if r[0] == "gps_bias"]
        assert damage[-1] > damage[0]


class TestE7Overhead:
    def test_overhead_small_and_reported(self, config):
        table = build_monitor_overhead(config)
        assert len(table.rows) >= 4
        # Full catalog stays below 20% of the 50 ms control period.
        pct = float(table.rows[-1][2])
        assert pct < 20.0


class TestE8Ablation:
    def test_accuracy_improves_with_stages(self, config):
        table = build_assertion_ablation(config)
        top1 = [int(r[3].split("/")[0]) for r in table.rows]
        assert top1[-1] >= top1[0]
        assert len(table.rows) == len(CATALOG_STAGES)


class TestE9Refinement:
    def test_undiagnosed_monotone_decrease(self, config):
        table = build_refinement_loop(config)
        undiagnosed = [int(r[4]) for r in table.rows]
        assert all(b <= a for a, b in zip(undiagnosed, undiagnosed[1:]))
        assert undiagnosed[-1] <= undiagnosed[0]
