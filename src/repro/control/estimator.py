"""EKF localization: the attack surface of the control stack.

State: ``[x, y, yaw, v]``.  Prediction integrates the IMU (yaw rate +
longitudinal acceleration); updates fuse GPS position, compass heading and
wheel-speed odometry.  The filter reports per-channel *normalized
innovation squared* (NIS) values, which the A9 innovation-bound assertion
monitors — a textbook fault-detection residual that spoofing attacks
inflate long before the vehicle visibly deviates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geom.angles import angle_diff, normalize_angle
from repro.geom.vec import Pose, Vec2

__all__ = ["EkfConfig", "Estimate", "Ekf"]


@dataclass(frozen=True, slots=True)
class EkfConfig:
    """Process/measurement noise configuration of the EKF."""

    sigma_gps: float = 0.5
    """GPS position measurement std per axis, meters."""
    sigma_compass: float = 0.02
    """Compass heading measurement std, rad."""
    sigma_speed: float = 0.1
    """Wheel-speed measurement std, m/s."""
    q_pos: float = 0.05
    """Process noise density on position, m^2/s."""
    q_yaw: float = 0.01
    """Process noise density on yaw, rad^2/s."""
    q_v: float = 0.5
    """Process noise density on speed, (m/s)^2/s."""
    p0_pos: float = 4.0
    p0_yaw: float = 0.5
    p0_v: float = 1.0
    gate_nis: float | None = None
    """Innovation gate: measurements whose NIS exceeds this chi-square
    threshold are *rejected* (state untouched, NIS still reported).  This
    is the classic spoofing mitigation the ADAssure diagnosis motivates;
    ``None`` disables gating (the default, and the configuration under
    debug in the main evaluation).  Typical values: 13.8 (2 dof, p=0.001)
    for GPS, applied to all channels here for simplicity."""

    def __post_init__(self) -> None:
        values = (
            self.sigma_gps, self.sigma_compass, self.sigma_speed,
            self.q_pos, self.q_yaw, self.q_v,
            self.p0_pos, self.p0_yaw, self.p0_v,
        )
        if min(values) <= 0:
            raise ValueError("all EKF noise parameters must be positive")
        if self.gate_nis is not None and self.gate_nis <= 0:
            raise ValueError("gate_nis must be positive (or None)")


@dataclass(frozen=True, slots=True)
class Estimate:
    """EKF output consumed by the controller and recorded in the trace."""

    x: float
    y: float
    yaw: float
    v: float
    cov_trace: float
    nis_gps: float
    nis_speed: float
    nis_compass: float

    @property
    def pose(self) -> Pose:
        return Pose(Vec2(self.x, self.y), self.yaw)


class Ekf:
    """Extended Kalman filter over ``[x, y, yaw, v]``.

    The NIS attributes hold the most recent value per channel (zero until
    the first update of that channel).
    """

    def __init__(self, config: EkfConfig | None = None):
        self.config = config or EkfConfig()
        self._x = np.zeros(4)
        self._p = np.diag([
            self.config.p0_pos, self.config.p0_pos,
            self.config.p0_yaw, self.config.p0_v,
        ])
        self._nis_gps = 0.0
        self._nis_speed = 0.0
        self._nis_compass = 0.0

    def reset(self, x: float, y: float, yaw: float, v: float = 0.0) -> None:
        """Initialize the state (scenario start pose)."""
        self._x = np.array([x, y, normalize_angle(yaw), v], dtype=float)
        self._p = np.diag([
            self.config.p0_pos, self.config.p0_pos,
            self.config.p0_yaw, self.config.p0_v,
        ])
        self._nis_gps = self._nis_speed = self._nis_compass = 0.0

    # ------------------------------------------------------------------
    # Predict
    # ------------------------------------------------------------------
    def predict(self, yaw_rate: float, accel: float, dt: float) -> None:
        """Propagate the state with IMU inputs over ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        x, y, yaw, v = self._x
        cos_y, sin_y = np.cos(yaw), np.sin(yaw)
        self._x = np.array([
            x + v * cos_y * dt,
            y + v * sin_y * dt,
            normalize_angle(yaw + yaw_rate * dt),
            max(v + accel * dt, 0.0),
        ])
        f = np.eye(4)
        f[0, 2] = -v * sin_y * dt
        f[0, 3] = cos_y * dt
        f[1, 2] = v * cos_y * dt
        f[1, 3] = sin_y * dt
        cfg = self.config
        q = np.diag([cfg.q_pos, cfg.q_pos, cfg.q_yaw, cfg.q_v]) * dt
        self._p = f @ self._p @ f.T + q

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_gps(self, gx: float, gy: float) -> float:
        """Fuse a GPS fix; returns the NIS of the innovation."""
        h = np.zeros((2, 4))
        h[0, 0] = 1.0
        h[1, 1] = 1.0
        r = np.eye(2) * self.config.sigma_gps**2
        innov = np.array([gx, gy]) - h @ self._x
        self._nis_gps = self._update(h, r, innov)
        return self._nis_gps

    def update_speed(self, speed: float) -> float:
        """Fuse a wheel-speed reading; returns the NIS."""
        h = np.zeros((1, 4))
        h[0, 3] = 1.0
        r = np.array([[self.config.sigma_speed**2]])
        innov = np.array([speed - self._x[3]])
        self._nis_speed = self._update(h, r, innov)
        return self._nis_speed

    def update_compass(self, yaw: float) -> float:
        """Fuse an absolute heading (angle-aware innovation); returns NIS."""
        h = np.zeros((1, 4))
        h[0, 2] = 1.0
        r = np.array([[self.config.sigma_compass**2]])
        innov = np.array([angle_diff(yaw, float(self._x[2]))])
        self._nis_compass = self._update(h, r, innov)
        self._x[2] = normalize_angle(float(self._x[2]))
        return self._nis_compass

    def _update(self, h: np.ndarray, r: np.ndarray, innov: np.ndarray) -> float:
        s = h @ self._p @ h.T + r
        s_inv = np.linalg.inv(s)
        nis = float(innov @ s_inv @ innov)
        gate = self.config.gate_nis
        if gate is not None and nis > gate:
            # Measurement rejected: the filter coasts on its prediction.
            # The NIS is still reported so monitors see the anomaly.
            return nis
        k = self._p @ h.T @ s_inv
        self._x = self._x + k @ innov
        # Any update can drag v below zero through the cross-covariance;
        # the vehicle cannot reverse in this model.
        self._x[3] = max(self._x[3], 0.0)
        i_kh = np.eye(4) - k @ h
        # Joseph form keeps P symmetric positive definite.
        self._p = i_kh @ self._p @ i_kh.T + k @ r @ k.T
        return nis

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> Estimate:
        return Estimate(
            x=float(self._x[0]),
            y=float(self._x[1]),
            yaw=normalize_angle(float(self._x[2])),
            v=float(self._x[3]),
            cov_trace=float(np.trace(self._p)),
            nis_gps=self._nis_gps,
            nis_speed=self._nis_speed,
            nis_compass=self._nis_compass,
        )

    @property
    def covariance(self) -> np.ndarray:
        return self._p.copy()
