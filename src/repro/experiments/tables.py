"""Plain-text table rendering shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table"]


@dataclass(slots=True)
class Table:
    """A titled table with aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column_values(self, name: str) -> list[str]:
        """All cells of one column (for tests and post-processing)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
