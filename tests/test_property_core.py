"""Property-based tests over the assertion machinery.

Hypothesis generates randomized (but physically plausible) trace mutations
and checks the invariants the rest of the system relies on: episode
well-formedness, online/offline equality, evidence bounds, and diagnosis
totality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.dsl import BoundAssertion
from repro.core.knowledge import default_knowledge_base
from repro.core.monitor import OnlineMonitor

from conftest import make_record, make_trace

# A compact encoding of "what goes wrong when": a list of (start, length,
# channel value) perturbation segments over a 200-step trace.
segments = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=180),
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    ),
    min_size=0,
    max_size=4,
)

perturbable = st.sampled_from([
    "cte_true", "nis_gps", "steer_cmd", "odom_speed", "imu_yaw_rate",
])


def perturbed_trace(channel, segs):
    def mutate(step, record):
        for start, length, value in segs:
            if start <= step < start + length:
                return record.replace(**{channel: value})
        return record

    return make_trace(200, mutate=mutate)


class TestEpisodeInvariants:
    @settings(max_examples=50, deadline=None)
    @given(segs=segments)
    def test_episodes_well_formed(self, segs):
        trace = perturbed_trace("cte_true", segs)
        assertion = BoundAssertion("T", "t", channel="cte_true", bound=2.0,
                                   debounce_on=2, debounce_off=4)
        report = check_trace(trace, [assertion])
        violations = report.violations
        for v in violations:
            assert v.t_end >= v.t_start
            assert v.worst_margin < 0
        for a, b in zip(violations, violations[1:]):
            assert a.t_end <= b.t_start
        summary = report.summaries["T"]
        assert summary.fired == bool(violations)
        assert summary.episodes == len(violations)

    @settings(max_examples=25, deadline=None)
    @given(channel=perturbable, segs=segments)
    def test_online_equals_offline(self, channel, segs):
        trace = perturbed_trace(channel, segs)
        offline = check_trace(trace, default_catalog())
        monitor = OnlineMonitor(default_catalog())
        monitor.feed_all(trace)
        online = monitor.finish(trace)
        assert offline.fired_ids == online.fired_ids
        assert offline.violations == online.violations

    @settings(max_examples=25, deadline=None)
    @given(channel=perturbable, segs=segments)
    def test_evidence_bounded(self, channel, segs):
        trace = perturbed_trace(channel, segs)
        report = check_trace(trace, default_catalog())
        for strength in report.evidence().values():
            assert 0.0 <= strength <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(channel=perturbable, segs=segments)
    def test_diagnosis_total_and_normalized(self, channel, segs):
        trace = perturbed_trace(channel, segs)
        result = diagnose(check_trace(trace, default_catalog()))
        assert len(result.ranking) == len(default_knowledge_base().causes)
        assert abs(sum(d.posterior for d in result.ranking) - 1.0) < 1e-6


class TestDeterminismProperty:
    @settings(max_examples=10, deadline=None)
    @given(segs=segments)
    def test_check_is_pure(self, segs):
        trace = perturbed_trace("cte_true", segs)
        r1 = check_trace(trace, default_catalog())
        r2 = check_trace(trace, default_catalog())
        assert r1.fired_ids == r2.fired_ids
        assert r1.violations == r2.violations
