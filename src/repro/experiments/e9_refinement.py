"""E9 / Figure 5 — the methodology refinement loop converges.

Runs the staged catalog over an anomaly corpus (every attack class, several
seeds) and reports, per refinement iteration, how many anomalies remain
undetected or undiagnosed.  Expected shape: a monotone decrease — each
stage of assertions authored in response to gaps closes them.
"""

from __future__ import annotations

from repro.core.methodology import AnomalyCase, RefinementLoop
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_refinement_loop"]


def build_refinement_loop(config: ExperimentConfig | None = None,
                          workers: int | None = None) -> Table:
    """Gap counts per methodology iteration (staged catalog growth)."""
    config = config or ExperimentConfig.full()
    runs = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )
    corpus = [AnomalyCase(trace=r.result.trace, true_cause=r.attack)
              for r in runs]
    iterations = RefinementLoop(corpus).run()

    table = Table(
        title="Figure 5 (E9): methodology refinement loop "
              f"({len(corpus)} anomaly cases, scenario={config.scenario})",
        columns=["iteration", "stage added", "# assertions", "undetected",
                 "undiagnosed", "diagnosed", "ambiguous"],
    )
    for i, iteration in enumerate(iterations, start=1):
        ambiguous = sum(1 for g in iteration.gaps if g.ambiguous)
        table.add_row(
            i,
            iteration.stage_names[-1],
            len(iteration.assertion_ids),
            iteration.undetected,
            iteration.undiagnosed,
            f"{iteration.diagnosed}/{iteration.total}",
            ambiguous,
        )
    table.add_note("undiagnosed = undetected OR wrongly ranked root cause; "
                   "stages accumulate left to right.")
    return table


def main() -> None:
    print(build_refinement_loop().render())


if __name__ == "__main__":
    main()
