"""Offline trace checker: the post-hoc debugging entry point."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.catalog import default_catalog
from repro.core.dsl import TraceAssertion
from repro.core.monitor import OnlineMonitor
from repro.core.verdicts import CheckReport
from repro.trace.schema import Trace

__all__ = ["check_trace"]


def check_trace(
    trace: Trace, assertions: Sequence[TraceAssertion] | None = None
) -> CheckReport:
    """Evaluate assertions over a recorded trace.

    Args:
        trace: a recorded run (live, or loaded via :mod:`repro.trace.io`).
        assertions: the assertion set (default: the full built-in catalog).
            Instances are reset before use, so a list can be reused across
            calls.

    Returns:
        A :class:`~repro.core.verdicts.CheckReport` with every violation
        episode and per-assertion summaries.
    """
    if assertions is None:
        assertions = default_catalog()
    monitor = OnlineMonitor(assertions)
    monitor.feed_all(trace)
    return monitor.finish(trace)
