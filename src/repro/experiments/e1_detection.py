"""E1 / Table 1 — assertion catalog detection matrix.

For each standard attack class, which assertions fire?  The paper's
headline qualitative claim: every attack class is caught by at least one
assertion, and the consistency family localizes the lying channel while
the behaviour family only reports that *something* went wrong.
"""

from __future__ import annotations

from repro.core.catalog import CATALOG_IDS
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_detection_matrix"]


def build_detection_matrix(config: ExperimentConfig | None = None,
                           workers: int | None = None) -> Table:
    """Attack-class (rows) x assertion (columns) firing matrix.

    A cell shows the fraction of seeds in which the assertion fired after
    attack onset ('.' = never, 'X' = always).
    """
    config = config or ExperimentConfig.full()
    runs = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=("none",) + tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )

    table = Table(
        title="Table 1 (E1): detection matrix — which assertions fire per attack "
              f"(scenario={config.scenario}, controller=pure_pursuit, "
              f"{len(config.seeds)} seed(s))",
        columns=["attack", "detected"] + list(CATALOG_IDS),
    )
    by_attack: dict[str, list] = {}
    for run in runs:
        by_attack.setdefault(run.attack, []).append(run)

    for attack in ("none",) + tuple(config.attacks):
        group = by_attack[attack]
        detected = 0
        fire_counts = {aid: 0 for aid in CATALOG_IDS}
        for run in group:
            onset = run.result.trace.attack_onset()
            if attack == "none":
                if run.report.any_fired:
                    detected += 1
                for aid in run.report.fired_ids:
                    fire_counts[aid] += 1
            else:
                if onset is not None and run.report.detection_latency(onset) is not None:
                    detected += 1
                for aid in CATALOG_IDS:
                    if onset is not None and (
                        run.report.detection_latency(onset, aid) is not None
                    ):
                        fire_counts[aid] += 1
        n = len(group)
        cells = []
        for aid in CATALOG_IDS:
            frac = fire_counts[aid] / n
            cells.append("X" if frac == 1.0 else "." if frac == 0.0 else f"{frac:.1f}")
        table.add_row(attack, f"{detected}/{n}", *cells)

    table.add_note("X = fired for every seed, . = never fired; "
                   "fractions are per-seed firing rates after attack onset.")
    table.add_note("'none' row shows false positives over the full run.")
    return table


def main() -> None:
    print(build_detection_matrix().render())


if __name__ == "__main__":
    main()
