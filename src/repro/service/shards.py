"""Worker-process shards the server scores verdicts on.

Verdict scoring — the vectorized :func:`~repro.core.checker.check_trace`
plus diagnosis over a whole session trace — is the service's only
CPU-heavy step, so it must not run on the event loop.  A
:class:`ShardPool` owns N single-process ``ProcessPoolExecutor`` shards;
sessions hash onto a shard, so one vehicle's verdicts are serialized
(no ordering surprises) while the fleet's spread across cores.

The robustness contract: **a dead shard loses no session**.  All session
state lives server-side (the record log and its checkpoint); a shard
holds a verdict computation for milliseconds.  When a shard's worker is
killed (OOM, crash, the chaos suite's ``SIGKILL``), the submit fails
with ``BrokenProcessPool``; the pool marks the shard dead, respawns it,
and transparently re-dispatches the computation — first to the respawned
shard, then, if that also fails, inline in the server process.  The
failure is counted (``shard_failures`` / ``reassignments``), never
surfaced to the client as anything but a slightly slower verdict.

``shards=0`` disables worker processes entirely (inline scoring on the
event-loop thread) — the mode tests and single-core hosts use.
"""

from __future__ import annotations

import asyncio
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.service.session import score_trace_bytes

__all__ = ["ShardPool"]


class _Shard:
    """One worker process (lazily spawned)."""

    __slots__ = ("index", "pool", "respawns")

    def __init__(self, index: int):
        self.index = index
        self.pool: ProcessPoolExecutor | None = None
        self.respawns = 0

    def ensure(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=1)
        return self.pool

    def kill_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    def worker_pids(self) -> list[int]:
        """PIDs of the shard's live worker processes (chaos hooks)."""
        if self.pool is None:
            return []
        return [p.pid for p in self.pool._processes.values()]


class ShardPool:
    """N single-worker process shards with dead-shard re-dispatch."""

    def __init__(self, n_shards: int = 2):
        self.n_shards = max(int(n_shards), 0)
        self._shards = [_Shard(i) for i in range(self.n_shards)]
        self.scored = 0
        self.scored_inline = 0
        self.shard_failures = 0
        self.reassignments = 0

    @property
    def inline(self) -> bool:
        return self.n_shards == 0

    def shard_for(self, session_id: str) -> int | None:
        # crc32, not hash(): stable across processes and runs, so tests
        # (and operators reading two servers' logs) can predict placement.
        if self.inline:
            return None
        return zlib.crc32(session_id.encode("utf-8")) % self.n_shards

    async def score(self, session_id: str, trace_bytes: bytes) -> dict:
        """Score a session's trace on its shard; survive shard death.

        Escalation ladder: home shard -> respawned home shard -> inline.
        Each rung only engages when the one before died; the result is
        identical on every rung (same pure function, same bytes).
        """
        if self.inline:
            self.scored += 1
            self.scored_inline += 1
            return score_trace_bytes(trace_bytes)
        loop = asyncio.get_running_loop()
        shard = self._shards[self.shard_for(session_id)]
        for attempt in range(2):
            try:
                result = await loop.run_in_executor(
                    shard.ensure(), score_trace_bytes, trace_bytes)
                self.scored += 1
                return result
            except BrokenProcessPool:
                # The worker died mid-flight (killed, OOM, crashed).
                # State is all server-side, so respawn and re-dispatch.
                self.shard_failures += 1
                shard.kill_pool()
                shard.respawns += 1
                if attempt == 0:
                    self.reassignments += 1
        # The shard will not come back (e.g. fork refused under memory
        # pressure): degrade to inline scoring rather than fail the
        # session.
        self.scored += 1
        self.scored_inline += 1
        return score_trace_bytes(trace_bytes)

    # -- chaos / introspection hooks ------------------------------------
    def worker_pids(self) -> list[int]:
        pids: list[int] = []
        for shard in self._shards:
            pids.extend(shard.worker_pids())
        return pids

    def warm(self) -> None:
        """Spawn every shard's worker up front (predictable latency)."""
        for shard in self._shards:
            if not self.inline:
                shard.ensure().submit(int, 0).result()

    def stats(self) -> dict:
        return {
            "shards": self.n_shards,
            "scored": self.scored,
            "scored_inline": self.scored_inline,
            "shard_failures": self.shard_failures,
            "reassignments": self.reassignments,
            "respawns": sum(s.respawns for s in self._shards),
        }

    def shutdown(self) -> None:
        for shard in self._shards:
            shard.kill_pool()
