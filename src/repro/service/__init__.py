"""Streaming trace-monitoring service: fleet-scale online assertion checking.

The paper's online monitor (:class:`repro.core.monitor.OnlineMonitor`)
runs in-process; this package runs it as a *service*.  Vehicles — real or
simulated — stream length-prefixed binary trace chunks over TCP into
per-session incremental monitors; the server applies bounded-queue
backpressure, checkpoints sessions so disconnected clients resume
mid-trace with exactly-once verdict semantics, fans verdict scoring
across a shard of worker processes (and survives a shard dying), and
aggregates fleet-level statistics: per-cause violation rates and
detection-latency percentiles.

Layers:

* :mod:`repro.service.protocol` — the versioned, CRC-guarded wire format;
* :mod:`repro.service.session`  — one vehicle's incremental monitor state;
* :mod:`repro.service.store`    — crash-safe session checkpoints (lease-
  guarded, reusing the campaign manifest machinery);
* :mod:`repro.service.shards`   — the worker-process pool verdicts are
  scored on, with dead-shard reassignment;
* :mod:`repro.service.aggregates` — fleet-level rates and percentiles;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the asyncio
  endpoints behind ``adassure serve`` and ``adassure stream``;
* :mod:`repro.service.loadgen`  — the sessions/sec + p99-latency load
  benchmark (``BENCH_service.json``).

The robustness contract (enforced by ``tests/test_service_chaos.py``):
for every injected failure — client disconnect mid-frame, torn or
duplicated frames, stalled clients hitting backpressure, a killed worker
shard — the server stays up and every completed session's verdict is
byte-identical to offline :func:`repro.core.checker.check_trace` on the
same trace.
"""

from repro.service.aggregates import FleetAggregates
from repro.service.client import (
    StreamOutcome,
    TraceStreamClient,
    fetch_status,
    stream_trace,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Frame,
    FrameType,
    ProtocolError,
    encode_frame,
    read_frame,
)
from repro.service.server import ServerConfig, TraceIngestServer
from repro.service.session import SessionState, score_trace_bytes
from repro.service.shards import ShardPool
from repro.service.store import SessionStore

__all__ = [
    "FleetAggregates",
    "Frame",
    "FrameType",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerConfig",
    "SessionState",
    "SessionStore",
    "ShardPool",
    "StreamOutcome",
    "TraceIngestServer",
    "TraceStreamClient",
    "encode_frame",
    "fetch_status",
    "read_frame",
    "score_trace_bytes",
    "stream_trace",
]
