"""Trace schema: the typed per-step record and the trace container.

Channel naming convention:

* ``true_*``   — simulator ground truth (available in simulation, used by
  behaviour assertions and by experiment scoring);
* ``gps_* / imu_* / odom_* / compass_*`` — raw sensor channels *after*
  attack injection (what the vehicle software actually saw);
* ``est_*``   — state-estimator output (what the controller consumed);
* ``*_cmd``   — controller commands; ``*_applied`` — post-actuator values;
* ``attack_*`` — injection ground-truth labels (never visible to
  assertions; used only for scoring detection/diagnosis experiments).

Sensor channels hold the *latest* reading (zero-order hold) plus a
``*_fresh`` flag marking steps where a new reading arrived.

Storage model: a trace can hold its data as a list of records (the
recorder's natural output), as a set of per-channel numpy arrays (the
columnar form the vectorized checker and the binary ``.npz`` format use),
or both.  :meth:`Trace.columns` materializes the struct-of-arrays view on
demand and caches it (invalidated by :meth:`Trace.append`);
:meth:`Trace.from_columns` builds a trace directly from arrays and only
materializes the per-record view if someone actually iterates it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["TraceRecord", "TraceMeta", "Trace", "TraceColumns"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One simulation step's worth of observations."""

    step: int
    t: float

    # --- ground truth -------------------------------------------------
    true_x: float = 0.0
    true_y: float = 0.0
    true_yaw: float = 0.0
    true_v: float = 0.0
    true_yaw_rate: float = 0.0
    true_accel: float = 0.0
    true_lat_accel: float = 0.0
    cte_true: float = 0.0
    heading_err_true: float = 0.0
    station_true: float = 0.0
    dist_to_goal: float = 0.0

    # --- sensor channels (post-attack, zero-order hold) ---------------
    gps_x: float = 0.0
    gps_y: float = 0.0
    gps_fresh: bool = False
    imu_yaw_rate: float = 0.0
    imu_accel: float = 0.0
    imu_fresh: bool = False
    odom_speed: float = 0.0
    odom_fresh: bool = False
    compass_yaw: float = 0.0
    compass_fresh: bool = False

    # --- radar / lead vehicle (zero when no lead is present) -----------
    radar_range: float = 0.0
    radar_range_rate: float = 0.0
    radar_fresh: bool = False
    lead_present: bool = False
    gap_true: float = 0.0
    """Ground-truth arc-length gap to the lead vehicle, meters."""
    lead_speed: float = 0.0

    # --- estimator output ---------------------------------------------
    est_x: float = 0.0
    est_y: float = 0.0
    est_yaw: float = 0.0
    est_v: float = 0.0
    est_cov_trace: float = 0.0
    nis_gps: float = 0.0
    nis_speed: float = 0.0
    nis_compass: float = 0.0

    # --- controller view ------------------------------------------------
    cte_est: float = 0.0
    heading_err_est: float = 0.0
    station_est: float = 0.0
    target_speed: float = 0.0
    steer_cmd: float = 0.0
    accel_cmd: float = 0.0

    # --- actuation -------------------------------------------------------
    steer_applied: float = 0.0
    accel_applied: float = 0.0

    # --- attack ground truth (scoring only) ------------------------------
    attack_active: bool = False
    attack_name: str = ""
    attack_channel: str = ""

    # --- fault ground truth (scoring only) -------------------------------
    fault_active: bool = False
    fault_name: str = ""
    fault_channel: str = ""

    # --- degradation supervisor telemetry --------------------------------
    supervisor_mode: str = ""
    """``""`` for unsupervised runs; else ``normal`` / ``dead_reckoning``
    / ``safe_stop`` (see :mod:`repro.control.supervisor`)."""
    supervisor_lost: int = 0
    """Number of sensor channels the supervisor's watchdog flags lost."""

    def replace(self, **changes) -> "TraceRecord":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


_FIELD_NAMES = tuple(f.name for f in fields(TraceRecord))
_STRING_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("str", str))
_BOOL_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("bool", bool))
_INT_CHANNELS = frozenset(
    f.name for f in fields(TraceRecord) if f.type in ("int", int))


def _channel_dtype(name: str):
    if name in _STRING_CHANNELS:
        return np.str_
    if name in _BOOL_CHANNELS:
        return np.bool_
    if name in _INT_CHANNELS:
        return np.int64
    return np.float64


class TraceColumns:
    """Read-only struct-of-arrays view of a trace.

    One contiguous numpy array per :class:`TraceRecord` field, accessible
    as attributes (``cols.t``, ``cols.cte_true``, ...) or via :meth:`get`.
    Float channels are ``float64``, flags ``bool``, counters ``int64``,
    labels unicode.  Arrays are marked non-writeable: the view is shared
    between the owning :class:`Trace`, the vectorized checker and the
    binary serializer, so mutating it would corrupt all three.
    """

    __slots__ = ("_arrays", "n")

    def __init__(self, arrays: dict):
        lengths = {a.shape[0] for a in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged trace columns: lengths {sorted(lengths)}")
        self._arrays = arrays
        self.n = lengths.pop() if lengths else 0

    def get(self, name: str) -> np.ndarray:
        if name not in self._arrays:
            raise KeyError(f"unknown trace channel {name!r}")
        return self._arrays[name]

    def __getattr__(self, name: str) -> np.ndarray:
        if name.startswith("_"):  # unpickling probes before slots are set
            raise AttributeError(name)
        try:
            return self._arrays[name]
        except KeyError:
            raise AttributeError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __repr__(self) -> str:
        return f"TraceColumns(n={self.n}, channels={len(self._arrays)})"


@dataclass(slots=True)
class TraceMeta:
    """Run-level metadata attached to a trace."""

    scenario: str = ""
    controller: str = ""
    attack: str = "none"
    seed: int = 0
    dt: float = 0.05
    route_length: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "controller": self.controller,
            "attack": self.attack,
            "seed": self.seed,
            "dt": self.dt,
            "route_length": self.route_length,
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(data: dict) -> "TraceMeta":
        return TraceMeta(
            scenario=data.get("scenario", ""),
            controller=data.get("controller", ""),
            attack=data.get("attack", "none"),
            seed=int(data.get("seed", 0)),
            dt=float(data.get("dt", 0.05)),
            route_length=float(data.get("route_length", 0.0)),
            extra=dict(data.get("extra", {})),
        )


class Trace:
    """An ordered sequence of :class:`TraceRecord` with run metadata.

    Supports list-style access and vectorized column extraction for the
    metric/analysis layer.
    """

    field_names: tuple[str, ...] = _FIELD_NAMES
    string_channels: frozenset[str] = _STRING_CHANNELS
    """Channels holding labels, not numbers (derived from field types)."""
    bool_channels: frozenset[str] = _BOOL_CHANNELS
    int_channels: frozenset[str] = _INT_CHANNELS

    def __init__(self, meta: TraceMeta | None = None,
                 records: Sequence[TraceRecord] | None = None):
        self.meta = meta or TraceMeta()
        self._records: list[TraceRecord] | None = (
            list(records) if records else [])
        self._columns: TraceColumns | None = None

    @classmethod
    def from_columns(cls, meta: TraceMeta | None, arrays: dict) -> "Trace":
        """Build a trace directly from per-channel arrays.

        ``arrays`` must map every :attr:`field_names` entry to a 1-D
        array-like of equal length; dtypes are coerced to the schema's
        (float64 / bool / int64 / unicode).  The per-record view is *not*
        built here — it materializes lazily on first record access, so a
        caller that only needs columnar analysis (the vectorized checker,
        the metrics layer) never pays for 40+ dataclass fields per step.
        """
        missing = [n for n in _FIELD_NAMES if n not in arrays]
        if missing:
            raise ValueError(f"trace columns missing channels: {missing}")
        coerced = {}
        for name in _FIELD_NAMES:
            arr = np.asarray(arrays[name], dtype=_channel_dtype(name))
            if arr.ndim != 1:
                raise ValueError(
                    f"trace column {name!r} must be 1-D, got shape {arr.shape}")
            if arr.flags.writeable:
                arr = arr.copy() if arr is arrays[name] else arr
                arr.flags.writeable = False
            coerced[name] = arr
        trace = cls(meta)
        trace._records = None
        trace._columns = TraceColumns(coerced)
        return trace

    # --- storage management ---------------------------------------------
    def _materialized(self) -> list[TraceRecord]:
        """The per-record view, built from the columns on first demand."""
        if self._records is None:
            cols = self._columns
            # .tolist() converts numpy scalars to exact Python
            # floats/bools/ints/strs, so materialized records compare
            # equal to the originals field for field.
            raw = [cols.get(name).tolist() for name in _FIELD_NAMES]
            self._records = [TraceRecord(*values) for values in zip(*raw)]
        return self._records

    # --- container protocol -------------------------------------------
    def append(self, record: TraceRecord) -> None:
        records = self._materialized()
        if records and record.step <= records[-1].step:
            raise ValueError(
                f"records must have strictly increasing steps "
                f"(got {record.step} after {records[-1].step})"
            )
        records.append(record)
        self._columns = None  # cached columnar view is now stale

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return self._columns.n

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._materialized())

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.meta, self._materialized()[index])
        return self._materialized()[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._materialized())

    @property
    def duration(self) -> float:
        """Time span covered by the trace, seconds."""
        if len(self) < 2:
            return 0.0
        if self._records is not None:
            return self._records[-1].t - self._records[0].t
        t = self._columns.get("t")
        return float(t[-1] - t[0])

    @property
    def dt(self) -> float:
        return self.meta.dt

    # --- column access --------------------------------------------------
    def columns(self) -> TraceColumns:
        """The cached struct-of-arrays view (built on first use).

        Invalidated by :meth:`append`; the returned arrays are
        non-writeable and shared, so treat them as immutable.
        """
        if self._columns is None:
            records = self._records
            arrays = {}
            for name in _FIELD_NAMES:
                arr = np.array([getattr(r, name) for r in records],
                               dtype=_channel_dtype(name))
                arr.flags.writeable = False
                arrays[name] = arr
            self._columns = TraceColumns(arrays)
        return self._columns

    def column(self, name: str) -> np.ndarray:
        """The named channel as a float numpy array (bools become 0/1).

        Served from the cached columnar view; float channels come back as
        the shared non-writeable array, other numeric channels as a float
        copy.
        """
        if name not in _FIELD_NAMES:
            raise KeyError(f"unknown trace channel {name!r}")
        if name in _STRING_CHANNELS:
            raise TypeError(f"channel {name!r} is not numeric; iterate records")
        arr = self.columns().get(name)
        if arr.dtype == np.float64:
            return arr
        out = arr.astype(float)
        out.flags.writeable = False
        return out

    def times(self) -> np.ndarray:
        return self.column("t")

    def window(self, t_start: float, t_end: float) -> "Trace":
        """Sub-trace with ``t_start <= t < t_end``."""
        recs = [r for r in self._materialized() if t_start <= r.t < t_end]
        return Trace(self.meta, recs)

    def _onset(self, channel: str) -> float | None:
        if self._records is None:
            cols = self.columns()
            hits = np.flatnonzero(cols.get(channel))
            if hits.size == 0:
                return None
            return float(cols.get("t")[hits[0]])
        for r in self._records:
            if getattr(r, channel):
                return r.t
        return None

    def attack_onset(self) -> float | None:
        """Time of the first step with an active attack, or ``None``."""
        return self._onset("attack_active")

    def fault_onset(self) -> float | None:
        """Time of the first step with an active benign fault, or ``None``."""
        return self._onset("fault_active")

    def __repr__(self) -> str:
        return (
            f"Trace({self.meta.scenario!r}, controller={self.meta.controller!r}, "
            f"attack={self.meta.attack!r}, n={len(self)})"
        )
