"""Tests for repro.geom.angles."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom.angles import angle_diff, circular_mean, normalize_angle, unwrap_angles

finite_angle = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestNormalizeAngle:
    @pytest.mark.parametrize("angle,expected", [
        (0.0, 0.0),
        (math.pi, math.pi),
        (-math.pi, math.pi),
        (3 * math.pi, math.pi),
        (2 * math.pi, 0.0),
        (-0.1, -0.1),
        (math.pi + 0.1, -math.pi + 0.1),
    ])
    def test_known_values(self, angle, expected):
        assert normalize_angle(angle) == pytest.approx(expected, abs=1e-12)

    @given(finite_angle)
    def test_range_property(self, angle):
        n = normalize_angle(angle)
        assert -math.pi < n <= math.pi

    @given(finite_angle)
    def test_equivalence_property(self, angle):
        n = normalize_angle(angle)
        # Same point on the circle.
        assert math.cos(n) == pytest.approx(math.cos(angle), abs=1e-6)
        assert math.sin(n) == pytest.approx(math.sin(angle), abs=1e-6)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            normalize_angle(float("nan"))
        with pytest.raises(ValueError):
            normalize_angle(float("inf"))


class TestAngleDiff:
    def test_wrap_around(self):
        assert angle_diff(math.pi - 0.1, -math.pi + 0.1) == pytest.approx(-0.2)

    def test_simple(self):
        assert angle_diff(0.5, 0.2) == pytest.approx(0.3)

    @given(finite_angle, finite_angle)
    def test_antisymmetry(self, a, b):
        d1 = angle_diff(a, b)
        d2 = angle_diff(b, a)
        # d1 == -d2 except exactly at the +pi branch point.
        if abs(abs(d1) - math.pi) > 1e-9:
            assert d1 == pytest.approx(-d2, abs=1e-9)


class TestUnwrap:
    def test_empty_and_single(self):
        assert unwrap_angles([]) == []
        assert unwrap_angles([1.25]) == [1.25]

    def test_removes_jump(self):
        raw = [3.0, -3.0]  # a wrap, true motion is +0.28
        out = unwrap_angles(raw)
        assert out[1] - out[0] == pytest.approx(2 * math.pi - 6.0)

    def test_continuous_signal_unchanged(self):
        raw = [0.0, 0.1, 0.2, 0.3]
        assert unwrap_angles(raw) == pytest.approx(raw)

    @given(st.lists(st.floats(min_value=-0.5, max_value=0.5,
                              allow_nan=False), min_size=1, max_size=50))
    def test_increments_preserved(self, increments):
        angles, acc = [], 0.0
        for inc in increments:
            acc += inc
            angles.append(normalize_angle(acc))
        out = unwrap_angles(angles)
        for i in range(1, len(out)):
            expected = increments[i]
            assert out[i] - out[i - 1] == pytest.approx(expected, abs=1e-9)


class TestCircularMean:
    def test_simple(self):
        assert circular_mean([0.1, -0.1]) == pytest.approx(0.0, abs=1e-12)

    def test_wraps(self):
        m = circular_mean([math.pi - 0.1, -math.pi + 0.1])
        assert abs(m) == pytest.approx(math.pi)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean([])

    def test_undefined_raises(self):
        with pytest.raises(ValueError):
            circular_mean([0.0, math.pi])
