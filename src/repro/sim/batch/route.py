"""Vectorized route queries: project/sample over all batch lanes at once.

:class:`BatchRoute` wraps one shared :class:`~repro.geom.polyline.Polyline`
(every lane in a batch drives the same route geometry) and answers the
three tracker queries for ``n`` query points per call.  Each operation
mirrors the serial method expression-for-expression — same associativity,
same ``min``/``max`` semantics, same first-minimum tie-breaking — so the
segment choice and every derived float is bit-identical to what the serial
``Polyline`` returns per lane (the batch engine's differential contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geom.polyline import Polyline
from repro.sim.batch import ops

__all__ = ["BatchProjection", "BatchSample", "BatchRoute"]

_WINDOW = 30.0  # meters; matches Polyline.project's hint window


@dataclass(frozen=True, slots=True)
class BatchProjection:
    """Per-lane arrays of :class:`~repro.geom.polyline.Projection` fields."""

    point_x: np.ndarray
    point_y: np.ndarray
    station: np.ndarray
    cross_track: np.ndarray
    heading: np.ndarray
    segment_index: np.ndarray
    distance: np.ndarray


@dataclass(frozen=True, slots=True)
class BatchSample:
    """Per-lane arrays of :class:`~repro.geom.polyline.PathSample` fields."""

    point_x: np.ndarray
    point_y: np.ndarray
    heading: np.ndarray
    curvature: np.ndarray
    station: np.ndarray


class BatchRoute:
    """Struct-of-arrays view of a polyline for batched queries."""

    def __init__(self, route: Polyline):
        self.route = route
        self.closed = route.closed
        self.length = route.length
        xy = np.array([[p.x, p.y] for p in route.points], dtype=float)
        deltas = np.diff(xy, axis=0)
        self._ax = xy[:-1, 0].copy()
        self._ay = xy[:-1, 1].copy()
        self._dx = deltas[:, 0].copy()
        self._dy = deltas[:, 1].copy()
        # Same elementwise expression the serial scan evaluates per segment.
        self._seg_len_sq = self._dx * self._dx + self._dy * self._dy
        self._seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        self._cum = np.concatenate(([0.0], np.cumsum(self._seg_lengths)))
        self._headings = np.arctan2(deltas[:, 1], deltas[:, 0])
        # np.cos/np.sin match math.cos/math.sin bitwise on this platform,
        # so precomputing the tangents is safe.
        self._cos_h = np.cos(self._headings)
        self._sin_h = np.sin(self._headings)
        self._curvatures = self._vertex_curvatures(route)
        self.num_segments = len(self._seg_lengths)

    @staticmethod
    def _vertex_curvatures(route: Polyline) -> np.ndarray:
        # The polyline computed these once at construction; reuse the exact
        # values rather than re-deriving them.
        return np.asarray(route._curvatures, dtype=float)  # noqa: SLF001

    # ------------------------------------------------------------------
    def wrap_station(self, s: np.ndarray) -> np.ndarray:
        """Vectorized ``Polyline._wrap_station``."""
        if self.closed:
            return np.mod(s, self.length)
        return ops.pymin(ops.pymax(s, 0.0), self.length)

    def remaining(self, s: np.ndarray) -> np.ndarray:
        """Vectorized ``Polyline.remaining``."""
        if self.closed:
            return np.full(np.shape(s), self.length)
        return self.length - self.wrap_station(s)

    # ------------------------------------------------------------------
    def sample(self, stations: np.ndarray) -> BatchSample:
        """Vectorized ``Polyline.sample`` over per-lane stations."""
        s = self.wrap_station(stations)
        idx = np.searchsorted(self._cum, s, side="right") - 1
        idx = np.clip(idx, 0, self.num_segments - 1)
        ds = s - self._cum[idx]
        frac = ds / self._seg_lengths[idx]
        px = self._ax[idx] + self._dx[idx] * frac
        py = self._ay[idx] + self._dy[idx] * frac
        heading = self._headings[idx]
        curvature = (1.0 - frac) * self._curvatures[idx] + frac * self._curvatures[idx + 1]
        return BatchSample(
            point_x=px, point_y=py, heading=heading, curvature=curvature, station=s
        )

    # ------------------------------------------------------------------
    def project(
        self,
        px: np.ndarray,
        py: np.ndarray,
        hint: np.ndarray,
        has_hint: np.ndarray,
    ) -> BatchProjection:
        """Vectorized ``Polyline.project`` with per-lane hint windows.

        Lanes with ``has_hint`` False (first step) search every segment,
        exactly like a serial ``hint_station=None`` call.
        """
        n = len(px)
        nseg = self.num_segments
        lo_idx = np.zeros(n, dtype=np.int64)
        hi_idx = np.full(n, nseg, dtype=np.int64)
        if has_hint.any():
            s = self.wrap_station(hint)
            lo = s - _WINDOW
            hi = s + _WINDOW
            windowed = has_hint.copy()
            if self.closed:
                # Seam-wrapping windows fall back to a full search.
                windowed &= ~((lo < 0) | (hi > self.length))
            if windowed.any():
                lo_w = np.searchsorted(
                    self._cum, ops.pymax(lo, 0.0), side="right"
                ) - 1
                hi_w = np.searchsorted(
                    self._cum, ops.pymin(hi, self.length), side="left"
                )
                lo_w = np.clip(lo_w, 0, nseg - 1)
                hi_w = np.clip(hi_w, lo_w + 1, nseg)
                lo_idx = np.where(windowed, lo_w, lo_idx)
                hi_idx = np.where(windowed, hi_w, hi_idx)

        width = int((hi_idx - lo_idx).max())
        idx = lo_idx[:, None] + np.arange(width)
        valid = idx < hi_idx[:, None]
        idx_c = np.where(valid, idx, 0)

        ax = self._ax[idx_c]
        ay = self._ay[idx_c]
        dx = self._dx[idx_c]
        dy = self._dy[idx_c]
        pxc = px[:, None]
        pyc = py[:, None]
        t = ((pxc - ax) * dx + (pyc - ay) * dy) / self._seg_len_sq[idx_c]
        t = ops.pymin(ops.pymax(t, 0.0), 1.0)
        cx = ax + t * dx
        cy = ay + t * dy
        ex = pxc - cx
        ey = pyc - cy
        dist_sq = ex * ex + ey * ey
        dist_sq = np.where(valid, dist_sq, np.inf)
        # argmin takes the first minimum, matching the serial strict-<
        # best-so-far scan over ascending segment indices.
        off = np.argmin(dist_sq, axis=1)
        rows = np.arange(n)
        best = lo_idx + off
        t_best = t[rows, off]

        closest_x = self._ax[best] + self._dx[best] * t_best
        closest_y = self._ay[best] + self._dy[best] * t_best
        heading = self._headings[best]
        rx = px - closest_x
        ry = py - closest_y
        cross = self._cos_h[best] * ry - self._sin_h[best] * rx
        station = self._cum[best] + t_best * self._seg_lengths[best]
        distance = ops.map2(math.hypot, rx, ry)
        return BatchProjection(
            point_x=closest_x,
            point_y=closest_y,
            station=station,
            cross_track=cross,
            heading=heading,
            segment_index=best,
            distance=distance,
        )
