"""Bench E2 — Table 2: detection latency per attack class."""

from conftest import run_and_print

from repro.experiments import build_latency_table


def test_e2_detection_latency(benchmark, quick_config):
    table = run_and_print(benchmark, build_latency_table, quick_config)
    rows = {r[0]: r for r in table.rows}
    # Paper-shape claim: for the jump-and-hold GPS spoof, consistency
    # assertions detect no later than behavioural ones.
    row = rows["gps_bias"]
    consistency = float(row[2])
    behaviour = float(row[3]) if row[3] != "-" else float("inf")
    assert consistency <= behaviour
    # Every attack class has a finite overall latency.
    for attack, row in rows.items():
        assert row[1] != "-", f"{attack} never detected"
