"""Wheel odometry: speed from wheel encoders.

Modeled as the true longitudinal speed scaled by a per-run wheel-radius
calibration factor plus white noise.  Odometry attacks manipulate the scale
(e.g. a compromised wheel-speed CAN message).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.dynamics import VehicleState
from repro.sim.sensors.base import Sensor, SensorConfig

__all__ = ["OdometryReading", "Odometry", "OdometryConfig"]


@dataclass(frozen=True, slots=True)
class OdometryReading:
    """One wheel-speed sample."""

    t: float
    speed: float
    """Measured longitudinal speed, m/s (non-negative)."""

    def scaled(self, factor: float) -> "OdometryReading":
        return OdometryReading(self.t, max(self.speed * factor, 0.0))


@dataclass(frozen=True, slots=True)
class OdometryConfig(SensorConfig):
    """Wheel-odometry noise model parameters."""

    rate_hz: float = 20.0
    noise_std: float = 0.05
    """White speed noise, m/s."""
    scale_error_std: float = 0.003
    """Std of the per-run multiplicative calibration error."""

    def __post_init__(self) -> None:
        SensorConfig.__post_init__(self)
        if self.noise_std < 0 or self.scale_error_std < 0:
            raise ValueError("noise parameters must be non-negative")


class Odometry(Sensor):
    """Wheel-speed sensor producing :class:`OdometryReading` samples."""

    channel = "odometry"

    def __init__(self, config: OdometryConfig, rng: np.random.Generator):
        super().__init__(config, rng)
        self.odo_config = config
        self._scale = 1.0 + float(rng.normal(0.0, config.scale_error_std))

    def _measure(self, t: float, state: VehicleState) -> OdometryReading:
        noise = float(self.rng.normal(0.0, self.odo_config.noise_std))
        return OdometryReading(t=t, speed=max(state.v * self._scale + noise, 0.0))
