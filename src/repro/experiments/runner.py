"""Grid runner: scenario x controller x attack x seed, with check+diagnose.

Every experiment funnels through :func:`run_grid` so runs are executed and
scored uniformly.  Since the scheduler/executor/result-store split
(:mod:`repro.experiments.backend`), ``run_grid`` is a thin composition:

1. an **in-process LRU memo** (bounded, default 512 runs) lets experiments
   that share grid points inside one process (e.g. E1 and E2) reuse
   simulations instantly;
2. a **persistent on-disk cache** (:mod:`repro.experiments.cache`,
   content-addressed by scenario/controller/attack/intensity/seed/onset/
   duration + catalog + code version) survives across processes, so a
   repeated campaign re-simulates nothing — memo + cache + checkpoint
   manifest together form the
   :class:`~repro.experiments.backend.CacheResultStore` every executor
   commits through;
3. uncached grid points run through a pluggable **executor chain**:
   the lockstep batch engine
   (:class:`~repro.experiments.backend.BatchExecutor`, ``--sim-engine
   batch``), then either a single-host ``ProcessPoolExecutor`` fan-out
   (:class:`~repro.experiments.backend.PoolExecutor`, ``workers=`` /
   ``ADASSURE_WORKERS``) or the multi-host lease-claimed worker fleet
   (:class:`~repro.experiments.distributed.DistributedExecutor`,
   ``executor="distributed"`` / ``ADASSURE_EXECUTOR``), and finally the
   terminal :class:`~repro.experiments.backend.SerialExecutor`, which
   owns retries and quarantine.

Because every run is fully seeded, every backend produces bit-identical
results; executors only change wall-clock time.  Each ``run_grid`` call
reports timings and hit counts into
:data:`repro.experiments.stats.STATS`.

The chain is **crash-tolerant**: a campaign of thousands of points must
survive one sick point, one dead worker, or one dead *host*.  Concretely,

* every pool point gets a wall-clock budget (``point_timeout=`` /
  ``ADASSURE_POINT_TIMEOUT``; unlimited by default) — an overdue point is
  abandoned to the pool and re-run serially;
* a collapsed pool (``BrokenProcessPool``, e.g. a worker OOM-killed or
  ``os._exit``-ing) is not fatal: the surviving points re-run serially;
* failing points are retried with jittered exponential backoff
  (``ADASSURE_POINT_RETRIES``, default 2; total per-point backoff capped
  by ``ADASSURE_RETRY_CAP``) and finally **quarantined** — reported in
  :class:`~repro.experiments.stats.GridStats` (and ``--stats``) instead
  of aborting the campaign;
* completed points are checkpointed to the disk cache *as they finish*,
  with a campaign-level :class:`~repro.experiments.cache.CheckpointManifest`
  ledger, so an interrupted campaign resumes from where it died and
  re-runs only the missing points;
* distributed workers that die mid-shard lose their lease after the
  heartbeat TTL and the shard is reclaimed — see
  :mod:`repro.experiments.distributed` for the full failure semantics.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass

from repro.attacks.campaign import standard_attack
from repro.control.acc import AccController
from repro.control.base import make_lateral_controller
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.core.checker import check_trace
from repro.core.diagnosis import DiagnosisResult, diagnose
from repro.core.spec import catalog_fingerprint
from repro.core.verdicts import CheckReport
from repro.experiments.backend import (
    BatchExecutor,
    CacheResultStore,
    PoolExecutor,
    ScoredResultStore,
    SerialExecutor,
    build_grid,
)
from repro.experiments.cache import CheckpointManifest, RunCache
from repro.experiments.stats import STATS, GridStats
from repro.sim.batch import LaneSpec, run_batch
from repro.sim.engine import RunResult, run_scenario
from repro.sim.scenario import standard_scenarios

__all__ = [
    "GridRun",
    "run_grid",
    "run_scored",
    "scored_store",
    "clear_cache",
    "resolve_executor",
    "choose_sim_engine",
    "resolve_sim_engine",
    "resolve_workers",
    "set_memo_limit",
]

DEFAULT_MEMO_LIMIT = 512
"""Default bound on the in-process memo (``ADASSURE_MEMO_LIMIT`` env)."""

DEFAULT_BATCH_LANES = 64
"""Default lanes per batched simulation group (``ADASSURE_BATCH_LANES``)."""

DEFAULT_POINT_RETRIES = 2
"""Default retry budget per failing point (``ADASSURE_POINT_RETRIES``)."""

_RETRY_BACKOFF = 0.25
"""Base of the exponential retry backoff, seconds (doubles per attempt)."""


def _point_timeout(timeout: float | None) -> float | None:
    """Per-point wall-clock budget: argument > env > unlimited."""
    if timeout is None:
        env = os.environ.get("ADASSURE_POINT_TIMEOUT")
        if env:
            try:
                timeout = float(env)
            except ValueError:
                timeout = None
    if timeout is not None and timeout <= 0:
        return None
    return timeout


def _point_retries(retries: int | None) -> int:
    """Per-point retry budget: argument > env > default."""
    if retries is None:
        env = os.environ.get("ADASSURE_POINT_RETRIES")
        if env:
            try:
                retries = int(env)
            except ValueError:
                retries = None
    if retries is None:
        retries = DEFAULT_POINT_RETRIES
    return max(int(retries), 0)


@dataclass(slots=True)
class GridRun:
    """One fully scored grid point."""

    scenario: str
    controller: str
    attack: str
    intensity: float
    seed: int
    result: RunResult
    report: CheckReport
    diagnosis: DiagnosisResult

    @property
    def onset_latency(self) -> float | None:
        onset = self.result.trace.attack_onset()
        if onset is None:
            return None
        return self.report.detection_latency(onset)


# ---------------------------------------------------------------------------
# In-process memo: bounded LRU so multi-thousand-point sweeps cannot grow
# memory without limit (each GridRun holds a full trace).
# ---------------------------------------------------------------------------

_MEMO: OrderedDict[tuple, GridRun] = OrderedDict()


def _memo_limit() -> int:
    try:
        return max(int(os.environ.get("ADASSURE_MEMO_LIMIT",
                                      DEFAULT_MEMO_LIMIT)), 1)
    except ValueError:
        return DEFAULT_MEMO_LIMIT


_MEMO_LIMIT = _memo_limit()


def set_memo_limit(limit: int) -> None:
    """Re-bound the in-process memo (evicts oldest entries immediately)."""
    global _MEMO_LIMIT
    if limit < 1:
        raise ValueError("memo limit must be >= 1")
    _MEMO_LIMIT = limit
    while len(_MEMO) > _MEMO_LIMIT:
        _MEMO.popitem(last=False)


def _memo_get(key: tuple) -> GridRun | None:
    run = _MEMO.get(key)
    if run is not None:
        _MEMO.move_to_end(key)
    return run


def _memo_put(key: tuple, run: GridRun) -> None:
    _MEMO[key] = run
    _MEMO.move_to_end(key)
    while len(_MEMO) > _MEMO_LIMIT:
        _MEMO.popitem(last=False)


def clear_cache(disk: bool = False) -> None:
    """Drop memoized runs (tests use this to force fresh simulations).

    Args:
        disk: also wipe the persistent on-disk cache layer.
    """
    _MEMO.clear()
    if disk:
        cache = RunCache.from_env()
        if cache is not None:
            cache.clear()


def resolve_sim_engine(engine: str | None = None) -> str:
    """Effective simulation engine: argument > ``ADASSURE_SIM`` > serial.

    ``"serial"`` steps every grid point through its own
    :class:`~repro.sim.engine.SimulationRunner`; ``"batch"`` groups
    compatible points and steps them in lockstep through
    :func:`repro.sim.batch.run_batch` (bit-identical results, one core).
    """
    if engine is None:
        env = os.environ.get("ADASSURE_SIM", "").strip()
        engine = env or "serial"
    engine = engine.strip().lower()
    if engine not in ("serial", "batch"):
        raise ValueError(
            f"unknown simulation engine {engine!r}; "
            "expected 'serial' or 'batch'")
    return engine


def choose_sim_engine(engine: str | None = None,
                      pending: int = 0) -> tuple[str, str]:
    """Effective engine *and why*: argument > ``ADASSURE_SIM`` > auto.

    Auto selects the lockstep batch engine whenever at least two runs
    are actually pending and NumPy imports (the batch engine is
    array-native); otherwise serial.  ``ADASSURE_SIM=serial`` is the
    opt-out.  Returns ``(engine, reason)`` — the reason lands in
    ``GridStats.sim_engine_reason`` so ``--stats`` shows how the engine
    was picked.  :func:`resolve_sim_engine` keeps the historical
    serial-unless-asked contract for callers that need it (the
    distributed executor ships the engine name to its workers).
    """
    if engine is not None:
        return resolve_sim_engine(engine), "engine argument"
    env = os.environ.get("ADASSURE_SIM", "").strip()
    if env:
        return resolve_sim_engine(env), "ADASSURE_SIM"
    if pending < 2:
        return "serial", f"auto: {pending} pending run(s)"
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships with the repo
        return "serial", "auto: numpy unavailable"
    return "batch", f"auto: {pending} pending run(s)"


def _batch_lanes() -> int:
    """Lanes per batch group: ``ADASSURE_BATCH_LANES`` or the default."""
    env = os.environ.get("ADASSURE_BATCH_LANES")
    if env:
        try:
            return max(int(env), 2)
        except ValueError:
            pass
    return DEFAULT_BATCH_LANES


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument > ``ADASSURE_WORKERS`` > cores-1."""
    if workers is None:
        env = os.environ.get("ADASSURE_WORKERS")
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = (os.cpu_count() or 2) - 1
    return max(int(workers), 1)


def resolve_executor(executor: str | None = None) -> str:
    """Effective campaign executor: argument > ``ADASSURE_EXECUTOR`` > auto.

    * ``"auto"`` — today's single-host behaviour: batch prepass when the
      batch engine is selected, then pool (or serial on one core);
    * ``"serial"`` — force the in-process serial path;
    * ``"pool"`` — force the single-host process pool;
    * ``"distributed"`` — spawn a lease-claimed worker fleet sharing the
      disk cache (:mod:`repro.experiments.distributed`); other hosts can
      join with ``adassure worker``.
    """
    if executor is None:
        env = os.environ.get("ADASSURE_EXECUTOR", "").strip()
        executor = env or "auto"
    executor = executor.strip().lower()
    if executor not in ("auto", "serial", "pool", "distributed"):
        raise ValueError(
            f"unknown executor {executor!r}; expected 'auto', 'serial', "
            "'pool' or 'distributed'")
    return executor


def resolve_dist_workers(dist_workers: int | None = None) -> int:
    """Distributed fleet size: argument > ``ADASSURE_DIST_WORKERS`` > ≥2.

    The default is at least two workers — a one-worker "fleet" is legal
    (still crash-tolerant via lease reclaim on restart) but defeats the
    point of asking for the distributed executor.
    """
    if dist_workers is None:
        env = os.environ.get("ADASSURE_DIST_WORKERS")
        if env:
            try:
                dist_workers = int(env)
            except ValueError:
                dist_workers = None
        if dist_workers is None:
            dist_workers = max(resolve_workers(None), 2)
    return max(int(dist_workers), 1)


# ---------------------------------------------------------------------------
# Point execution (also the ProcessPoolExecutor work unit)
# ---------------------------------------------------------------------------

def _execute_point(point: tuple) -> tuple[tuple, GridRun, dict]:
    """Simulate + check + diagnose one grid point.

    Top-level so it pickles into pool workers; returns the grid key, the
    scored run and per-phase wall times.
    """
    scenario_name, controller, attack, intensity, seed, onset, duration = point
    scenario = standard_scenarios(seed=seed, duration=duration)[scenario_name]
    campaign = (
        standard_attack(attack, intensity=intensity, onset=onset)
        if attack != "none"
        else standard_attack("none")
    )
    t0 = time.perf_counter()
    result = run_scenario(scenario, controller=controller, campaign=campaign)
    t1 = time.perf_counter()
    report = check_trace(result.trace)
    t2 = time.perf_counter()
    diagnosis = diagnose(report)
    t3 = time.perf_counter()
    run = GridRun(
        scenario=scenario_name,
        controller=controller,
        attack=attack,
        intensity=intensity,
        seed=seed,
        result=result,
        report=report,
        diagnosis=diagnosis,
    )
    phases = {"simulate": t1 - t0, "check": t2 - t1, "diagnose": t3 - t2}
    return point, run, phases


def _batch_lane_spec(point: tuple) -> LaneSpec:
    """Build one batch lane exactly the way :func:`_execute_point` would.

    Mirrors the follower construction of
    :func:`~repro.sim.engine.run_scenario` (unsupervised, scenario cruise
    profile, ACC iff the scenario has a lead) so the batched lane is
    bit-identical to the serial grid point.
    """
    scenario_name, controller, attack, intensity, seed, onset, duration = point
    scenario = standard_scenarios(seed=seed, duration=duration)[scenario_name]
    campaign = (
        standard_attack(attack, intensity=intensity, onset=onset)
        if attack != "none"
        else standard_attack("none")
    )
    follower = WaypointFollower(
        make_lateral_controller(controller),
        profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
        acc=AccController() if scenario.lead is not None else None,
    )
    return LaneSpec(scenario=scenario, follower=follower, campaign=campaign)


def _execute_batch(points: list[tuple], merge) -> None:
    """Simulate a compatible group in lockstep, then score each lane.

    The batched simulation produces all lanes at once, so its wall time
    is attributed evenly across the group's points; check/diagnose stay
    per-point.  Raises (e.g. :class:`~repro.sim.batch.BatchCompatError`)
    bubble to the caller, which falls back to the serial/pool path.
    """
    specs = [_batch_lane_spec(point) for point in points]
    t0 = time.perf_counter()
    results = run_batch(specs)
    sim_share = (time.perf_counter() - t0) / len(points)
    for point, result in zip(points, results):
        t1 = time.perf_counter()
        report = check_trace(result.trace)
        t2 = time.perf_counter()
        diagnosis = diagnose(report)
        t3 = time.perf_counter()
        run = GridRun(
            scenario=point[0], controller=point[1], attack=point[2],
            intensity=point[3], seed=point[4],
            result=result, report=report, diagnosis=diagnosis,
        )
        merge(point, run,
              {"simulate": sim_share, "check": t2 - t1, "diagnose": t3 - t2})


def _execute_chunk(points: list[tuple]) -> list[tuple]:
    """Pool work unit: execute a batch of points in one task.

    Failures are captured *per point* — ``(point, None, None, error)``
    instead of ``(point, run, phases, None)`` — so one sick point does
    not discard its chunk-mates' finished work.  Calls
    ``_execute_point`` through the module global so test sabotage
    (monkeypatched into forked workers) still applies.
    """
    out = []
    for point in points:
        try:
            out.append(_execute_point(point) + (None,))
        except Exception as exc:
            out.append((point, None, None, f"{type(exc).__name__}: {exc}"))
    return out


def scored_store() -> ScoredResultStore:
    """The process-wide params-keyed result store (memo + disk cache).

    Every off-grid run — the E10-E13 extension configurations and the
    counterfactual probes — resolves and commits through this store, so
    probe cache hits show up in :data:`~repro.experiments.stats.STATS`
    exactly like grid hits do.
    """
    return ScoredResultStore(RunCache.from_env(), _memo_get, _memo_put)


def run_scored(params: dict, simulate) -> tuple[RunResult, CheckReport]:
    """Cached execution of one *off-grid* closed-loop run.

    The extension experiments (E10-E13) run configurations the cartesian
    grid cannot express — gated estimators, concurrent attack pairs,
    injected controller defects, the car-following scenario.  This routes
    them through the same
    :class:`~repro.experiments.backend.ScoredResultStore` layers as
    :func:`run_grid` uses for grid points.

    Args:
        params: JSON-serializable dict that uniquely determines the run;
            it must cover every knob ``simulate`` closes over (a stale
            ``params`` means silently wrong cache hits).  Convention:
            include a ``"kind"`` discriminator per experiment family.
        simulate: zero-argument callable returning the
            :class:`~repro.sim.engine.RunResult`; only invoked on a miss.

    Returns:
        ``(result, report)`` — the report is the default-catalog
        :func:`~repro.core.checker.check_trace` verdict.  Diagnosis is
        not cached: rankings are knowledge-base dependent and cost
        microseconds to recompute.
    """
    wall_start = time.perf_counter()
    stats = GridStats(workers=1, grid_points=1)
    store = scored_store()
    hit = store.resolve(params)
    if hit is not None:
        pair, source = hit
        if source == "memo":
            stats.memo_hits = 1
        else:
            stats.disk_hits = 1
        stats.wall_time = time.perf_counter() - wall_start
        STATS.record(stats)
        return pair

    t0 = time.perf_counter()
    result = simulate()
    t1 = time.perf_counter()
    report = check_trace(result.trace)
    t2 = time.perf_counter()
    store.commit(params, (result, report))
    if store.cache is not None:
        stats.disk_errors = store.cache.counters.errors
    stats.executed = 1
    stats.phase_time["simulate"] = t1 - t0
    stats.phase_time["check"] = t2 - t1
    stats.wall_time = time.perf_counter() - wall_start
    STATS.record(stats)
    return result, report


def run_grid(
    scenarios: tuple[str, ...] | list[str],
    controllers: tuple[str, ...] | list[str],
    attacks: tuple[str, ...] | list[str],
    seeds: tuple[int, ...] | list[int],
    intensity: float = 1.0,
    onset: float = 15.0,
    duration: float | None = None,
    workers: int | None = None,
    point_timeout: float | None = None,
    retries: int | None = None,
    sim_engine: str | None = None,
    executor: str | None = None,
    dist_workers: int | None = None,
    shard_points: int | None = None,
) -> list[GridRun]:
    """Run (and score) the full cartesian grid.

    Results come back in grid order (scenario-major, seed-minor) and are
    identical regardless of ``workers`` or ``executor`` — the backends
    only change how the uncached points are executed.  Hits are served
    from the in-process memo first, then from the persistent disk cache;
    freshly executed points are merged back into both layers *as they
    complete* (the incremental checkpoint an interrupted campaign
    resumes from).

    With ``sim_engine="batch"`` (or ``ADASSURE_SIM=batch``), compatible
    uncached points are grouped and stepped in lockstep through the
    array-native batch engine (:mod:`repro.sim.batch`) before anything
    reaches the pool; results are bit-identical to the serial engine, and
    any group the batch engine rejects falls back to the classic path.

    With ``executor="distributed"`` (or ``ADASSURE_EXECUTOR=distributed``),
    the uncached points are instead striped into lease-claimable shards
    and executed by ``dist_workers`` independent worker *processes*
    sharing the disk cache as their common result store — additional
    hosts can join the same campaign with ``adassure worker``.  Shard
    size is ``shard_points`` (or ``ADASSURE_SHARD_POINTS``).

    Execution is crash-tolerant: slow points are re-run serially after
    ``point_timeout`` seconds, a collapsed worker pool (or a wholly dead
    distributed fleet) degrades to serial execution of the surviving
    points, and a point that still fails after ``retries`` re-executions
    is quarantined — dropped from the returned list and reported via
    :data:`~repro.experiments.stats.STATS` — rather than aborting the
    campaign.  Callers that require the full grid can compare
    ``len(result)`` against their request.
    """
    wall_start = time.perf_counter()
    stats = GridStats(workers=1)

    grid = build_grid(scenarios, controllers, attacks, seeds,
                      intensity=intensity, onset=onset, duration=duration)
    stats.grid_points = len(grid)

    cache = RunCache.from_env()
    catalog = catalog_fingerprint() if cache is not None else None
    manifest = CheckpointManifest.for_grid(cache, grid)
    if manifest is not None and manifest.lease_conflict:
        # Another live campaign owns this grid's ledger.  The work still
        # runs (the per-point cache stays shared and consistent); only
        # the manifest goes read-only.  Report it — a silently lost
        # ledger is exactly what the lease exists to prevent.
        stats.lease_conflicts += 1
        warnings.warn(
            f"checkpoint manifest {manifest.path.name} is held by another "
            "live campaign; this run proceeds without updating the shared "
            "ledger", RuntimeWarning, stacklevel=2)

    store = CacheResultStore(cache, catalog, manifest, _memo_get, _memo_put)
    try:
        # Resolve every unique point through memo -> disk -> pending list.
        # `resolved` pins this grid's runs so LRU eviction mid-call is safe.
        resolved: dict[tuple, GridRun] = {}
        pending: list[tuple] = []
        seen: set[tuple] = set()
        for point in grid:
            if point in seen:
                continue
            seen.add(point)
            hit = store.resolve(point)
            if hit is not None:
                run, source = hit
                resolved[point] = run
                if source == "memo":
                    stats.memo_hits += 1
                else:
                    stats.disk_hits += 1
                continue
            pending.append(point)

        def merge(point: tuple, run: GridRun, phases: dict | None) -> None:
            # Incremental checkpoint: every completed point lands in the
            # result store (memo + disk cache + manifest) as soon as it
            # finishes, so an interrupted campaign re-runs only what is
            # missing.  ``phases=None`` marks a point executed elsewhere
            # (a distributed worker) and adopted from the shared store —
            # already durable, so only the local bookkeeping runs.
            resolved[point] = run
            if phases is None:
                _memo_put(point, run)
                if manifest is not None:
                    manifest.complete(point)
                stats.dist_points += 1
                return
            store.commit(point, run)
            stats.executed += 1
            for phase, seconds in phases.items():
                stats.phase_time[phase] += seconds

        # Execute the misses through the executor chain.  The batch
        # engine (when selected) consumes whole compatible groups first;
        # the primary executor — process pool or distributed fleet —
        # takes the rest; all leftovers (timed-out points, collapse
        # survivors, dead-fleet remainders, first-failure points) fall
        # back to the terminal serial executor, which owns retries and
        # quarantine and always converges.
        mode = resolve_executor(executor)
        if mode == "distributed" and cache is None:
            warnings.warn(
                "the distributed executor needs the disk cache as its "
                "shared result store (ADASSURE_CACHE=0 disables it); "
                "falling back to the single-host executor chain",
                RuntimeWarning, stacklevel=2)
            mode = "auto"
        if mode == "distributed":
            # Distributed workers resolve their own engine from the shard
            # spec; auto-selection stays a local-chain concern.
            stats.sim_engine = resolve_sim_engine(sim_engine)
        else:
            stats.sim_engine, stats.sim_engine_reason = choose_sim_engine(
                sim_engine, len(pending))
        items = [(point, 0) for point in pending]

        if mode == "distributed" and items:
            from repro.experiments.distributed import DistributedExecutor
            n_dist = resolve_dist_workers(dist_workers)
            dist = DistributedExecutor(
                grid, store, n_dist, shard_points=shard_points,
                sim_engine=stats.sim_engine)
            items = dist.execute(items, merge, stats)
            stats.pool_policy = "distributed"
        else:
            if stats.sim_engine == "batch" and len(items) > 1:
                items = BatchExecutor().execute(items, merge, stats)
            n_workers = resolve_workers(workers)
            use_pool = (mode in ("auto", "pool")
                        and n_workers > 1 and len(items) > 1)
            if use_pool and workers is None and (os.cpu_count() or 1) < 2:
                # Measured: on a single exposed core the pool's
                # pickle/dispatch overhead makes it *slower* than serial
                # (~0.87x).  When the count came from the environment
                # rather than an explicit argument, auto-select the
                # serial path and record why.
                use_pool = False
                stats.pool_policy = "serial-single-core"
            else:
                stats.pool_policy = "pool" if use_pool else "serial"
            stats.workers = min(n_workers, len(items)) if use_pool else 1
            if use_pool:
                items = PoolExecutor(
                    stats.workers,
                    timeout=_point_timeout(point_timeout),
                ).execute(items, merge, stats)
        SerialExecutor(_point_retries(retries)).execute(
            items, merge, stats, store.quarantine)
    finally:
        # The lease must not outlive the campaign: a leaked lease
        # would lock this grid's ledger until the TTL expires.
        store.close()

    if cache is not None:
        stats.disk_errors = cache.counters.errors
    stats.wall_time = time.perf_counter() - wall_start
    STATS.record(stats)

    return [resolved[point] for point in grid if point in resolved]
