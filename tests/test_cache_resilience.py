"""Abuse tests for the on-disk run cache.

The cache is an accelerator, never a point of failure: torn writes,
unpicklable payloads and concurrent writers may cost a re-simulation but
must never crash a campaign or serve a corrupt entry.
"""

import threading

import pytest

from repro.core.checker import check_trace
from repro.experiments.cache import RunCache, cache_key
from repro.sim.engine import run_scenario

from conftest import short_scenario

KEY_ARGS = ("s_curve", "pure_pursuit", "none", 1.0, 7, 5.0, 12.0)


@pytest.fixture(scope="module")
def scored_run():
    result = run_scenario(short_scenario("s_curve", duration=12.0))
    report = check_trace(result.trace)
    return result, report


@pytest.fixture()
def cache(tmp_path):
    return RunCache(root=tmp_path)


class TestTornEntries:
    def test_truncated_trace_payload_is_evicted(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        cache.store(key, result, report, None)
        trace_path = cache._trace_path(key)
        data = trace_path.read_bytes()
        trace_path.write_bytes(data[: len(data) // 2])
        # A binary payload cut mid-stream cannot be read back; load must
        # reject + evict it rather than serve a shortened trace.
        assert cache.load(key) is None
        assert cache.counters.errors == 1
        assert not trace_path.exists()

    def test_truncated_pickle_payload_is_evicted(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        cache.store(key, result, report, None)
        scored_path = cache._scored_path(key)
        data = scored_path.read_bytes()
        scored_path.write_bytes(data[: len(data) // 2])
        assert cache.load(key) is None
        assert not scored_path.exists()
        assert not cache._trace_path(key).exists()  # pair fully dropped

    def test_missing_half_of_pair_is_a_miss(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        cache.store(key, result, report, None)
        cache._scored_path(key).unlink()
        assert cache.load(key) is None
        assert cache.counters.misses == 1

    def test_wrong_payload_type_is_evicted(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        cache.store(key, result, report, None)
        scored = {"metrics": result.metrics, "outcome": result.outcome,
                  "scenario": result.scenario,
                  "controller_name": result.controller_name,
                  "attack_label": result.attack_label,
                  "report": "not a CheckReport", "diagnosis": None}
        import pickle
        cache._scored_path(key).write_bytes(pickle.dumps(scored))
        assert cache.load(key) is None
        assert cache.counters.errors == 1


class TestUnstorablePayloads:
    def test_unpicklable_report_fails_toward_miss(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        poisoned = lambda: None  # noqa: E731 — lambdas cannot pickle
        cache.store(key, result, poisoned, None)
        assert cache.counters.errors == 1
        assert cache.counters.stores == 0
        # The torn half-write (trace landed, pickle failed) was dropped.
        assert not cache.contains(key)
        assert cache.load(key) is None

    def test_store_after_failure_recovers(self, cache, scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        cache.store(key, result, lambda: None, None)
        cache.store(key, result, report, None)
        assert cache.counters.stores == 1
        entry = cache.load(key)
        assert entry is not None
        assert entry[1].fired_ids == report.fired_ids


class TestConcurrentWriters:
    def test_racing_writers_leave_valid_or_absent_entry(self, cache,
                                                        scored_run):
        result, report = scored_run
        key = cache_key(*KEY_ARGS)
        errors = []

        def writer():
            try:
                for _ in range(5):
                    cache.store(key, result, report, None)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        entry = cache.load(key)  # valid entry or clean miss, never corrupt
        if entry is not None:
            loaded_result, loaded_report, _ = entry
            assert loaded_report.fired_ids == report.fired_ids
            assert len(loaded_result.trace) == len(result.trace)

    def test_distinct_keys_never_interfere(self, cache, scored_run):
        result, report = scored_run
        keys = [cache_key(*KEY_ARGS[:4], seed, *KEY_ARGS[5:])
                for seed in range(8)]

        def writer(key):
            cache.store(key, result, report, None)

        threads = [threading.Thread(target=writer, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key in keys:
            entry = cache.load(key)
            assert entry is not None
            assert entry[1].fired_ids == report.fired_ids

    def test_tmp_files_never_linger(self, cache, scored_run, tmp_path):
        result, report = scored_run
        cache.store(cache_key(*KEY_ARGS), result, report, None)
        assert not list(tmp_path.rglob("*.tmp.*"))
