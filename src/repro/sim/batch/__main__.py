"""Benchmark — batched lockstep engine vs the serial oracle.

``python -m repro.sim.batch`` simulates the same lane set twice (once
through per-lane :class:`~repro.sim.engine.SimulationRunner` instances,
once through :func:`~repro.sim.batch.run_batch`), verifies the traces are
bit-identical, and writes the measured speedup to ``BENCH_sim.json``.
The quick CI tripwire lives in ``benchmarks/bench_sim_batch.py``; this
module produces the full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.attacks.campaign import standard_attack
from repro.control.acc import AccController
from repro.control.base import make_lateral_controller
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.sim.batch import LaneSpec, run_batch
from repro.sim.engine import SimulationRunner
from repro.sim.scenario import standard_scenarios
from repro.trace.schema import Trace

_CONTROLLERS = ("pure_pursuit", "stanley", "lqr")
_ATTACKS = ("none", "gps_bias", "gps_drift", "steer_offset")


def _lane_specs(lanes: int, scenario_name: str,
                duration: float | None) -> list[LaneSpec]:
    """A representative vectorizable lane mix: controllers x attacks x seeds."""
    specs = []
    for i in range(lanes):
        scenario = standard_scenarios(
            seed=i % 8, duration=duration)[scenario_name]
        attack = _ATTACKS[i % len(_ATTACKS)]
        campaign = standard_attack(attack) if attack != "none" else None
        follower = WaypointFollower(
            make_lateral_controller(_CONTROLLERS[i % len(_CONTROLLERS)]),
            profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
            acc=AccController() if scenario.lead is not None else None,
        )
        specs.append(LaneSpec(scenario=scenario, follower=follower,
                              campaign=campaign))
    return specs


def _assert_identical(serial: Trace, batch: Trace) -> None:
    for name in Trace.field_names:
        a = serial.columns().get(name)
        b = batch.columns().get(name)
        if a.dtype.kind == "f":
            ok = np.array_equal(a, b, equal_nan=True)
        else:
            ok = np.array_equal(a, b)
        if not ok:
            raise AssertionError(
                f"batch/serial divergence in column {name!r} — the "
                "speedup below would be meaningless")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.batch",
        description=__doc__,
    )
    parser.add_argument("--lanes", type=int, default=64,
                        help="grid points to simulate (default 64)")
    parser.add_argument("--scenario", default="s_curve")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the scenario duration, seconds")
    parser.add_argument("--output", default="BENCH_sim.json")
    args = parser.parse_args(argv)

    import gc

    specs = _lane_specs(args.lanes, args.scenario, args.duration)
    n_steps = len(np.arange(0.0, specs[0].scenario.duration,
                            specs[0].scenario.dt))

    # Batch first: the serial pass materializes tens of thousands of
    # per-record objects, and timing the batch engine on top of that heap
    # would charge it the garbage collector's rent.
    print(f"batch : run_batch({args.lanes} lanes) ...")
    gc.collect()
    t0 = time.perf_counter()
    batch_results = run_batch(specs)
    batch_s = time.perf_counter() - t0
    print(f"  {batch_s:.2f}s")

    print(f"serial: {args.lanes} x SimulationRunner ...")
    gc.collect()
    t0 = time.perf_counter()
    serial_results = [
        SimulationRunner(s.scenario, s.follower, s.campaign,
                         s.ekf_config, faults=s.faults).run()
        for s in _lane_specs(args.lanes, args.scenario, args.duration)
    ]
    serial_s = time.perf_counter() - t0
    print(f"  {serial_s:.2f}s")

    for s, b in zip(serial_results, batch_results):
        _assert_identical(s.trace, b.trace)
    print("bit-identical: every trace column equal")

    speedup = serial_s / batch_s
    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "lanes": args.lanes,
            "scenario": args.scenario,
            "duration_s": specs[0].scenario.duration,
            "dt": specs[0].scenario.dt,
            "steps_per_lane": n_steps,
            "controllers": list(_CONTROLLERS),
            "attacks": list(_ATTACKS),
        },
        "timings_s": {
            "serial": round(serial_s, 4),
            "batch": round(batch_s, 4),
            "serial_per_lane_ms": round(1e3 * serial_s / args.lanes, 2),
            "batch_per_lane_ms": round(1e3 * batch_s / args.lanes, 2),
        },
        "speedup_batch_vs_serial": round(speedup, 2),
        "bit_identical": True,
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"speedup: {speedup:.1f}x  ->  wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
