"""The five benign fault models.

Each model corrupts the *delivery* of sensor messages, never their
semantic content — that is what distinguishes a fault from an attack in
this package.  All models are channel-generic (see
:class:`~repro.faults.base.Fault`) and deterministic given the engine's
seeded RNG streams.
"""

from __future__ import annotations

import dataclasses
import math

from repro.attacks.base import AttackWindow
from repro.faults.base import Fault

__all__ = ["Dropout", "Freeze", "NaNBurst", "Latency", "Intermittent"]


class Dropout(Fault):
    """Total loss: the channel delivers nothing for the whole window.

    Models a powered-down receiver or unplugged cable.  The consuming
    stack sees no message at all (the engine's zero-order hold keeps the
    *recorded* channel at its last value with ``*_fresh`` false).
    """

    name = "dropout"

    def apply(self, t: float, value):
        return None


class Freeze(Fault):
    """Stale repetition: the last healthy message is re-delivered.

    Models a wedged driver process that keeps publishing its final
    sample.  Unlike :class:`Dropout`, downstream consumers *do* receive
    (apparently fresh) messages — the dangerous failure mode, because a
    stack without staleness checks happily fuses them.
    """

    name = "freeze"

    def __init__(self, channel: str, window: AttackWindow | None = None):
        super().__init__(channel, window)
        self._held = None

    def reset(self) -> None:
        self._held = None

    def observe(self, t: float, value) -> None:
        if not self.active(t):
            self._held = value

    def apply(self, t: float, value):
        return self._held if self._held is not None else None


class NaNBurst(Fault):
    """Numeric corruption: every payload field becomes NaN.

    Models a failing sensor unit emitting garbage frames.  The message
    timestamp survives (framing is intact); every measurement field is
    replaced with NaN, which unprotected arithmetic silently propagates.
    """

    name = "nan_burst"

    def apply(self, t: float, value):
        nan_fields = {
            f.name: math.nan
            for f in dataclasses.fields(value)
            if f.name != "t"
        }
        return dataclasses.replace(value, **nan_fields)


class Latency(Fault):
    """Transport delay: messages arrive ``delay`` seconds late.

    Models a congested bus or an overloaded driver.  Messages produced
    during the window are buffered and re-delivered once they age past
    the delay; until the first buffered message matures the channel is
    silent.  Payloads keep their original (now stale) timestamps.
    """

    name = "latency"

    def __init__(self, channel: str, delay: float = 0.5,
                 window: AttackWindow | None = None):
        super().__init__(channel, window)
        if delay <= 0:
            raise ValueError("latency delay must be positive")
        self.delay = delay
        self._queue: list[tuple[float, object]] = []

    def reset(self) -> None:
        self._queue = []

    def apply(self, t: float, value):
        self._queue.append((t, value))
        delivered = None
        while self._queue and self._queue[0][0] <= t - self.delay:
            delivered = self._queue.pop(0)[1]
        return delivered


class Intermittent(Fault):
    """Lossy link: each message is independently dropped with probability
    ``drop_prob`` (seeded through the engine's RNG streams, so runs are
    reproducible).  Models a flaky connector or RF interference.
    """

    name = "intermittent"

    def __init__(self, channel: str, drop_prob: float = 0.5,
                 window: AttackWindow | None = None):
        super().__init__(channel, window)
        if not 0.0 < drop_prob <= 1.0:
            raise ValueError("drop_prob must be in (0, 1]")
        self.drop_prob = drop_prob

    def apply(self, t: float, value):
        if self.rng is None:
            raise RuntimeError("Intermittent fault needs bind_rng() first")
        return None if self.rng.random() < self.drop_prob else value
