"""End-to-end smoke: ``adassure explain`` on a seeded E4 violation.

One full CLI pass over the quick-config E4 grid point (urban_loop /
pure_pursuit / gps_bias @ seed 7, onset 15 s, 40 s) — the same coordinates
``ExperimentConfig.quick()`` feeds ``build_diagnosis_accuracy``.  CI runs
this under a hard timeout (see ``.github/workflows/ci.yml``,
"Counterfactual smoke"): a wedged search (ddmin looping, a probe hanging
the simulator) becomes a fast failure instead of a stuck job.
"""

from __future__ import annotations

from repro.cli import main

E4_POINT = [
    "--scenario", "urban_loop",
    "--controller", "pure_pursuit",
    "--attack", "gps_bias",
    "--seed", "7",
    "--onset", "15.0",
    "--duration", "40.0",
]


def test_explain_cli_end_to_end(capsys):
    rc = main(["explain", *E4_POINT, "--resolution", "1.0", "--stats"])
    out = capsys.readouterr().out
    assert rc == 0
    # The causal chain, end to end: violation -> necessity -> minimal
    # window -> verified minimal -> isolation verdict.
    assert "VIOLATING" in out
    assert "necessity    : confirmed" in out
    assert "window       : " in out and "1-minimal" in out
    assert "(verified)" in out
    assert "result       : ISOLATED" in out
    # --stats surfaces the probe cache accounting (every probe goes
    # through the ResultStore, so the split must be visible).
    assert "memo hits" in out
    assert "grid points" in out


def test_explain_cli_second_pass_all_cached(capsys):
    """Same explanation again: identical report, zero fresh simulations."""
    first = main(["explain", *E4_POINT, "--resolution", "1.0"])
    report_a = capsys.readouterr().out
    second = main(["explain", *E4_POINT, "--resolution", "1.0", "--stats"])
    out = capsys.readouterr().out
    assert first == second == 0
    report_b = out.split("\n-- campaign stats")[0].rstrip("\n")
    assert report_a.rstrip("\n") == report_b
    assert "executed 0" in out
