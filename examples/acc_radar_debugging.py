"""Debugging the ACC car-following stack under radar spoofing.

Demonstrates the extension surface of the reproduction:

1. a car-following scenario (slowing lead vehicle, forward radar, CTG
   adaptive cruise control),
2. a radar range-scaling attack that quietly turns the ACC into a
   tailgater,
3. detection by the radar self-consistency assertions (A18/A19) and the
   headway envelope (A17),
4. root-cause ranking, and
5. trace *diffing* against the nominal run to read the causal chain.

Run:  python examples/acc_radar_debugging.py
"""

import numpy as np

from repro import run_scenario, standard_attack
from repro.core import check_trace, diagnose, render_diagnosis
from repro.sim.scenario import acc_scenario
from repro.trace import diff_traces


def main() -> None:
    nominal = run_scenario(acc_scenario(seed=7))
    attacked = run_scenario(
        acc_scenario(seed=7),
        campaign=standard_attack("radar_scale", onset=15.0),
    )

    def headway_stats(result):
        trace = result.trace
        gap = trace.column("gap_true")
        v = trace.column("true_v")
        moving = v > 2.0
        return float(np.min(gap)), float(np.min(gap[moving] / v[moving]))

    gap_nom, hw_nom = headway_stats(nominal)
    gap_atk, hw_atk = headway_stats(attacked)
    print("car-following outcome (lead slows 9 -> 4 m/s at t=18 s):")
    print(f"  nominal : min gap {gap_nom:5.1f} m, min headway {hw_nom:4.2f} s")
    print(f"  attacked: min gap {gap_atk:5.1f} m, min headway {hw_atk:4.2f} s"
          "  <- tailgating")
    print()

    report = check_trace(attacked.trace)
    print(f"fired assertions: {', '.join(report.fired_ids)}")
    latency = report.detection_latency(15.0)
    print(f"detection latency from onset: {latency:.1f} s")
    print()
    print(render_diagnosis(diagnose(report)))
    print()

    print("causal chain via trace diff (nominal vs attacked):")
    diff = diff_traces(nominal.trace, attacked.trace,
                       channels=["radar_range", "accel_cmd", "true_v",
                                 "gap_true"],
                       tolerances={"gap_true": 2.0})
    print(diff.render())
    print()
    print("reading: the radar channel diverges first (the lie), the "
          "acceleration command follows (the ACC trusts it), then the "
          "physical gap erodes (the harm).")


if __name__ == "__main__":
    main()
