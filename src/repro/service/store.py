"""Crash-safe session checkpoints for the trace-ingest server.

Generalizes the campaign checkpoint machinery (PR 2's
:class:`~repro.experiments.cache.CheckpointManifest`) to streaming
sessions: each session persists a small JSON manifest (cursor, finished
flag, the verdict once issued) next to a binary payload of the records
received so far.  Both are written atomically (tmp + rename), so a
killed server leaves either the previous consistent checkpoint or the
new one — never a torn pair the next server mis-resumes from.

Exactly-once verdicts rest on this store: the verdict is persisted
*before* it is sent, so a client that disconnects mid-VERDICT and
resumes gets the **same** stored verdict — recomputation (which could
drift if code changed between server runs) never happens for a finished
session.

The whole store directory is guarded by an advisory
:class:`~repro.locking.FileLease` (same machinery as the campaign
manifest): a second server instance pointed at a live store's directory
is told so and must refuse to start, because two writers checkpointing
the same sessions would corrupt each other's ledgers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.cache import default_cache_dir
from repro.locking import FileLease, LeaseConflict
from repro.trace.io import TraceIOError, trace_from_bytes
from repro.trace.schema import TraceMeta, TraceRecord

__all__ = ["LeaseConflict", "SessionCheckpoint", "SessionStore",
           "default_store_dir"]

_MANIFEST_SUFFIX = ".session.json"
_RECORDS_SUFFIX = ".records.npz"


def default_store_dir() -> Path:
    """``$ADASSURE_SERVICE_DIR``, else ``<cache root>/service-sessions``."""
    env = os.environ.get("ADASSURE_SERVICE_DIR")
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service-sessions"


class SessionCheckpoint:
    """One session's persisted state, as loaded from disk."""

    __slots__ = ("session_id", "meta", "records", "next_seq", "finished",
                 "verdict")

    def __init__(self, session_id: str, meta: TraceMeta,
                 records: list[TraceRecord], next_seq: int,
                 finished: bool, verdict: dict | None):
        self.session_id = session_id
        self.meta = meta
        self.records = records
        self.next_seq = next_seq
        self.finished = finished
        self.verdict = verdict


class SessionStore:
    """Directory of per-session checkpoints, single-writer by lease."""

    def __init__(self, root: str | Path | None = None):
        self.root = (Path(root).expanduser() if root is not None
                     else default_store_dir())
        self.lease = FileLease(self.root / "store.lease")
        self.writes = 0
        self.loads = 0

    def acquire(self) -> None:
        """Claim the store; raises :class:`LeaseConflict` if another
        live server owns it (two writers would corrupt the ledgers)."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.lease.acquire(raising=True)

    def release(self) -> None:
        self.lease.release()

    # -- paths -----------------------------------------------------------
    def _safe_id(self, session_id: str) -> str:
        # Session ids come from clients: never let one escape the store
        # directory or collide via path tricks.
        return "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in session_id)[:128]

    def _manifest_path(self, session_id: str) -> Path:
        return self.root / (self._safe_id(session_id) + _MANIFEST_SUFFIX)

    def _records_path(self, session_id: str) -> Path:
        return self.root / (self._safe_id(session_id) + _RECORDS_SUFFIX)

    # -- persistence -----------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def save(self, session_id: str, *, meta: TraceMeta,
             record_bytes: bytes, next_seq: int, finished: bool,
             verdict: dict | None) -> None:
        """Persist one session's state (records payload + manifest).

        The records payload is written first: a crash between the two
        writes leaves a manifest that undersells the payload (safe — the
        client just resends a chunk that will be deduplicated on seq),
        never one that oversells it.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.lease.refresh()
        self._atomic_write(self._records_path(session_id), record_bytes)
        manifest = {
            "session_id": session_id,
            "meta": meta.to_dict(),
            "next_seq": next_seq,
            "finished": finished,
            "verdict": verdict,
        }
        self._atomic_write(
            self._manifest_path(session_id),
            (json.dumps(manifest) + "\n").encode("utf-8"))
        self.writes += 1

    def load(self, session_id: str) -> SessionCheckpoint | None:
        """The session's checkpoint, or ``None`` if absent or unreadable.

        An unreadable checkpoint (torn write survived by the machine
        dying mid-rename, bit rot) is treated as absent: the client is
        told to restart the stream, which costs a resend, not
        correctness.
        """
        manifest_path = self._manifest_path(session_id)
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            records = list(trace_from_bytes(
                self._records_path(session_id).read_bytes()).records)
        except (OSError, ValueError, TraceIOError):
            return None
        self.loads += 1
        return SessionCheckpoint(
            session_id=manifest.get("session_id", session_id),
            meta=TraceMeta.from_dict(manifest.get("meta", {})),
            records=records,
            next_seq=int(manifest.get("next_seq", 0)),
            finished=bool(manifest.get("finished", False)),
            verdict=manifest.get("verdict"),
        )

    def drop(self, session_id: str) -> None:
        """Delete one session's checkpoint files (post-verdict cleanup)."""
        for path in (self._manifest_path(session_id),
                     self._records_path(session_id)):
            try:
                path.unlink()
            except OSError:
                pass

    def session_ids(self) -> list[str]:
        """Every checkpointed session id currently on disk."""
        if not self.root.exists():
            return []
        return sorted(p.name[:-len(_MANIFEST_SUFFIX)]
                      for p in self.root.glob("*" + _MANIFEST_SUFFIX))
