"""E3 / Figure 2 — anomaly time series: nominal vs. GPS-spoofed runs.

Regenerates the paper-style figure as a downsampled text series: ground
truth cross-track error over time, per controller, with and without the
GPS drift attack.  The qualitative shape to reproduce: the attacked curve
departs from the nominal band shortly after onset and keeps growing, for
every controller — the estimator, not the controller, is the weak point.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ascii_plot import sparkline
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_anomaly_traces"]

_SAMPLE_EVERY_S = 2.0
_ATTACK = "gps_drift"


def build_anomaly_traces(config: ExperimentConfig | None = None,
                         workers: int | None = None) -> list[Table]:
    """One table per scenario: |cte|(t) series, nominal vs. attacked."""
    config = config or ExperimentConfig.full()
    tables = []
    for scenario in config.trace_scenarios:
        runs = run_grid(
            scenarios=(scenario,),
            controllers=config.controllers,
            attacks=("none", _ATTACK),
            seeds=(config.seeds[0],),
            onset=config.attack_onset,
            duration=config.duration,
            workers=workers,
        )
        columns = ["t [s]"]
        for controller in config.controllers:
            columns += [f"{controller} nom", f"{controller} atk"]
        table = Table(
            title=f"Figure 2 (E3): |cross-track error| over time, nominal vs "
                  f"{_ATTACK} (scenario={scenario}, onset t="
                  f"{config.attack_onset:.0f}s)",
            columns=columns,
        )

        series: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        t_max = 0.0
        for run in runs:
            t = run.result.trace.times()
            cte = np.abs(run.result.trace.column("cte_true"))
            series[(run.controller, run.attack)] = (t, cte)
            t_max = max(t_max, float(t[-1]))

        sample_times = np.arange(0.0, t_max + 1e-9, _SAMPLE_EVERY_S)
        for ts in sample_times:
            row: list[object] = [f"{ts:.0f}"]
            for controller in config.controllers:
                for attack in ("none", _ATTACK):
                    t, cte = series[(controller, attack)]
                    idx = int(np.searchsorted(t, ts))
                    if idx >= len(t):
                        row.append("-")
                    else:
                        row.append(f"{cte[idx]:.2f}")
            table.add_row(*row)
        table.add_note("values are |cte| in meters sampled every "
                       f"{_SAMPLE_EVERY_S:.0f} s; '-' = run already ended.")
        # Compact figure view: one sparkline per run, shared scale.
        all_cte = [cte for (_, cte) in series.values()]
        hi = max(float(np.max(c)) for c in all_cte)
        for controller in config.controllers:
            for attack in ("none", _ATTACK):
                __, cte = series[(controller, attack)]
                label = f"{controller} {'nominal ' if attack == 'none' else 'attacked'}"
                table.add_note(
                    f"{label:<24} |cte| 0..{hi:.1f} m  "
                    f"{sparkline(cte[::20], lo=0.0, hi=hi)}"
                )
        tables.append(table)
    return tables


def main() -> None:
    for table in build_anomaly_traces():
        print(table.render())
        print()


if __name__ == "__main__":
    main()
