"""Linear MPC lateral controller (condensed QP with steering bounds).

Same kinematic error model as the LQR controller, but optimized over a
finite horizon with curvature *preview*: the curvature profile along the
route enters the prediction as a known affine disturbance, so the
controller steers into corners before the error appears.

The condensed problem

    min_U  sum_k ||e_k||_Q^2 + ||u_k||_R^2
    s.t.   e_{k+1} = A e_k + B u_k + w_k,   |u_k| <= max_steer

is a bounded least-squares problem solved with
:func:`scipy.optimize.lsq_linear`; only the first control is applied
(receding horizon).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import lsq_linear

from repro.control.base import LateralController, SteerDecision
from repro.geom.angles import angle_diff
from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = ["MpcController"]


class MpcController(LateralController):
    """Receding-horizon linear MPC path tracker.

    Args:
        wheelbase: vehicle wheelbase, meters.
        horizon: prediction horizon length (steps).
        q_cte / q_heading: stage cost on the error state.
        r_steer: stage cost on steering.
        r_dsteer: cost on steering increments (smoothness).
        max_steer: hard steering bound, rad.
    """

    name = "mpc"

    def __init__(
        self,
        wheelbase: float = 2.7,
        horizon: int = 12,
        q_cte: float = 1.0,
        q_heading: float = 2.5,
        r_steer: float = 4.0,
        r_dsteer: float = 10.0,
        max_steer: float = 0.61,
    ):
        if horizon < 2:
            raise ValueError("horizon must be at least 2")
        if min(q_cte, q_heading, r_steer) <= 0 or r_dsteer < 0:
            raise ValueError("MPC weights must be positive (r_dsteer >= 0)")
        self.wheelbase = wheelbase
        self.horizon = horizon
        self.q_sqrt = np.diag([np.sqrt(q_cte), np.sqrt(q_heading)])
        self.r_sqrt = np.sqrt(r_steer)
        self.dr_sqrt = np.sqrt(r_dsteer)
        self.max_steer = max_steer
        self._station_hint: float | None = None
        self._prev_solution: np.ndarray | None = None

    def reset(self) -> None:
        self._station_hint = None
        self._prev_solution = None

    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        proj = route.project(pose.position, hint_station=self._station_hint)
        self._station_hint = proj.station

        cte = proj.cross_track
        heading_err = angle_diff(pose.yaw, proj.heading)
        e0 = np.array([cte, heading_err])

        v = max(speed, 0.5)
        n = self.horizon
        a = np.array([[1.0, v * dt], [0.0, 1.0]])
        b = np.array([[0.0], [v * dt / self.wheelbase]])

        # Curvature preview along the horizon (known disturbance).
        kappas = np.array([
            route.lookahead(proj.station, v * dt * (k + 1)).curvature
            for k in range(n)
        ])
        w = np.zeros((n, 2))
        w[:, 1] = -v * kappas * dt

        # Batch prediction matrices: E = sx @ e0 + su @ U + sw_vec.
        sx = np.zeros((2 * n, 2))
        su = np.zeros((2 * n, n))
        sw_vec = np.zeros(2 * n)
        a_pow = [np.eye(2)]
        for _ in range(n):
            a_pow.append(a @ a_pow[-1])
        for k in range(n):
            sx[2 * k:2 * k + 2, :] = a_pow[k + 1]
            acc = np.zeros(2)
            for j in range(k + 1):
                block = a_pow[k - j] @ b
                su[2 * k:2 * k + 2, j] = block[:, 0]
                acc += a_pow[k - j] @ w[j]
            sw_vec[2 * k:2 * k + 2] = acc

        q_big = np.kron(np.eye(n), self.q_sqrt)
        rows = [q_big @ su, self.r_sqrt * np.eye(n)]
        rhs = [-(q_big @ (sx @ e0 + sw_vec)), np.zeros(n)]
        if self.dr_sqrt > 0:
            diff = np.zeros((n, n))
            np.fill_diagonal(diff, 1.0)
            diff[np.arange(1, n), np.arange(0, n - 1)] = -1.0
            rows.append(self.dr_sqrt * diff)
            prev_u = 0.0
            if self._prev_solution is not None:
                prev_u = float(self._prev_solution[0])
            rhs_diff = np.zeros(n)
            rhs_diff[0] = self.dr_sqrt * prev_u
            rhs.append(rhs_diff)

        a_ls = np.vstack(rows)
        b_ls = np.concatenate(rhs)
        result = lsq_linear(
            a_ls, b_ls, bounds=(-self.max_steer, self.max_steer),
            method="bvls", tol=1e-8,
        )
        u = result.x
        self._prev_solution = u
        steer = float(np.clip(u[0], -self.max_steer, self.max_steer))

        return SteerDecision(
            steer=steer, cte=cte, heading_err=heading_err, station=proj.station
        )
