"""The simulated vehicle: dynamics model + actuators behind one facade."""

from __future__ import annotations

from repro.geom.vec import Pose
from repro.sim.actuators import ActuatorLimits, Actuators
from repro.sim.dynamics import (
    DynamicBicycleModel,
    KinematicBicycleModel,
    VehicleParams,
    VehicleState,
)

__all__ = ["Vehicle"]

_MODELS = {
    "kinematic": KinematicBicycleModel,
    "dynamic": DynamicBicycleModel,
}


class Vehicle:
    """A controllable vehicle: hold a command, step the physics.

    The two-phase interface (``apply_control`` then ``step``) mirrors the
    CARLA actor API and lets attack injectors sit between the controller's
    command and the actuators.
    """

    def __init__(
        self,
        params: VehicleParams | None = None,
        model: str = "kinematic",
        actuator_limits: ActuatorLimits | None = None,
        initial_state: VehicleState | None = None,
    ):
        if model not in _MODELS:
            raise ValueError(f"unknown model {model!r}; expected one of {sorted(_MODELS)}")
        self.params = params or VehicleParams()
        self.model = _MODELS[model](self.params)
        if actuator_limits is None:
            actuator_limits = ActuatorLimits(
                steer_max=self.params.max_steer,
                accel_max=self.params.max_accel,
                brake_max=self.params.max_brake,
            )
        self.actuators = Actuators(actuator_limits)
        self._state = initial_state or VehicleState()
        self._steer_cmd = 0.0
        self._accel_cmd = 0.0

    @property
    def state(self) -> VehicleState:
        """Ground-truth vehicle state."""
        return self._state

    @property
    def pose(self) -> Pose:
        return self._state.pose

    @property
    def steer_cmd(self) -> float:
        """Last commanded steering angle (pre-actuator), rad."""
        return self._steer_cmd

    @property
    def accel_cmd(self) -> float:
        """Last commanded acceleration (pre-actuator), m/s^2."""
        return self._accel_cmd

    def teleport(self, state: VehicleState) -> None:
        """Set the ground-truth state directly (scenario setup only)."""
        self._state = state

    def apply_control(self, steer: float, accel: float) -> None:
        """Latch a control command; it takes effect at the next ``step``."""
        self._steer_cmd = float(steer)
        self._accel_cmd = float(accel)

    def step(self, dt: float) -> VehicleState:
        """Advance actuators and dynamics by ``dt``; returns the new state."""
        steer_applied, accel_applied = self.actuators.apply(
            self._steer_cmd, self._accel_cmd, dt
        )
        self._state = self.model.step(self._state, steer_applied, accel_applied, dt)
        return self._state
