"""Lead-vehicle model for car-following (ACC) scenarios.

The lead vehicle travels along the *same route* as the ego vehicle, ahead
of it by an arc-length gap, with a piecewise-constant-target speed profile
tracked through a first-order lag (so speed changes are smooth).  This is
the standard workload for debugging ACC controllers: cruise, lead slows,
lead speeds back up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geom.polyline import Polyline
from repro.geom.vec import Vec2

__all__ = ["LeadSpeedEvent", "LeadVehicleConfig", "LeadVehicle"]


@dataclass(frozen=True, slots=True)
class LeadSpeedEvent:
    """At time ``t`` the lead vehicle starts tracking ``speed``."""

    t: float
    speed: float

    def __post_init__(self) -> None:
        if self.t < 0 or self.speed < 0:
            raise ValueError("event time and speed must be non-negative")


@dataclass(frozen=True, slots=True)
class LeadVehicleConfig:
    """Initial gap and speed profile of the lead vehicle."""

    initial_gap: float = 40.0
    """Arc-length head start over the ego vehicle, meters."""
    initial_speed: float = 8.0
    events: tuple[LeadSpeedEvent, ...] = field(default_factory=tuple)
    """Speed-change events, in time order."""
    accel_lag: float = 1.2
    """First-order time constant of the lead's speed tracking, seconds."""

    def __post_init__(self) -> None:
        if self.initial_gap <= 0:
            raise ValueError("initial_gap must be positive")
        if self.initial_speed < 0:
            raise ValueError("initial_speed must be non-negative")
        if self.accel_lag <= 0:
            raise ValueError("accel_lag must be positive")
        times = [e.t for e in self.events]
        if times != sorted(times):
            raise ValueError("events must be in time order")

    @staticmethod
    def slowdown(initial_gap: float = 40.0, cruise: float = 9.0,
                 slow: float = 4.0, slow_at: float = 18.0,
                 resume_at: float = 32.0) -> "LeadVehicleConfig":
        """The canonical ACC test: cruise, brake to ``slow``, resume."""
        return LeadVehicleConfig(
            initial_gap=initial_gap,
            initial_speed=cruise,
            events=(LeadSpeedEvent(slow_at, slow),
                    LeadSpeedEvent(resume_at, cruise)),
        )


class LeadVehicle:
    """Simulates the lead vehicle's station and speed along the route."""

    def __init__(self, config: LeadVehicleConfig, start_station: float):
        self.config = config
        self._station = start_station + config.initial_gap
        self._speed = config.initial_speed
        self._target = config.initial_speed

    @property
    def station(self) -> float:
        """Arc-length position along the route, meters."""
        return self._station

    @property
    def speed(self) -> float:
        return self._speed

    def step(self, t: float, dt: float) -> None:
        """Advance the lead vehicle by ``dt`` (engine calls this per step)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        for event in self.config.events:
            if event.t <= t:
                self._target = event.speed
        alpha = 1.0 - math.exp(-dt / self.config.accel_lag)
        self._speed += alpha * (self._target - self._speed)
        self._station += self._speed * dt

    def gap_to(self, ego_station: float, route_length: float,
               closed: bool) -> float:
        """Arc-length gap from the ego to the lead (wraps on loops)."""
        gap = self._station - ego_station
        if closed:
            gap %= route_length
        return gap

    def position_on(self, route: Polyline) -> Vec2:
        """World position of the lead on the route.

        A lead that has driven past the end of an open route continues
        straight along the final heading (it leaves the mapped area but
        remains a physical radar target).
        """
        if not route.closed and self._station > route.length:
            end = route.sample(route.length)
            excess = self._station - route.length
            return end.point + Vec2(
                math.cos(end.heading), math.sin(end.heading)) * excess
        return route.sample(self._station).point

    def velocity_on(self, route: Polyline) -> Vec2:
        """World velocity vector of the lead (speed along its heading)."""
        if not route.closed and self._station > route.length:
            heading = route.sample(route.length).heading
        else:
            heading = route.sample(self._station).heading
        return Vec2(math.cos(heading), math.sin(heading)) * self._speed
