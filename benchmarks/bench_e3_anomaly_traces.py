"""Bench E3 — Figure 2: cross-track error traces, nominal vs. attacked."""

from conftest import run_and_print

from repro.experiments import build_anomaly_traces


def test_e3_anomaly_traces(benchmark, quick_config):
    tables = run_and_print(benchmark, build_anomaly_traces, quick_config)
    assert len(tables) == len(quick_config.trace_scenarios)
    # Paper-shape claim: by the end of the run the attacked |cte| exceeds
    # the nominal |cte| for the first controller.
    table = tables[0]
    for row in reversed(table.rows):
        if row[1] != "-" and row[2] != "-":
            assert float(row[2]) > float(row[1])
            break
