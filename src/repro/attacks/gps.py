"""GNSS spoofing and jamming attacks.

These model the attack family the paper's authors study on their research
vehicle: a spoofer that shifts, drags, freezes, replays or degrades the
GNSS solution.  All attacks transform :class:`~repro.sim.sensors.gps.GpsFix`
messages in flight.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.sim.sensors.gps import GpsFix

__all__ = [
    "GpsBiasAttack",
    "GpsDriftAttack",
    "GpsFreezeAttack",
    "GpsReplayAttack",
    "GpsNoiseAttack",
]


class GpsBiasAttack(Attack):
    """Constant position offset from attack onset (jump-and-hold spoof)."""

    name = "gps_bias"
    channel = "gps"

    def __init__(self, offset_x: float, offset_y: float,
                 window: AttackWindow | None = None):
        super().__init__(window)
        self.offset_x = offset_x
        self.offset_y = offset_y

    @property
    def magnitude(self) -> float:
        import math

        return math.hypot(self.offset_x, self.offset_y)

    def on_gps(self, t: float, fix: GpsFix) -> GpsFix:
        return fix.offset(self.offset_x, self.offset_y)


class GpsDriftAttack(Attack):
    """Slowly ramping offset (the stealthy 'drag-away' spoof).

    The offset grows linearly at ``(rate_x, rate_y)`` m/s from onset, which
    keeps each individual fix plausible — the attack the paper's
    consistency assertions are designed to catch early.
    """

    name = "gps_drift"
    channel = "gps"

    def __init__(self, rate_x: float, rate_y: float,
                 window: AttackWindow | None = None):
        super().__init__(window)
        self.rate_x = rate_x
        self.rate_y = rate_y

    def on_gps(self, t: float, fix: GpsFix) -> GpsFix:
        dt = self.window.elapsed(t)
        return fix.offset(self.rate_x * dt, self.rate_y * dt)


class GpsFreezeAttack(Attack):
    """Replays the last pre-onset fix forever (stuck GNSS solution)."""

    name = "gps_freeze"
    channel = "gps"

    def __init__(self, window: AttackWindow | None = None):
        super().__init__(window)
        self._frozen: GpsFix | None = None

    def reset(self) -> None:
        self._frozen = None

    def observe_gps(self, t: float, fix: GpsFix) -> None:
        if not self.active(t):
            self._frozen = fix

    def on_gps(self, t: float, fix: GpsFix) -> GpsFix:
        if self._frozen is None:
            # Attack started before the first fix; freeze the first one seen.
            self._frozen = fix
        return GpsFix(t=fix.t, x=self._frozen.x, y=self._frozen.y)


class GpsReplayAttack(Attack):
    """Replays fixes recorded ``delay`` seconds in the past."""

    name = "gps_replay"
    channel = "gps"

    def __init__(self, delay: float = 5.0, window: AttackWindow | None = None):
        super().__init__(window)
        if delay <= 0:
            raise ValueError("replay delay must be positive")
        self.delay = delay
        self._buffer: list[GpsFix] = []

    def reset(self) -> None:
        self._buffer = []

    def observe_gps(self, t: float, fix: GpsFix) -> None:
        self._buffer.append(fix)
        # Trim anything older than needed to bound memory.
        cutoff = t - 2.0 * self.delay
        while self._buffer and self._buffer[0].t < cutoff:
            self._buffer.pop(0)

    def on_gps(self, t: float, fix: GpsFix) -> GpsFix:
        target_t = t - self.delay
        replayed = None
        for old in reversed(self._buffer):
            if old.t <= target_t:
                replayed = old
                break
        if replayed is None and self._buffer:
            replayed = self._buffer[0]
        if replayed is None:
            return fix
        return GpsFix(t=fix.t, x=replayed.x, y=replayed.y)


class GpsNoiseAttack(Attack):
    """Inflates GPS noise (jamming / meaconing degradation)."""

    name = "gps_noise"
    channel = "gps"

    def __init__(self, extra_std: float = 3.0, window: AttackWindow | None = None):
        super().__init__(window)
        if extra_std <= 0:
            raise ValueError("extra_std must be positive")
        self.extra_std = extra_std

    def on_gps(self, t: float, fix: GpsFix) -> GpsFix:
        if self.rng is None:
            raise RuntimeError("GpsNoiseAttack requires bind_rng() before use")
        dx, dy = self.rng.normal(0.0, self.extra_std, size=2)
        return fix.offset(float(dx), float(dy))
