"""Tests for the adassure CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "s_curve"
        assert args.attack == "none"

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--attack", "nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pure_pursuit" in out
        assert "A16" in out

    def test_run_nominal(self, capsys):
        code = main(["run", "--scenario", "straight", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ADAssure check report" in out
        assert "root-cause ranking" in out

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "--scenario", "mars"]) == 2

    def test_run_attack_save_and_check(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "run", "--scenario", "straight", "--attack", "gps_bias",
            "--onset", "10", "--save", str(trace_path),
        ])
        assert code == 0
        assert trace_path.exists()
        capsys.readouterr()
        assert main(["check", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "gps_bias" in out  # diagnosis names the injected cause

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_e7_quick(self, capsys):
        # e7 is the cheapest experiment: one simulation + monitor sweeps.
        assert main(["experiment", "e7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_diff_command(self, tmp_path, capsys):
        ref = tmp_path / "ref.jsonl"
        cand = tmp_path / "cand.jsonl"
        main(["run", "--scenario", "straight", "--save", str(ref)])
        main(["run", "--scenario", "straight", "--attack", "gps_bias",
              "--onset", "10", "--save", str(cand)])
        capsys.readouterr()
        assert main(["diff", str(ref), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "divergence timeline" in out
        assert "gps" in out

    def test_calibrate_command(self, tmp_path, capsys):
        trace = tmp_path / "nominal.jsonl"
        main(["run", "--scenario", "straight", "--save", str(trace)])
        spec_path = tmp_path / "spec.json"
        capsys.readouterr()
        assert main(["calibrate", str(trace), "--output",
                     str(spec_path)]) == 0
        assert spec_path.exists()
        out = capsys.readouterr().out
        assert "calibration over 1 nominal trace" in out
