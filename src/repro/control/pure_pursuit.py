"""Pure Pursuit lateral controller.

The geometric tracker used on countless AV platforms (and the default in
the TalTech research-vehicle stack): chase a lookahead point on the path
with a circular arc.  Lookahead distance scales with speed for stability.

    steer = atan2(2 L sin(alpha), Ld)

where ``alpha`` is the bearing of the lookahead point in the body frame
and ``Ld`` the lookahead distance.
"""

from __future__ import annotations

import math

from repro.control.base import LateralController, SteerDecision
from repro.geom.angles import angle_diff
from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = ["PurePursuitController"]


class PurePursuitController(LateralController):
    """Speed-scaled Pure Pursuit.

    Args:
        wheelbase: vehicle wheelbase, meters.
        lookahead_gain: seconds of travel ahead (Ld = gain * v).
        min_lookahead / max_lookahead: clamp on the lookahead distance.
        max_steer: output saturation, rad.
    """

    name = "pure_pursuit"
    supports_batch = True

    def __init__(
        self,
        wheelbase: float = 2.7,
        lookahead_gain: float = 0.9,
        min_lookahead: float = 4.0,
        max_lookahead: float = 25.0,
        max_steer: float = 0.61,
    ):
        if wheelbase <= 0 or lookahead_gain <= 0:
            raise ValueError("wheelbase and lookahead_gain must be positive")
        if not 0 < min_lookahead <= max_lookahead:
            raise ValueError("need 0 < min_lookahead <= max_lookahead")
        self.wheelbase = wheelbase
        self.lookahead_gain = lookahead_gain
        self.min_lookahead = min_lookahead
        self.max_lookahead = max_lookahead
        self.max_steer = max_steer
        self._station_hint: float | None = None

    def reset(self) -> None:
        self._station_hint = None

    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        proj = route.project(pose.position, hint_station=self._station_hint)
        self._station_hint = proj.station

        lookahead = min(
            max(self.lookahead_gain * speed, self.min_lookahead),
            self.max_lookahead,
        )
        target = route.lookahead(proj.station, lookahead).point
        local = pose.to_local(target)
        # Bearing to the target point in the body frame.
        alpha = math.atan2(local.y, max(local.x, 1e-6))
        dist = max(local.norm(), 1e-3)
        steer = math.atan2(2.0 * self.wheelbase * math.sin(alpha), dist)
        steer = _clamp(steer, -self.max_steer, self.max_steer)

        return SteerDecision(
            steer=steer,
            cte=proj.cross_track,
            heading_err=angle_diff(pose.yaw, proj.heading),
            station=proj.station,
        )


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
