"""Experiment configuration: full-size vs. quick (benchmark) grids."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentConfig", "STANDARD_ATTACKS"]

STANDARD_ATTACKS: tuple[str, ...] = (
    "gps_bias",
    "gps_drift",
    "gps_freeze",
    "gps_noise",
    "imu_gyro_bias",
    "odom_scale",
    "compass_offset",
    "steer_offset",
    "cmd_delay",
)
"""The attack classes every grid experiment covers."""


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``quick()`` shrinks seeds/grids so the whole benchmark suite runs in a
    couple of minutes; results keep the same qualitative shape (the point
    of the reproduction) with wider error bars.
    """

    seeds: tuple[int, ...] = (1, 7, 42)
    scenario: str = "urban_loop"
    trace_scenarios: tuple[str, ...] = ("straight", "s_curve")
    controllers: tuple[str, ...] = ("pure_pursuit", "stanley", "lqr", "mpc")
    attacks: tuple[str, ...] = STANDARD_ATTACKS
    attack_onset: float = 15.0
    duration: float | None = None
    """Optional scenario-duration override (None = scenario default)."""
    sweep_intensities: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
    sweep_attacks: tuple[str, ...] = ("gps_bias", "gps_drift")
    extra: dict = field(default_factory=dict)

    @staticmethod
    def full() -> "ExperimentConfig":
        return ExperimentConfig()

    @staticmethod
    def quick() -> "ExperimentConfig":
        return ExperimentConfig(
            seeds=(7,),
            controllers=("pure_pursuit", "stanley"),
            trace_scenarios=("s_curve",),
            duration=40.0,
            sweep_intensities=(0.5, 1.0, 2.0),
            sweep_attacks=("gps_bias",),
        )
