"""ADAssure reproduction: assertion-based debugging for AD control algorithms.

The package reproduces *ADAssure: Debugging Methodology for Autonomous
Driving Control Algorithms* (Roberts et al., DATE 2024 ASD initiative).
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed evaluation.

Quickstart::

    from repro import run_scenario, standard_scenarios, standard_attack
    from repro.core import default_catalog, check_trace, diagnose

    scenario = standard_scenarios(seed=7)["s_curve"]
    result = run_scenario(scenario, controller="pure_pursuit",
                          campaign=standard_attack("gps_drift"))
    report = check_trace(result.trace, default_catalog())
    ranking = diagnose(report)
    print(ranking.top().cause)
"""

from repro.attacks import (
    AttackCampaign,
    combined_attack,
    make_attack,
    standard_attack,
)
from repro.faults import (
    FaultCampaign,
    combined_fault,
    make_fault,
    standard_fault,
)
from repro.sim import RunResult, Scenario, run_scenario, standard_scenarios
from repro.sim.scenario import acc_scenario
from repro.trace import Trace, compute_metrics, diff_traces

# 1.2: columnar trace backend + vectorized assertion checking; the run
# cache moves to the binary trace format (cache layout v2 — older
# entries live under a separate root and are simply not found).
# 1.4: scheduler/executor/result-store split + the distributed campaign
# backend (grid specs embed this version; mixed-version fleets refuse
# to share a campaign).
__version__ = "1.6.0"

__all__ = [
    "run_scenario",
    "standard_scenarios",
    "acc_scenario",
    "Scenario",
    "RunResult",
    "standard_attack",
    "combined_attack",
    "make_attack",
    "AttackCampaign",
    "standard_fault",
    "combined_fault",
    "make_fault",
    "FaultCampaign",
    "Trace",
    "compute_metrics",
    "diff_traces",
    "__version__",
]
