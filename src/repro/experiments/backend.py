"""Pluggable campaign backends: scheduler / executor / result-store split.

:func:`~repro.experiments.runner.run_grid` used to hard-code one execution
strategy (memo -> disk cache -> optional batch prepass -> process pool ->
serial retry loop).  This module factors that pipeline into three small
interfaces so backends *compose* instead of being welded together:

* :class:`Scheduler` — partitions pending grid points into shards (pool
  chunks, lease-claimable distributed shards, one big serial shard);
* :class:`Executor`  — runs a shard list, merging completed points back
  as they finish and returning whatever still needs a fallback
  (:class:`BatchExecutor`, :class:`PoolExecutor`, :class:`SerialExecutor`,
  and the multi-host :class:`~repro.experiments.distributed.DistributedExecutor`);
* :class:`ResultStore` — the commit point every executor funnels through
  (in-process memo + content-addressed disk cache + checkpoint manifest).

The contract that makes composition safe: **a point is only ever observable
through the result store**, and a commit is atomic (the disk cache writes
tmp+rename).  Executors may die, be duplicated, or re-run points — the
store absorbs it, because a grid point is a pure function of its key and
re-commits are byte-identical.

Worker-side primitives (``_execute_point`` and friends) stay in
:mod:`~repro.experiments.runner` and are resolved through the module
global at call time, so test sabotage (and fork-propagated monkeypatches)
keeps working exactly as before.
"""

from __future__ import annotations

import os
import random
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

__all__ = [
    "DEFAULT_RETRY_CAP",
    "BatchExecutor",
    "CacheResultStore",
    "ChunkScheduler",
    "Executor",
    "PoolExecutor",
    "ResultStore",
    "Scheduler",
    "ScoredResultStore",
    "SerialExecutor",
    "SingleShardScheduler",
    "StripedScheduler",
    "build_grid",
    "retry_cap",
    "retry_delay",
]

DEFAULT_RETRY_CAP = 30.0
"""Default cap on a point's *total* retry-backoff sleep, seconds
(``ADASSURE_RETRY_CAP``)."""

_RNG = random.Random()
"""Process-local jitter source: seeded per process, so a fleet of workers
that fails simultaneously does not retry in lockstep."""


def build_grid(
    scenarios,
    controllers,
    attacks,
    seeds,
    intensity: float = 1.0,
    onset: float = 15.0,
    duration: float | None = None,
) -> list[tuple]:
    """The canonical point list (scenario-major, seed-minor).

    Shared by :func:`~repro.experiments.runner.run_grid` and the
    distributed :class:`~repro.experiments.distributed.GridSpec`, so a
    worker on another host enumerates byte-identical point tuples (and
    therefore identical cache keys) from the serialized campaign spec.
    """
    return [
        (scenario, controller, attack, float(intensity), int(seed),
         float(onset), None if duration is None else float(duration))
        for scenario in scenarios
        for controller in controllers
        for attack in attacks
        for seed in seeds
    ]


def retry_cap(cap: float | None = None) -> float:
    """Per-point total backoff budget: argument > env > default."""
    if cap is None:
        env = os.environ.get("ADASSURE_RETRY_CAP")
        if env:
            try:
                cap = float(env)
            except ValueError:
                cap = None
    if cap is None:
        cap = DEFAULT_RETRY_CAP
    return max(float(cap), 0.0)


def retry_delay(failures: int, slept: float, *, base: float | None = None,
                cap: float | None = None, rng=None) -> float:
    """Jittered, capped exponential backoff before retry ``failures``.

    ``base * 2**(failures-1)`` scaled by a uniform jitter in ``[0.5, 1.5)``
    so N workers that hit the same transient fault (an NFS blip on the
    shared cache, a briefly unreachable store) do not retry in lockstep
    and re-create the stampede that failed them.  The *total* sleep a
    single point may accumulate across its retries is capped
    (``slept`` is the accumulated sleep so far): past the cap, retries
    proceed immediately rather than stretching the campaign tail.
    """
    if base is None:
        from repro.experiments import runner
        base = runner._RETRY_BACKOFF
    delay = base * (2 ** (max(failures, 1) - 1))
    delay *= 0.5 + (rng if rng is not None else _RNG).random()
    remaining = retry_cap(cap) - slept
    return max(min(delay, remaining), 0.0)


# ---------------------------------------------------------------------------
# Scheduler: how pending points become shards
# ---------------------------------------------------------------------------

class Scheduler(ABC):
    """Partitions a pending point list into executor-sized shards."""

    @abstractmethod
    def shards(self, points: list[tuple]) -> list[list[tuple]]:
        """Non-empty, non-overlapping shards covering ``points`` in order."""


class SingleShardScheduler(Scheduler):
    """Everything in one shard — the serial executor's natural unit."""

    def shards(self, points: list[tuple]) -> list[list[tuple]]:
        return [list(points)] if points else []


class ChunkScheduler(Scheduler):
    """Pool-task chunks: ``$ADASSURE_CHUNK`` or a load-balance heuristic.

    Chunks amortize per-task pickle/dispatch overhead but must stay small
    enough that every worker gets several (load balancing, and a lost
    chunk costs little).  Four chunks per worker, capped at 8 points
    each; small grids keep chunk size 1.
    """

    def __init__(self, n_workers: int):
        self.n_workers = max(int(n_workers), 1)
        self.chunk_size = 1

    def shards(self, points: list[tuple]) -> list[list[tuple]]:
        size = None
        env = os.environ.get("ADASSURE_CHUNK")
        if env:
            try:
                size = max(int(env), 1)
            except ValueError:
                size = None
        if size is None:
            size = max(1, min(8, len(points) // (4 * self.n_workers)))
        self.chunk_size = size
        return [points[i:i + size] for i in range(0, len(points), size)]


class StripedScheduler(Scheduler):
    """Contiguous stripes of ``shard_points`` — the distributed claim unit.

    Contiguous (rather than round-robin) slices keep batch-compatible
    neighbours together, so a worker that runs its shard through the
    lockstep engine still finds full groups.
    """

    def __init__(self, shard_points: int):
        self.shard_points = max(int(shard_points), 1)

    def shards(self, points: list[tuple]) -> list[list[tuple]]:
        return [points[i:i + self.shard_points]
                for i in range(0, len(points), self.shard_points)]


# ---------------------------------------------------------------------------
# ResultStore: the shared commit point
# ---------------------------------------------------------------------------

class ResultStore(ABC):
    """Where completed points become durable (and duplicates collapse)."""

    @abstractmethod
    def resolve(self, point: tuple):
        """``(GridRun, source)`` for an already-known point, else ``None``.

        ``source`` is ``"memo"`` or ``"disk"`` so the caller can account
        hits per layer.
        """

    @abstractmethod
    def commit(self, point: tuple, run) -> None:
        """Persist one completed point (idempotent, atomic on disk)."""

    @abstractmethod
    def quarantine(self, point: tuple, error: str) -> None:
        """Ledger a point that exhausted its retries."""

    def close(self) -> None:
        """Release any campaign-level resources (leases)."""


class CacheResultStore(ResultStore):
    """Memo + :class:`~repro.experiments.cache.RunCache` +
    :class:`~repro.experiments.cache.CheckpointManifest` as one commit point.

    This is the object that makes every executor interchangeable: a point
    committed here is visible to the in-process memo, to every other
    process sharing the cache directory (the distributed workers' common
    store), and to the campaign's resume ledger — in that order, so a
    crash between steps loses bookkeeping, never results.
    """

    def __init__(self, cache, catalog: str | None, manifest,
                 memo_get: Callable, memo_put: Callable):
        self.cache = cache
        self.catalog = catalog
        self.manifest = manifest
        self._memo_get = memo_get
        self._memo_put = memo_put

    # -- keys -----------------------------------------------------------
    def key(self, point: tuple) -> str | None:
        if self.cache is None:
            return None
        from repro.experiments.cache import cache_key
        return cache_key(*point, catalog=self.catalog)

    def contains(self, point: tuple) -> bool:
        key = self.key(point)
        return key is not None and self.cache.contains(key)

    # -- ResultStore ----------------------------------------------------
    def resolve(self, point: tuple):
        run = self._memo_get(point)
        if run is not None:
            if self.manifest is not None:
                self.manifest.complete(point)
            return run, "memo"
        run = self.load(point)
        if run is not None:
            self._memo_put(point, run)
            if self.manifest is not None:
                self.manifest.complete(point)
            return run, "disk"
        return None

    def load(self, point: tuple):
        """Disk-only lookup (no memo, no manifest side effects)."""
        if self.cache is None:
            return None
        entry = self.cache.load(self.key(point))
        if entry is None:
            return None
        from repro.experiments.runner import GridRun
        result, report, diagnosis = entry
        return GridRun(
            scenario=point[0], controller=point[1], attack=point[2],
            intensity=point[3], seed=point[4],
            result=result, report=report, diagnosis=diagnosis,
        )

    def commit(self, point: tuple, run) -> None:
        self._memo_put(point, run)
        if self.cache is not None:
            # Result-commit-before-ledger-update: the atomic cache write
            # is the point's durability moment; everything after is
            # bookkeeping a crash may lose without losing work.
            self.cache.store(self.key(point), run.result, run.report,
                             run.diagnosis)
        if self.manifest is not None:
            self.manifest.complete(point)

    def quarantine(self, point: tuple, error: str) -> None:
        if self.manifest is not None:
            self.manifest.quarantine(point, error)

    def close(self) -> None:
        if self.manifest is not None:
            self.manifest.release()


class ScoredResultStore(ResultStore):
    """Memo + :class:`~repro.experiments.cache.RunCache` commit point for
    *params-keyed* off-grid runs.

    :class:`CacheResultStore` addresses grid points by their grid tuple;
    this sibling addresses everything the cartesian grid cannot express —
    the E10–E13 extension configurations (via
    :func:`~repro.experiments.runner.run_scored`) and the counterfactual
    probe fleet (:mod:`repro.experiments.counterfactual`) — by a canonical
    JSON params dict hashed through
    :func:`~repro.experiments.cache.cache_key_params`.  Same layers, same
    contract: a commit is atomic and content-addressed, so re-running a
    probe anywhere that shares the cache directory (a pool worker, a
    distributed fleet member) collapses to one entry — exactly-once by
    construction, not by coordination.

    A "point" here is the params dict itself; stored values are
    ``(RunResult, CheckReport)`` pairs (diagnosis is knowledge-base
    dependent and recomputed by callers).
    """

    def __init__(self, cache, memo_get: Callable, memo_put: Callable,
                 catalog: str | None = None):
        self.cache = cache
        self.catalog = catalog
        self._memo_get = memo_get
        self._memo_put = memo_put

    # -- keys -----------------------------------------------------------
    @staticmethod
    def canonical(params: dict) -> str:
        import json
        return json.dumps(params, sort_keys=True, separators=(",", ":"))

    def memo_key(self, params: dict) -> tuple:
        return ("scored", self.canonical(params))

    def key(self, params: dict) -> str | None:
        if self.cache is None:
            return None
        from repro.experiments.cache import cache_key_params
        return cache_key_params(params, catalog=self.catalog)

    # -- ResultStore ----------------------------------------------------
    def resolve(self, params: dict):
        pair = self._memo_get(self.memo_key(params))
        if pair is not None:
            return pair, "memo"
        if self.cache is None:
            return None
        entry = self.cache.load(self.key(params))
        if entry is None:
            return None
        result, report, _diagnosis = entry
        pair = (result, report)
        self._memo_put(self.memo_key(params), pair)
        return pair, "disk"

    def commit(self, params: dict, pair) -> None:
        self._memo_put(self.memo_key(params), pair)
        if self.cache is not None:
            result, report = pair
            key = self.key(params)
            self.cache.store(key, result, report, None)
            # Sidecar ledger: lets `adassure explain <key>` reverse-map
            # off-grid entries back to their params dict.
            self.cache.record_params(key, params)

    def quarantine(self, params: dict, error: str) -> None:
        """Off-grid runs keep no campaign ledger; failures raise to the
        caller instead of being quarantined."""


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class Executor(ABC):
    """Runs ``(point, failures)`` work items, merging completions.

    ``merge(point, run, phases)`` is called for every completed point as
    it finishes (the incremental checkpoint).  The return value is the
    leftover items — points this executor could not finish, with their
    accumulated failure counts — which the caller hands to the next
    executor in the chain (ultimately :class:`SerialExecutor`, which
    owns retries and quarantine and never leaves leftovers).
    """

    name = "executor"

    @abstractmethod
    def execute(self, items: list[tuple], merge, stats,
                quarantine=None) -> list[tuple]:
        """items/return: ``[(point, failures), ...]``."""


class BatchExecutor(Executor):
    """Lockstep prepass: compatible groups through the array-native engine.

    Groups by ``(scenario, duration)`` — the compatibility key the batch
    engine requires — capped at the configured lane count.  Any group the
    engine rejects falls back *whole* to the next executor; singleton
    groups skip the engine entirely.
    """

    name = "batch"

    def execute(self, items, merge, stats, quarantine=None):
        from repro.experiments import runner
        from repro.sim.batch.controllers import dare_memo_counters
        dare0 = dare_memo_counters()
        points = [point for point, _ in items]
        groups: dict[tuple, list[tuple]] = {}
        for point in points:
            groups.setdefault((point[0], point[6]), []).append(point)
        cap = runner._batch_lanes()
        leftover: list[tuple] = []
        for group in groups.values():
            for i in range(0, len(group), cap):
                chunk = group[i:i + cap]
                if len(chunk) < 2:
                    leftover.extend((p, 0) for p in chunk)
                    continue
                try:
                    runner._execute_batch(chunk, merge)
                except Exception:
                    stats.batch_fallbacks += 1
                    leftover.extend((p, 0) for p in chunk)
                else:
                    stats.batch_groups += 1
                    stats.batch_points += len(chunk)
        dare1 = dare_memo_counters()
        stats.dare_memo_hits += dare1["hits"] - dare0["hits"]
        stats.dare_memo_solves += dare1["solves"] - dare0["solves"]
        return leftover


class PoolExecutor(Executor):
    """Crash-tolerant single-host ``ProcessPoolExecutor`` fan-out.

    The pool half of the fault-tolerance contract: a chunk that exceeds
    its wall-clock budget is abandoned (its worker may be hung, so the
    pool is dropped without joining it), a point that raises comes back
    with one failure on its ledger, and a pool collapse
    (:class:`BrokenProcessPool` — a worker OOM-killed or dying mid-task)
    returns every unfinished point.  Leftovers go to the serial path,
    which owns retries and quarantine.
    """

    name = "pool"

    def __init__(self, n_workers: int, timeout: float | None = None):
        self.n_workers = max(int(n_workers), 1)
        self.timeout = timeout

    def execute(self, items, merge, stats, quarantine=None):
        from repro.experiments import runner
        points = [point for point, _ in items]
        scheduler = ChunkScheduler(self.n_workers)
        chunks = scheduler.shards(points)
        stats.chunk_size = scheduler.chunk_size
        leftover: list[tuple] = []
        abandoned = False
        pool = ProcessPoolExecutor(max_workers=self.n_workers)

        def merge_outcomes(outcomes: list[tuple]) -> None:
            for point, run, phases, error in outcomes:
                if error is None:
                    merge(point, run, phases)
                else:
                    leftover.append((point, 1))

        try:
            futures = [(pool.submit(runner._execute_chunk, chunk), chunk)
                       for chunk in chunks]
            for index, (future, chunk) in enumerate(futures):
                budget = (None if self.timeout is None
                          else self.timeout * len(chunk))
                try:
                    outcomes = future.result(timeout=budget)
                except FutureTimeout:
                    stats.timeouts += 1
                    leftover.extend((point, 0) for point in chunk)
                    abandoned = True
                    continue
                except BrokenProcessPool:
                    stats.pool_failures += 1
                    for late_future, late_chunk in futures[index:]:
                        if (late_future.done() and not late_future.cancelled()
                                and late_future.exception() is None):
                            merge_outcomes(late_future.result())
                        else:
                            leftover.extend((p, 0) for p in late_chunk)
                    break
                except Exception:
                    # Chunk-level failure (e.g. the result failed to
                    # pickle): every point gets one failure on its ledger.
                    leftover.extend((point, 1) for point in chunk)
                    continue
                merge_outcomes(outcomes)
        finally:
            # A hung worker must not hang the campaign: once a chunk has
            # been abandoned, drop the pool without waiting for it.
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        return leftover


class SerialExecutor(Executor):
    """The terminal executor: bounded retry + jittered backoff + quarantine.

    Each point gets ``retries`` re-executions beyond its first attempt
    (failures inherited from earlier executors count against the budget),
    with jittered exponential backoff between attempts
    (:func:`retry_delay`) whose accumulated sleep is capped per point
    (``ADASSURE_RETRY_CAP``) so a flaky tail cannot stretch a campaign
    indefinitely.  A point that exhausts the budget is quarantined —
    recorded in ``stats`` and via ``quarantine`` — instead of aborting
    the campaign.  Never leaves leftovers.
    """

    name = "serial"

    def __init__(self, retries: int):
        self.retries = max(int(retries), 0)

    def execute(self, items, merge, stats, quarantine=None):
        from repro.experiments import runner
        for point, failures in items:
            slept = 0.0
            while True:
                if failures:
                    stats.retries += 1
                    delay = retry_delay(failures, slept)
                    slept += delay
                    if delay > 0.0:
                        time.sleep(delay)
                try:
                    merge(*runner._execute_point(point))
                    break
                except Exception as exc:
                    failures += 1
                    if failures > self.retries:
                        error = f"{type(exc).__name__}: {exc}"
                        stats.quarantined.append((point, error))
                        if quarantine is not None:
                            quarantine(point, error)
                        break
        return []
