"""2-D geometry substrate used by the simulator, controllers and assertions.

The package provides the small set of geometric primitives an autonomous
driving control stack needs:

* :mod:`repro.geom.vec` — immutable 2-D vectors and planar poses.
* :mod:`repro.geom.angles` — angle normalization and circular statistics.
* :mod:`repro.geom.polyline` — arc-length parametrized polylines with
  projection, interpolation and curvature queries (the route primitive).
* :mod:`repro.geom.routes` — constructors for the reference routes used by
  the evaluation scenarios (straight, arc, s-curve, slalom, urban loop).
"""

from repro.geom.angles import (
    angle_diff,
    circular_mean,
    normalize_angle,
    unwrap_angles,
)
from repro.geom.polyline import PathSample, Polyline, Projection
from repro.geom.routes import (
    arc_route,
    lane_change_route,
    s_curve_route,
    slalom_route,
    straight_route,
    urban_loop_route,
)
from repro.geom.vec import Pose, Vec2

__all__ = [
    "Vec2",
    "Pose",
    "normalize_angle",
    "angle_diff",
    "unwrap_angles",
    "circular_mean",
    "Polyline",
    "Projection",
    "PathSample",
    "straight_route",
    "arc_route",
    "s_curve_route",
    "slalom_route",
    "lane_change_route",
    "urban_loop_route",
]
