"""Bench E8 — Table 5: assertion-set ablation for diagnosis."""

from conftest import run_and_print

from repro.experiments import build_assertion_ablation


def test_e8_assertion_ablation(benchmark, quick_config):
    table = run_and_print(benchmark, build_assertion_ablation, quick_config)
    top1 = [int(r[3].split("/")[0]) for r in table.rows]
    # Paper-shape claim: the full catalog diagnoses at least as well as
    # the behaviour-only subset, and strictly better somewhere along the
    # staged growth.
    assert top1[-1] >= top1[0]
    assert top1[-1] > top1[0] or top1[0] == int(table.rows[0][2].split("/")[1])
