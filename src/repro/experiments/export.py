"""Export experiment tables to CSV and Markdown.

The text tables are the canonical artifact; these exporters feed the
numbers into spreadsheets and papers without re-running the grids.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path

from repro.experiments.tables import Table

__all__ = ["table_to_csv", "table_to_markdown", "save_tables"]


def table_to_csv(table: Table, path: str | Path) -> None:
    """Write one table as CSV (title and notes as ``#`` comment lines)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as f:
        f.write(f"# {table.title}\n")
        writer = csv.writer(f)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
        for note in table.notes:
            f.write(f"# note: {note}\n")


def table_to_markdown(table: Table) -> str:
    """Render one table as GitHub-flavored Markdown."""
    def esc(cell: str) -> str:
        return cell.replace("|", "\\|")

    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(esc(c) for c in table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(esc(c) for c in row) + " |")
    for note in table.notes:
        lines.append("")
        lines.append(f"*{note}*")
    return "\n".join(lines) + "\n"


def _slug(title: str) -> str:
    """A filesystem-safe slug from a table title."""
    head = title.split(":")[0].strip().lower()
    return re.sub(r"[^a-z0-9]+", "_", head).strip("_") or "table"


def save_tables(tables: list[Table] | Table, directory: str | Path,
                formats: tuple[str, ...] = ("csv", "md")) -> list[Path]:
    """Save one or many tables under ``directory``; returns written paths.

    Args:
        tables: the table(s) to export.
        directory: created if missing.
        formats: any of ``csv``, ``md``.
    """
    if isinstance(tables, Table):
        tables = [tables]
    unknown = set(formats) - {"csv", "md"}
    if unknown:
        raise ValueError(f"unknown export formats: {sorted(unknown)}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    used: set[str] = set()
    for table in tables:
        slug = _slug(table.title)
        if slug in used:
            slug = f"{slug}_{len(used)}"
        used.add(slug)
        if "csv" in formats:
            path = directory / f"{slug}.csv"
            table_to_csv(table, path)
            written.append(path)
        if "md" in formats:
            path = directory / f"{slug}.md"
            path.write_text(table_to_markdown(table), encoding="utf-8")
            written.append(path)
    return written
