"""Tests for the CARLA-style facade."""

import math

import pytest

from repro.carla_lite import SensorActor, Transform, VehicleControl, World


class TestVehicleControl:
    def test_validation(self):
        with pytest.raises(ValueError):
            VehicleControl(throttle=1.5)
        with pytest.raises(ValueError):
            VehicleControl(steer=-2.0)
        with pytest.raises(ValueError):
            VehicleControl(brake=-0.1)


class TestWorldLifecycle:
    def test_tick_requires_vehicle(self):
        with pytest.raises(RuntimeError):
            World().tick()

    def test_single_vehicle(self):
        world = World()
        world.spawn_vehicle(Transform())
        with pytest.raises(RuntimeError):
            world.spawn_vehicle(Transform())

    def test_sensor_requires_vehicle(self):
        with pytest.raises(RuntimeError):
            World().spawn_sensor("sensor.other.gnss")

    def test_unknown_sensor_type(self):
        world = World()
        world.spawn_vehicle(Transform())
        with pytest.raises(ValueError):
            world.spawn_sensor("sensor.camera.rgb")

    def test_frames_and_time_advance(self):
        world = World(dt=0.1)
        world.spawn_vehicle(Transform())
        assert world.tick() == 1
        assert world.tick() == 2
        assert world.time == pytest.approx(0.2)


class TestDriving:
    def test_throttle_moves_vehicle(self):
        world = World(dt=0.05)
        ego = world.spawn_vehicle(Transform(0, 0, 0))
        for _ in range(100):
            ego.apply_control(VehicleControl(throttle=0.5))
            world.tick()
        assert ego.get_transform().x > 1.0
        assert ego.get_speed() > 0.0

    def test_carla_steer_sign_convention(self):
        # CARLA: positive steer turns right (negative yaw in our frame).
        world = World(dt=0.05)
        ego = world.spawn_vehicle(Transform(0, 0, 0))
        for _ in range(100):
            ego.apply_control(VehicleControl(throttle=0.5, steer=0.5))
            world.tick()
        assert ego.get_transform().yaw < -0.05

    def test_brake_stops_vehicle(self):
        world = World(dt=0.05)
        ego = world.spawn_vehicle(Transform())
        for _ in range(100):
            ego.apply_control(VehicleControl(throttle=1.0))
            world.tick()
        for _ in range(200):
            ego.apply_control(VehicleControl(brake=1.0))
            world.tick()
        assert ego.get_speed() == pytest.approx(0.0, abs=0.05)

    def test_velocity_vector_matches_heading(self):
        world = World(dt=0.05)
        ego = world.spawn_vehicle(Transform(0, 0, math.pi / 2))
        for _ in range(50):
            ego.apply_control(VehicleControl(throttle=0.5))
            world.tick()
        vx, vy = ego.get_velocity()
        assert vy > abs(vx)


class TestSensorActors:
    def test_listen_receives_measurements(self):
        world = World(dt=0.05)
        ego = world.spawn_vehicle(Transform())
        gps = world.spawn_sensor("sensor.other.gnss", parent=ego)
        fixes = []
        gps.listen(fixes.append)
        for _ in range(40):  # 2 s
            world.tick()
        assert len(fixes) == 20  # 10 Hz GPS

    def test_stop_stops_delivery(self):
        world = World(dt=0.05)
        world.spawn_vehicle(Transform())
        imu = world.spawn_sensor("sensor.other.imu")
        readings = []
        imu.listen(readings.append)
        world.tick()
        imu.stop()
        world.tick()
        assert len(readings) == 1
        assert not imu.is_listening

    def test_listen_validates_callable(self):
        with pytest.raises(TypeError):
            SensorActor("x").listen("not callable")  # type: ignore[arg-type]

    def test_world_determinism(self):
        def run():
            world = World(dt=0.05, seed=9)
            ego = world.spawn_vehicle(Transform())
            gps = world.spawn_sensor("sensor.other.gnss")
            fixes = []
            gps.listen(fixes.append)
            for _ in range(20):
                ego.apply_control(VehicleControl(throttle=0.3))
                world.tick()
            return [(f.x, f.y) for f in fixes]

        assert run() == run()
