"""Tests for repro.core.verdicts."""

import pytest

from repro.core.verdicts import AssertionSummary, CheckReport, Violation


def violation(aid="A1", t_start=10.0, t_end=12.0, margin=-0.5):
    return Violation(assertion_id=aid, name=aid, category="behaviour",
                     t_start=t_start, t_end=t_end, worst_margin=margin)


def summary(aid="A1", fired=True, first_t=10.0, total=2.0, worst=-0.5,
            episodes=1):
    return AssertionSummary(assertion_id=aid, name=aid, category="behaviour",
                            fired=fired, episodes=episodes,
                            first_violation_t=first_t,
                            total_violation_time=total, worst_margin=worst)


class TestViolation:
    def test_duration_and_severity(self):
        v = violation()
        assert v.duration == pytest.approx(2.0)
        assert v.severity == pytest.approx(0.5)

    def test_severity_clamped_nonnegative(self):
        assert violation(margin=0.3).severity == 0.0


class TestAssertionSummaryStrength:
    def test_not_fired_zero(self):
        assert summary(fired=False, first_t=None, total=0.0, worst=0.5,
                       episodes=0).strength == 0.0

    def test_deep_violation_strong(self):
        deep = summary(worst=-1.5, total=5.0, episodes=3).strength
        shallow = summary(worst=-0.05, total=0.1, episodes=1).strength
        assert deep > shallow
        assert deep <= 1.0
        assert shallow >= 0.25  # any fired assertion carries base evidence


class TestCheckReport:
    def make_report(self):
        return CheckReport(
            scenario="s", controller="c", attack_label="a", duration=60.0,
            violations=[violation("A2", 20.0, 22.0), violation("A1", 10.0, 12.0)],
            summaries={
                "A1": summary("A1", first_t=10.0),
                "A2": summary("A2", first_t=20.0),
                "A3": summary("A3", fired=False, first_t=None, total=0.0,
                              worst=0.4, episodes=0),
            },
        )

    def test_fired_ids_ordered_by_time(self):
        assert self.make_report().fired_ids == ["A1", "A2"]

    def test_any_fired(self):
        assert self.make_report().any_fired

    def test_first_violation_time(self):
        report = self.make_report()
        assert report.first_violation_time() == 10.0
        assert report.first_violation_time("A2") == 20.0
        assert report.first_violation_time("A3") is None

    def test_detection_latency(self):
        report = self.make_report()
        assert report.detection_latency(onset=15.0) == pytest.approx(5.0)
        assert report.detection_latency(onset=15.0, assertion_id="A1") is None
        assert report.detection_latency(onset=25.0) is None

    def test_pre_onset_violations_ignored(self):
        report = self.make_report()
        # A1 fired at t=10; with onset=11 only A2 (t=20) counts.
        assert report.detection_latency(onset=11.0) == pytest.approx(9.0)

    def test_evidence_vector(self):
        ev = self.make_report().evidence()
        assert ev["A1"] > 0.0
        assert ev["A3"] == 0.0
