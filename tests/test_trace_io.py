"""Tests for repro.trace.io: JSONL/CSV round trips."""

import pytest

from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.schema import TraceMeta

from conftest import make_trace


def sample_trace():
    def mutate(step, record):
        if step % 3 == 0:
            return record.replace(gps_fresh=False, attack_active=True,
                                  attack_name="gps_bias", attack_channel="gps")
        return record

    return make_trace(
        25,
        meta=TraceMeta(scenario="s_curve", controller="mpc",
                       attack="gps_bias", seed=11, dt=0.05,
                       route_length=321.5, extra={"note": "test"}),
        mutate=mutate,
    )


class TestJsonl:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        back = read_trace_jsonl(path)
        assert len(back) == len(trace)
        assert back.meta.to_dict() == trace.meta.to_dict()
        for a, b in zip(trace, back):
            assert a == b

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"step": 0}\n')
        with pytest.raises(ValueError, match="metadata"):
            read_trace_jsonl(path)

    def test_corrupt_record_reports_line(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        lines[3] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":4"):
            read_trace_jsonl(path)

    def test_missing_channel_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"meta": {}}\n{"step": 0, "t": 0.0}\n')
        with pytest.raises(ValueError, match="missing channel"):
            read_trace_jsonl(path)


class TestCsv:
    def test_roundtrip_exact(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert len(back) == len(trace)
        assert back.meta.scenario == "s_curve"
        for a, b in zip(trace, back):
            assert a == b

    def test_bool_fields_preserved(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert [r.gps_fresh for r in back] == [r.gps_fresh for r in trace]
        assert [r.attack_active for r in back] == [
            r.attack_active for r in trace
        ]

    def test_wrong_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="columns"):
            read_trace_csv(path)
