"""Compass/heading attacks: rotated absolute-heading messages."""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.sim.sensors.compass import CompassReading

__all__ = ["CompassOffsetAttack"]


class CompassOffsetAttack(Attack):
    """Adds a constant rotation to reported headings (magnetic spoof)."""

    name = "compass_offset"
    channel = "compass"

    def __init__(self, offset: float = 0.2, window: AttackWindow | None = None):
        super().__init__(window)
        self.offset = offset

    def on_compass(self, t: float, reading: CompassReading) -> CompassReading:
        return reading.rotated(self.offset)
