"""Sensor models: rate-scheduled, noisy views of the ground truth.

Each sensor samples the vehicle's true state at its own rate, corrupts it
with a configurable noise model, and produces a typed reading.  Attacks act
on these readings *after* the sensor and *before* the estimator — exactly
the man-in-the-middle position of the spoofing attacks the paper debugs.
"""

from repro.sim.sensors.base import Sensor, SensorConfig
from repro.sim.sensors.compass import Compass, CompassReading
from repro.sim.sensors.gps import Gps, GpsFix
from repro.sim.sensors.imu import Imu, ImuReading
from repro.sim.sensors.odometry import Odometry, OdometryReading
from repro.sim.sensors.suite import SensorReadings, SensorSuite, SensorSuiteConfig

__all__ = [
    "Sensor",
    "SensorConfig",
    "Gps",
    "GpsFix",
    "Imu",
    "ImuReading",
    "Odometry",
    "OdometryReading",
    "Compass",
    "CompassReading",
    "SensorSuite",
    "SensorSuiteConfig",
    "SensorReadings",
]
