"""Persistent, content-addressed on-disk cache for scored grid runs.

Every grid point the runner executes is a pure function of its inputs
(scenario, controller, attack, intensity, seed, onset, duration) *and* of
the code that scores it — the simulator is fully seeded and the assertion
catalog deterministic.  That makes runs content-addressable: the cache
key is a SHA-256 over the canonical input tuple salted with the package
version and the catalog fingerprint, so a cache populated by one catalog
revision is silently invalidated by the next.

Layout (under ``$ADASSURE_CACHE_DIR`` or ``~/.cache/adassure``)::

    <root>/v2/ab/<key>.trace.npz        version-stamped columnar binary
                                        trace (``repro.trace.io``;
                                        inspectable via `adassure check`)
    <root>/v2/ab/<key>.scored.pkl       pickled scenario + metrics +
                                        outcome + CheckReport + diagnosis

Traces are stored as the binary bytes themselves — no re-compression
wrapper — so a cache hit deserializes straight into the columnar view
the vectorized checker consumes.  Loading sniffs the payload format, so
a cache directory can in principle hold older JSONL entries too (the
``v2`` root isolates this layout from ``v1`` regardless).

Entries are written atomically (tmp file + rename) so concurrent workers
and concurrent campaigns can share a cache directory.  Any unreadable or
truncated entry is treated as a miss, deleted, and re-run — a corrupt
cache can cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.core.spec import catalog_fingerprint
from repro.core.verdicts import CheckReport
from repro.locking import FileLease
from repro.sim.engine import RunResult
from repro.trace.io import (
    TraceTruncationWarning,
    trace_from_bytes,
    trace_to_npz_bytes,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheCounters",
    "CheckpointManifest",
    "RunCache",
    "cache_key",
    "cache_key_params",
    "default_cache_dir",
    "grid_identity",
]

CACHE_FORMAT_VERSION = 2
"""Bumped whenever the on-disk entry layout changes.

v2: traces stored as columnar ``.trace.npz`` binary instead of gzip'd
JSONL (smaller entries, much faster loads, no double compression).
"""

_TRACE_SUFFIX = ".trace.npz"
_SCORED_SUFFIX = ".scored.pkl"


def default_cache_dir() -> Path:
    """``$ADASSURE_CACHE_DIR``, else ``~/.cache/adassure``."""
    env = os.environ.get("ADASSURE_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "adassure"


def cache_key(
    scenario: str,
    controller: str,
    attack: str,
    intensity: float,
    seed: int,
    onset: float,
    duration: float | None,
    *,
    catalog: str | None = None,
) -> str:
    """Content hash of one grid point.

    The salt covers everything a scored run depends on besides the grid
    coordinates: the entry format, the package version (code salt), and
    the effective assertion-catalog configuration.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": repro.__version__,
        "catalog": catalog if catalog is not None else catalog_fingerprint(),
        "scenario": scenario,
        "controller": controller,
        "attack": attack,
        "intensity": float(intensity),
        "seed": int(seed),
        "onset": float(onset),
        "duration": None if duration is None else float(duration),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


def cache_key_params(params: dict, *, catalog: str | None = None) -> str:
    """Content hash of an *off-grid* run described by a params dict.

    For runs the cartesian grid cannot key (gated estimators, concurrent
    attack pairs, injected controller defects, car-following scenarios).
    ``params`` must be JSON-serializable and include every knob the run
    depends on; the same version/catalog salt as :func:`cache_key`
    applies.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": repro.__version__,
        "catalog": catalog if catalog is not None else catalog_fingerprint(),
        "params": params,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


def grid_identity(grid: list[tuple]) -> str:
    """Stable campaign id: a hash of the full point list, version-salted.

    Shared by the checkpoint manifest, the distributed shard board and
    the serialized grid spec, so every process that enumerates the same
    campaign — coordinator, resuming run, worker on another host —
    agrees on one ledger/board identity.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": repro.__version__,
        "grid": [list(point) for point in grid],
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:40]


@dataclass(slots=True)
class CacheCounters:
    """Hit/miss accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    """Entries that existed but failed to load (treated as misses)."""

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors}


class RunCache:
    """Persistent store of scored runs, keyed by :func:`cache_key`.

    The value side is the ``(result, report, diagnosis)`` triple the grid
    runner produces: the trace travels as the columnar binary format
    (exact float round-trip), everything derived (scenario object,
    metrics, outcome, check report, diagnosis) as one pickle.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = (Path(root).expanduser() if root is not None
                     else default_cache_dir()) / f"v{CACHE_FORMAT_VERSION}"
        self.counters = CacheCounters()

    @staticmethod
    def from_env() -> "RunCache | None":
        """The process-wide cache, or ``None`` when disabled.

        ``ADASSURE_CACHE=0`` (or ``off``/``false``) turns the disk layer
        off entirely; ``ADASSURE_CACHE_DIR`` relocates it.
        """
        flag = os.environ.get("ADASSURE_CACHE", "1").strip().lower()
        if flag in ("0", "off", "false", "no"):
            return None
        return RunCache()

    # -- path helpers ---------------------------------------------------
    def _shard(self, key: str) -> Path:
        return self.root / key[:2]

    def _trace_path(self, key: str) -> Path:
        return self._shard(key) / (key + _TRACE_SUFFIX)

    def _scored_path(self, key: str) -> Path:
        return self._shard(key) / (key + _SCORED_SUFFIX)

    def contains(self, key: str) -> bool:
        return self._trace_path(key).exists() and self._scored_path(key).exists()

    # -- load/store -----------------------------------------------------
    def load(self, key: str):
        """``(RunResult, CheckReport, diagnosis)`` or ``None`` on miss.

        Corrupt or partial entries are evicted and reported as misses.
        """
        trace_path = self._trace_path(key)
        scored_path = self._scored_path(key)
        try:
            with warnings.catch_warnings():
                # Entries are written atomically, so a truncated payload
                # here is corruption, not an interrupted write — the
                # salvage path must not quietly serve a shortened trace.
                # (Binary traces already hard-fail on truncation; the
                # filter covers any legacy JSONL payloads the format
                # sniffer accepts.)
                warnings.simplefilter("error", TraceTruncationWarning)
                trace = trace_from_bytes(trace_path.read_bytes())
            with scored_path.open("rb") as f:
                scored = pickle.load(f)
            result = RunResult(
                trace=trace,
                metrics=scored["metrics"],
                outcome=scored["outcome"],
                scenario=scored["scenario"],
                controller_name=scored["controller_name"],
                attack_label=scored["attack_label"],
            )
            report = scored["report"]
            if not isinstance(report, CheckReport):
                raise TypeError("cache entry holds no CheckReport")
            self.counters.hits += 1
            return result, report, scored["diagnosis"]
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except Exception:
            # Truncated write, stale pickle from an old code layout,
            # bit rot: evict and re-simulate rather than crash a campaign.
            self.counters.errors += 1
            self.counters.misses += 1
            self.evict(key)
            return None

    def store(self, key: str, result: RunResult, report: CheckReport,
              diagnosis) -> None:
        """Persist one scored run; atomic, best-effort (IO errors are
        swallowed — the cache is an accelerator, not a database)."""
        try:
            shard = self._shard(key)
            shard.mkdir(parents=True, exist_ok=True)
            scored = {
                "metrics": result.metrics,
                "outcome": result.outcome,
                "scenario": result.scenario,
                "controller_name": result.controller_name,
                "attack_label": result.attack_label,
                "report": report,
                "diagnosis": diagnosis,
            }
            # Store the binary bytes directly: the npz payload is already
            # compressed, so wrapping it in another encoder would only
            # add CPU and size (the v1 layout's double-gzip mistake).
            self._atomic_write(self._trace_path(key),
                               trace_to_npz_bytes(result.trace))
            self._atomic_write(self._scored_path(key),
                               pickle.dumps(scored, protocol=pickle.HIGHEST_PROTOCOL))
            self.counters.stores += 1
        except Exception:
            # Disk full, permissions, an unpicklable report object —
            # storing is an optimization, so fail toward "miss next
            # time", never toward crashing the campaign.  Drop any
            # half-written pair so load() cannot see a torn entry.
            self.counters.errors += 1
            self.evict(key)

    # -- off-grid params ledger -----------------------------------------
    def _params_path(self, key: str) -> Path:
        return self.root / "params" / key[:2] / (key + ".params.json")

    def record_params(self, key: str, params: dict) -> None:
        """Ledger entry mapping an off-grid cache key to its params dict.

        Grid points are reverse-mappable through checkpoint manifests;
        off-grid runs (``run_scored`` / planner / probe entries) have no
        manifest, so the store keeps this sidecar ledger instead —
        :func:`~repro.experiments.counterfactual.resolve_cache_key`
        reads it to make ``adassure explain <key>`` work for them.
        Atomic and best-effort, like :meth:`store`.
        """
        try:
            path = self._params_path(key)
            if path.exists():
                return
            path.parent.mkdir(parents=True, exist_ok=True)
            data = json.dumps(params, sort_keys=True) + "\n"
            self._atomic_write(path, data.encode("utf-8"))
        except Exception:
            self.counters.errors += 1

    def load_params(self, key: str) -> dict | None:
        """The params dict recorded for ``key``, or ``None``."""
        try:
            return json.loads(
                self._params_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def evict(self, key: str) -> None:
        """Drop one entry (both payload files), ignoring races."""
        for path in (self._trace_path(key), self._scored_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    # -- lease/manifest health ------------------------------------------
    def _lease_events_path(self) -> Path:
        return self.root / "checkpoints" / "lease_events.log"

    def log_lease_event(self, kind: str, detail: dict) -> None:
        """Append one lease incident to the campaign directory's log.

        Conflicts are rare, operator-relevant events (a second campaign
        fighting over a ledger, a shard lease stolen mid-run), so they
        are persisted — ``adassure cache stats`` reports the cumulative
        count.  One small JSON line per event; appends of a line this
        size are atomic on POSIX, and the log is best-effort anyway.
        """
        try:
            path = self._lease_events_path()
            path.parent.mkdir(parents=True, exist_ok=True)
            line = json.dumps({"kind": kind, "time": time.time(), **detail})
            with path.open("a", encoding="utf-8") as f:
                f.write(line + "\n")
        except OSError:
            pass

    def lease_event_count(self) -> int:
        """Lease incidents ever logged into this cache directory."""
        try:
            with self._lease_events_path().open("r", encoding="utf-8") as f:
                return sum(1 for line in f if line.strip())
        except OSError:
            return 0

    # -- maintenance ----------------------------------------------------
    def stats(self) -> dict:
        """Entry count and byte footprint of the disk layer."""
        entries = 0
        total_bytes = 0
        if self.root.exists():
            entries = sum(1 for _ in self.root.rglob("*" + _SCORED_SUFFIX))
            total_bytes = sum(p.stat().st_size for p in self.root.rglob("*")
                              if p.is_file())
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "session": self.counters.as_dict(),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = self.stats()["entries"]
        if self.root.exists():
            shutil.rmtree(self.root, ignore_errors=True)
        return removed


class CheckpointManifest:
    """Progress ledger for one grid campaign, persisted under the cache.

    The per-point disk cache already makes an interrupted campaign
    resumable — completed points hit the cache on the next invocation.
    The manifest adds the *campaign-level* record the cache cannot
    express: which grid this was, how far it got, and which points were
    quarantined after exhausting their retries.  ``adassure`` campaigns
    write it incrementally (after every completed point), so a killed
    process leaves an accurate ledger behind.

    Layout: ``<cache root>/checkpoints/<grid id>.json`` where the grid id
    hashes the full point list with the usual version/catalog salt.

    Concurrent campaigns over the *same grid* in the *same cache dir* are
    guarded by an advisory :class:`~repro.locking.FileLease` sidecar
    (``<grid id>.lease``): the first writer owns the ledger, a second
    writer detects the live lease and goes **read-only** — it still runs
    (the per-point disk cache keeps the work shared and consistent) but
    stops flushing the manifest, so the owner's ledger cannot be
    corrupted by interleaved rewrites.  The conflict is surfaced on
    :attr:`lease_conflict` (and by the runner as a warning + stats
    field), never swallowed.  A lease whose heartbeat is older than the
    TTL (``ADASSURE_LEASE_TTL``) is treated as abandoned and taken over.
    """

    def __init__(self, path: Path, grid_id: str, total: int,
                 lease: FileLease | None = None):
        self.path = path
        self.grid_id = grid_id
        self.total = total
        self.completed: list[list] = []
        self.quarantined: list[dict] = []
        self._seen: set[tuple] = set()
        self.lease = lease if lease is not None else FileLease(
            path.with_suffix(".lease"))
        self.lease_conflict = not self.lease.acquire()
        try:
            prior = json.loads(self.path.read_text(encoding="utf-8"))
            if prior.get("grid_id") == grid_id:
                self.completed = list(prior.get("completed", []))
                self.quarantined = list(prior.get("quarantined", []))
                self._seen = {tuple(p) for p in self.completed}
        except (OSError, ValueError):
            pass  # absent or corrupt: start a fresh ledger

    @staticmethod
    def for_grid(cache: "RunCache | None",
                 grid: list[tuple]) -> "CheckpointManifest | None":
        """The manifest for this grid, or ``None`` with the cache off."""
        if cache is None:
            return None
        grid_id = grid_identity(grid)
        path = cache.root / "checkpoints" / (grid_id + ".json")
        manifest = CheckpointManifest(path, grid_id, total=len(grid))
        if manifest.lease_conflict:
            holder = manifest.lease.holder() or {}
            cache.log_lease_event("manifest-lease-conflict", {
                "grid_id": grid_id,
                "holder": holder.get("owner", "<unknown>"),
            })
        return manifest

    @property
    def resumed(self) -> int:
        """Points already ledgered by a previous (interrupted) campaign."""
        return len(self._seen)

    def complete(self, point: tuple) -> None:
        if point in self._seen:
            return
        self._seen.add(point)
        self.completed.append(list(point))
        self.flush()

    def quarantine(self, point: tuple, error: str) -> None:
        self.quarantined.append({"point": list(point), "error": error})
        self.flush()

    def release(self) -> None:
        """Give the manifest's lease back (campaign finished or aborted)."""
        self.lease.release()

    def flush(self) -> None:
        """Best-effort atomic write; IO errors never fail a campaign.

        A manifest that lost the lease race is read-only: flushing would
        interleave two writers' ledgers, so it is skipped entirely (the
        in-memory view still tracks this campaign's own progress).
        """
        if self.lease_conflict:
            return
        self.lease.refresh()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "grid_id": self.grid_id,
                "total": self.total,
                "completed": self.completed,
                "quarantined": self.quarantined,
            }
            tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass
