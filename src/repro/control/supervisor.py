"""Graceful-degradation supervisor for the waypoint follower.

The baseline :class:`~repro.control.follower.WaypointFollower` consumes
whatever the estimator gives it and assumes every sensor channel is
alive — the realistic failure mode exposed by :mod:`repro.faults`.  The
:class:`SupervisedController` wraps a follower with a per-channel
staleness/NaN watchdog and a three-state degradation policy:

* ``normal`` — all channels healthy; commands pass through unchanged.
* ``dead_reckoning`` — a critical localization channel (GPS or compass)
  is lost: the EKF coasts on the surviving channels, the supervisor caps
  the target speed, and a recovery budget starts counting.
* ``safe_stop`` — too many channels lost, or the dead-reckoning budget
  expired without recovery: hold the last healthy steering command and
  decelerate to a halt.  Latched for the rest of the run (a real stack
  would hand off to a human / remote operator here).

The watchdog quarantines two kinds of poisoned readings before they
reach the estimator:

* **NaN payloads** — a NaN that enters a Kalman update poisons the whole
  state vector irreversibly (the unsupervised stack crashes outright on
  a NaN-burst fault), so rejection must happen upstream;
* **repeated samples** — a consecutive reading whose payload is
  bit-identical to the previous one.  Every modeled sensor carries
  continuous noise, so an exact repeat is a stale retransmission (a
  wedged driver), never a fresh measurement.  Arrival-time watchdogs
  are blind to freezes — the messages keep coming — which is exactly
  how a frozen GPS drags an unsupervised estimator hundreds of meters
  off route.

A quarantined reading does not refresh the channel's watchdog, so a
frozen channel times out just like a silent one.

Assertions A21/A22 in :mod:`repro.core.catalog` encode the contract this
supervisor is expected to satisfy; experiment E14 compares supervised
vs. unsupervised stacks across the fault grid.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.control.acc import AccController
from repro.control.base import ControlDecision, make_lateral_controller
from repro.control.estimator import Estimate
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.geom.polyline import Polyline

if TYPE_CHECKING:
    from repro.sim.sensors.compass import CompassReading
    from repro.sim.sensors.gps import GpsFix
    from repro.sim.sensors.imu import ImuReading
    from repro.sim.sensors.odometry import OdometryReading
    from repro.sim.sensors.radar import RadarReading

__all__ = [
    "MODE_NORMAL",
    "MODE_DEAD_RECKONING",
    "MODE_SAFE_STOP",
    "SupervisorConfig",
    "SupervisedController",
    "make_supervised_follower",
]

MODE_NORMAL = "normal"
MODE_DEAD_RECKONING = "dead_reckoning"
MODE_SAFE_STOP = "safe_stop"

_CRITICAL_CHANNELS = ("gps", "compass")
"""Channels whose loss alone degrades localization to dead reckoning."""


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Watchdog timeouts and degradation policy knobs.

    Timeouts are per-channel staleness budgets in seconds, each a few
    nominal sample intervals (GPS/compass 10 Hz, odometry 20 Hz, IMU
    50 Hz) so sensor-rate jitter never trips the watchdog.
    """

    gps_timeout: float = 1.0
    compass_timeout: float = 1.0
    odom_timeout: float = 0.6
    imu_timeout: float = 0.4
    safe_stop_lost: int = 2
    """Simultaneously lost channels that trigger an immediate safe stop."""
    dead_reckoning_budget: float = 5.0
    """Max seconds of dead reckoning before escalating to safe stop."""
    degraded_speed: float = 4.0
    """Target-speed cap while dead reckoning, m/s."""
    safe_stop_decel: float = 3.0
    """Deceleration used by the safe-stop ramp, m/s^2."""

    def __post_init__(self) -> None:
        timeouts = (self.gps_timeout, self.compass_timeout,
                    self.odom_timeout, self.imu_timeout)
        if any(tt <= 0 for tt in timeouts):
            raise ValueError("watchdog timeouts must be positive")
        if self.safe_stop_lost < 1:
            raise ValueError("safe_stop_lost must be >= 1")
        if self.dead_reckoning_budget <= 0 or self.safe_stop_decel <= 0:
            raise ValueError(
                "dead_reckoning_budget and safe_stop_decel must be positive")
        if self.degraded_speed <= 0:
            raise ValueError("degraded_speed must be positive")

    def timeout(self, channel: str) -> float:
        return {
            "gps": self.gps_timeout,
            "compass": self.compass_timeout,
            "odometry": self.odom_timeout,
            "imu": self.imu_timeout,
        }[channel]


def _has_nan(reading) -> bool:
    """True if any payload field of a sensor reading is NaN."""
    for f in dataclasses.fields(reading):
        value = getattr(reading, f.name)
        if isinstance(value, float) and math.isnan(value):
            return True
    return False


def _payload(reading) -> tuple:
    """Measurement fields of a reading, excluding the timestamp.

    Used for repeated-sample detection; the timestamp is excluded so a
    re-stamped replay of the same measurement still counts as a repeat.
    """
    return tuple(getattr(reading, f.name)
                 for f in dataclasses.fields(reading) if f.name != "t")


class SupervisedController:
    """A :class:`WaypointFollower` hardened with a degradation supervisor.

    Drop-in replacement for the follower in the engine loop: the engine
    additionally routes raw sensor readings through
    :meth:`filter_readings` *before* the estimator consumes them, which
    is where the watchdog observes channel health and NaN readings are
    quarantined.
    """

    def __init__(self, follower: WaypointFollower,
                 config: SupervisorConfig | None = None):
        self.follower = follower
        self.config = config or SupervisorConfig()
        self.reset()

    @property
    def name(self) -> str:
        return f"supervised:{self.follower.name}"

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def lost_channels(self) -> tuple[str, ...]:
        return self._lost

    @property
    def safe_stop_since(self) -> float | None:
        """Time the safe stop engaged, or ``None`` if it never did."""
        return self._safe_stop_since

    def reset(self) -> None:
        self.follower.reset()
        self._mode = MODE_NORMAL
        self._lost: tuple[str, ...] = ()
        # The run start counts as "all channels fresh": every sensor
        # delivers within its first sample interval, and seeding the
        # watchdog at -inf would safe-stop the vehicle on the spot.
        self._last_seen = {ch: 0.0 for ch in
                           ("gps", "compass", "odometry", "imu")}
        self._prev_payload: dict[str, tuple | None] = {
            ch: None for ch in ("gps", "compass", "odometry", "imu")}
        self._dr_since: float | None = None
        self._safe_stop_since: float | None = None
        self._held_steer = 0.0

    # ------------------------------------------------------------------
    def filter_readings(
        self,
        t: float,
        *,
        gps: "GpsFix | None" = None,
        imu: "ImuReading | None" = None,
        odom: "OdometryReading | None" = None,
        compass: "CompassReading | None" = None,
        radar: "RadarReading | None" = None,
    ):
        """Watchdog + NaN quarantine over one step's sensor readings.

        Returns the ``(gps, imu, odom, compass, radar)`` tuple with NaN
        readings replaced by ``None``, and advances the degradation
        state machine to its mode for time ``t``.
        """
        checked = {}
        for channel, reading in (("gps", gps), ("imu", imu),
                                 ("odometry", odom), ("compass", compass)):
            if reading is not None and _has_nan(reading):
                reading = None  # quarantined; does not refresh the watchdog
            if reading is not None:
                payload = _payload(reading)
                if payload == self._prev_payload[channel]:
                    # Bit-identical to the previous sample: a stale
                    # retransmission, not a measurement.  Quarantine it
                    # and let the channel age toward its timeout.
                    reading = None
                else:
                    self._prev_payload[channel] = payload
                    self._last_seen[channel] = t
            checked[channel] = reading
        if radar is not None and _has_nan(radar):
            radar = None

        self._lost = tuple(
            ch for ch in ("gps", "compass", "odometry", "imu")
            if t - self._last_seen[ch] > self.config.timeout(ch)
        )
        self._advance_mode(t)
        return (checked["gps"], checked["imu"], checked["odometry"],
                checked["compass"], radar)

    def _advance_mode(self, t: float) -> None:
        if self._mode == MODE_SAFE_STOP:
            return  # latched
        if len(self._lost) >= self.config.safe_stop_lost:
            self._enter_safe_stop(t)
            return
        if any(ch in self._lost for ch in _CRITICAL_CHANNELS):
            if self._dr_since is None:
                self._dr_since = t
            if t - self._dr_since > self.config.dead_reckoning_budget:
                self._enter_safe_stop(t)
            else:
                self._mode = MODE_DEAD_RECKONING
            return
        self._mode = MODE_NORMAL
        self._dr_since = None

    def _enter_safe_stop(self, t: float) -> None:
        self._mode = MODE_SAFE_STOP
        if self._safe_stop_since is None:
            self._safe_stop_since = t

    # ------------------------------------------------------------------
    def decide(self, estimate: Estimate, route: Polyline, dt: float,
               radar: "RadarReading | None" = None) -> ControlDecision:
        """The follower's command, overridden per the degradation mode."""
        decision = self.follower.decide(estimate, route, dt, radar=radar)
        if self._mode == MODE_SAFE_STOP:
            return dataclasses.replace(
                decision,
                steer_cmd=self._held_steer,
                accel_cmd=-self.config.safe_stop_decel,
                target_speed=0.0,
            )
        if self._mode == MODE_DEAD_RECKONING:
            cap = self.config.degraded_speed
            accel_cmd = decision.accel_cmd
            if estimate.v > cap:
                # Bleed speed off instead of letting the PID chase the
                # cruise profile on a coasting estimate.
                accel_cmd = min(accel_cmd, -1.0)
            return dataclasses.replace(
                decision,
                accel_cmd=accel_cmd,
                target_speed=min(decision.target_speed, cap),
            )
        self._held_steer = decision.steer_cmd
        return decision


def make_supervised_follower(
    controller: str,
    profile: SpeedProfile | None = None,
    acc: AccController | None = None,
    config: SupervisorConfig | None = None,
) -> SupervisedController:
    """A supervised follower around a named lateral controller."""
    follower = WaypointFollower(
        make_lateral_controller(controller),
        profile=profile,
        acc=acc,
    )
    return SupervisedController(follower, config=config)
