"""Wheel-odometry attacks: scaled speed messages on the vehicle bus."""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow
from repro.sim.sensors.odometry import OdometryReading

__all__ = ["OdometryScaleAttack"]


class OdometryScaleAttack(Attack):
    """Multiplies reported wheel speed by a constant factor.

    ``scale < 1`` makes the vehicle believe it is slower than it is (the
    PID then overspeeds); ``scale > 1`` causes creeping/stalling.
    """

    name = "odom_scale"
    channel = "odometry"

    def __init__(self, scale: float = 0.7, window: AttackWindow | None = None):
        super().__init__(window)
        if scale < 0:
            raise ValueError("scale must be non-negative")
        self.scale = scale

    def on_odometry(self, t: float, reading: OdometryReading) -> OdometryReading:
        return reading.scaled(self.scale)
