"""Quickstart: simulate an attacked drive, check it, diagnose the cause.

The five-line ADAssure workflow:

1. pick a scenario and a controller,
2. inject an attack (here: a stealthy GPS drift spoof),
3. record the closed-loop trace,
4. run the assertion catalog over the trace,
5. rank root causes from the violation pattern.

Run:  python examples/quickstart.py
"""

from repro import run_scenario, standard_attack, standard_scenarios
from repro.core import (
    check_trace,
    default_catalog,
    diagnose,
    render_check_report,
    render_diagnosis,
)


def main() -> None:
    scenario = standard_scenarios(seed=7)["s_curve"]
    campaign = standard_attack("gps_drift", onset=15.0)

    print(f"driving {scenario.name!r} with pure pursuit; "
          f"injecting {campaign.label!r} at t=15 s ...")
    result = run_scenario(scenario, controller="pure_pursuit",
                          campaign=campaign)

    metrics = result.metrics
    print(f"run finished: mean|cte|={metrics.mean_abs_cte:.2f} m, "
          f"max|cte|={metrics.max_abs_cte:.2f} m, "
          f"goal reached: {metrics.goal_reached}")
    print()

    report = check_trace(result.trace, default_catalog())
    print(render_check_report(report))
    print()

    ranking = diagnose(report)
    print(render_diagnosis(ranking))
    print()
    print(f"injected ground truth: gps_drift -> "
          f"diagnosed: {ranking.top().cause} "
          f"({'correct' if ranking.top().cause == 'gps_drift' else 'WRONG'})")


if __name__ == "__main__":
    main()
