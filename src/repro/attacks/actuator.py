"""Actuator-side attacks: tampering between controller and steering rack."""

from __future__ import annotations

from repro.attacks.base import Attack, AttackWindow

__all__ = ["SteeringOffsetAttack", "SteeringStuckAttack"]


class SteeringOffsetAttack(Attack):
    """Adds a constant offset to the steering command (compromised EPS).

    The controller keeps commanding correct angles; the wheels receive a
    shifted one.  The closed loop partially compensates, which is exactly
    why this fault is hard to spot from behaviour alone and needs the
    actuation-consistency assertion (A16).
    """

    name = "steer_offset"
    channel = "command"

    def __init__(self, offset: float = 0.05, window: AttackWindow | None = None):
        super().__init__(window)
        self.offset = offset

    def on_command(self, t: float, steer: float, accel: float) -> tuple[float, float]:
        return (steer + self.offset, accel)


class SteeringStuckAttack(Attack):
    """Holds the steering at the value seen at attack onset."""

    name = "steer_stuck"
    channel = "command"

    def __init__(self, window: AttackWindow | None = None):
        super().__init__(window)
        self._held: float | None = None

    def reset(self) -> None:
        self._held = None

    def on_command(self, t: float, steer: float, accel: float) -> tuple[float, float]:
        if self._held is None:
            self._held = steer
        return (self._held, accel)
