# Development entry points for the ADAssure reproduction.

.PHONY: install test bench experiments examples clean

install:
	pip install -e . || pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every evaluation table/figure at full size (a few minutes).
experiments:
	python -m repro.cli experiment all | tee experiments_full_output.txt

examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; python $$f > /dev/null && echo "   ok"; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
