"""Assertion base class and authoring combinators.

An assertion is a *stateful margin monitor*: each trace record is mapped to
a normalized margin (``>= 0`` satisfied, ``< 0`` violated, ``None`` not
applicable at this step), and the base class turns the margin stream into
debounced violation *episodes*.  Margins are normalized by the assertion's
threshold, so ``-0.5`` always means "50% beyond the bound" regardless of
the underlying physical unit — which makes severities comparable across
the catalog and keeps the diagnosis engine unit-free.

The same objects serve the online monitor and the offline checker; both
simply call :meth:`TraceAssertion.step` per record and
:meth:`TraceAssertion.finish` at the end.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

from repro.core.verdicts import AssertionSummary, Violation
from repro.trace.schema import TraceRecord

__all__ = [
    "TraceAssertion",
    "BoundAssertion",
    "WindowMeanBoundAssertion",
    "FunctionAssertion",
]


class TraceAssertion(abc.ABC):
    """Base class: margin computation + episode/debounce machinery.

    Args:
        assertion_id: short stable identifier (e.g. ``"A1"``).
        name: human-readable name.
        category: one of ``behaviour``, ``consistency``, ``actuation``,
            ``stability``, ``liveness`` (used by ablations and reports).
        settle_time: seconds at the start of the trace during which the
            assertion is not evaluated (launch transient).
        debounce_on: consecutive violating evaluations required to open an
            episode (suppresses single-sample noise).
        debounce_off: consecutive satisfied evaluations required to close
            an episode.
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        category: str,
        settle_time: float = 0.0,
        debounce_on: int = 3,
        debounce_off: int = 10,
    ):
        if debounce_on < 1 or debounce_off < 1:
            raise ValueError("debounce counts must be >= 1")
        self.assertion_id = assertion_id
        self.name = name
        self.category = category
        self.settle_time = settle_time
        self.debounce_on = debounce_on
        self.debounce_off = debounce_off
        self.bound_scale = 1.0
        self._reset_episode_state()

    def scale_bound(self, factor: float) -> "TraceAssertion":
        """Relax (>1) or tighten (<1) the effective threshold.

        Margins of the form ``1 - value/bound`` transform exactly as
        ``m' = 1 - (1 - m)/factor`` when the bound is scaled by ``factor``;
        the calibrator (:mod:`repro.core.tuning`) uses this to fit nominal
        headroom without knowing each assertion's internal threshold
        attribute.  Returns ``self`` for chaining.
        """
        if factor <= 0:
            raise ValueError("bound_scale factor must be positive")
        self.bound_scale = factor
        return self

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def margin(self, record: TraceRecord) -> float | None:
        """Normalized margin at this record (None = not applicable)."""

    def on_reset(self) -> None:
        """Clear subclass state (called by :meth:`reset`)."""

    def end_margin(self, last_record: TraceRecord | None) -> float | None:
        """Optional end-of-trace check (liveness assertions override).

        A negative return value opens (and closes) a final episode at the
        last record's timestamp.
        """
        return None

    # ------------------------------------------------------------------
    # Engine-facing interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Prepare for a new trace."""
        self._reset_episode_state()
        self.on_reset()

    def step(self, record: TraceRecord) -> Violation | None:
        """Process one record; returns a violation iff an episode *closed*.

        The margin is computed at *every* step so stateful assertions
        observe the full trace; verdicts inside the settle window are
        discarded (launch transient).  Episodes still open when the trace
        ends are closed by :meth:`finish`.
        """
        self._last_step_t = record.t
        m = self.margin(record)
        if record.t < self.settle_time:
            return None
        if m is None:
            return None
        if self.bound_scale != 1.0:
            m = 1.0 - (1.0 - m) / self.bound_scale
        self._evaluated = True
        self._worst_overall = min(self._worst_overall, m)
        if m < 0.0:
            self._bad_streak += 1
            self._good_streak = 0
            if self._episode_start is None and self._bad_streak >= self.debounce_on:
                self._episode_start = record.t
                self._episode_worst = m
            elif self._episode_start is not None:
                self._episode_worst = min(self._episode_worst, m)
            if self._episode_start is None:
                # Remember the depth of a forming episode so debounce does
                # not erase the worst sample.
                self._pending_worst = min(self._pending_worst, m)
        else:
            self._good_streak += 1
            self._bad_streak = 0
            self._pending_worst = 0.0
            if self._episode_start is not None and (
                self._good_streak >= self.debounce_off
            ):
                return self._close_episode(record.t)
        return None

    def finish(self, last_record: TraceRecord | None) -> list[Violation]:
        """Close any open episode and run the end-of-trace check."""
        out: list[Violation] = []
        if self._episode_start is not None:
            # _close_episode records the violation itself.
            out.append(self._close_episode(self._last_step_t))
        if last_record is not None and last_record.t >= self.settle_time:
            end_m = self.end_margin(last_record)
            if end_m is not None:
                self._evaluated = True
                self._worst_overall = min(self._worst_overall, end_m)
                if end_m < 0.0:
                    violation = Violation(
                        assertion_id=self.assertion_id,
                        name=self.name,
                        category=self.category,
                        t_start=last_record.t,
                        t_end=last_record.t,
                        worst_margin=end_m,
                        message=f"{self.name}: end-of-trace check failed",
                    )
                    self._closed_violations.append(violation)
                    out.append(violation)
        return out

    @property
    def violations(self) -> list[Violation]:
        """All episodes closed since the last :meth:`reset` (time order)."""
        return list(self._closed_violations)

    def summarize(self) -> AssertionSummary:
        """Aggregate everything seen since the last :meth:`reset`."""
        violations = self._closed_violations
        first_t = min((v.t_start for v in violations), default=None)
        total = sum(v.duration for v in violations)
        return AssertionSummary(
            assertion_id=self.assertion_id,
            name=self.name,
            category=self.category,
            fired=bool(violations),
            episodes=len(violations),
            first_violation_t=first_t,
            total_violation_time=total,
            worst_margin=self._worst_overall if self._evaluated else 0.0,
            evaluated=self._evaluated,
        )

    # ------------------------------------------------------------------
    def _reset_episode_state(self) -> None:
        self._bad_streak = 0
        self._good_streak = 0
        self._episode_start: float | None = None
        self._episode_worst = 0.0
        self._pending_worst = 0.0
        self._worst_overall = float("inf")
        self._evaluated = False
        self._last_step_t = 0.0
        self._closed_violations: list[Violation] = []

    def _close_episode(self, t_end: float) -> Violation:
        assert self._episode_start is not None
        violation = Violation(
            assertion_id=self.assertion_id,
            name=self.name,
            category=self.category,
            t_start=self._episode_start,
            t_end=t_end,
            worst_margin=min(self._episode_worst, self._pending_worst),
            message=f"{self.name} violated "
                    f"(worst margin {self._episode_worst:+.2f})",
        )
        self._episode_start = None
        self._episode_worst = 0.0
        self._pending_worst = 0.0
        self._closed_violations.append(violation)
        return violation

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.assertion_id}: {self.name!r})"


class BoundAssertion(TraceAssertion):
    """``|channel| <= bound`` at every step — the simplest assertion form."""

    def __init__(
        self,
        assertion_id: str,
        name: str,
        channel: str,
        bound: float,
        category: str = "behaviour",
        settle_time: float = 0.0,
        **kwargs,
    ):
        if bound <= 0:
            raise ValueError("bound must be positive")
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self.channel = channel
        self.bound = bound

    def margin(self, record: TraceRecord) -> float:
        value = getattr(record, self.channel)
        return 1.0 - abs(value) / self.bound


class WindowMeanBoundAssertion(TraceAssertion):
    """Mean of ``|channel|`` over a sliding time window stays below a bound.

    Catches sustained degradation that per-sample bounds miss (and is
    immune to isolated spikes).
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        channel: str,
        bound: float,
        window: float,
        category: str = "behaviour",
        settle_time: float = 0.0,
        **kwargs,
    ):
        if bound <= 0 or window <= 0:
            raise ValueError("bound and window must be positive")
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self.channel = channel
        self.bound = bound
        self.window = window
        self._buffer: list[tuple[float, float]] = []

    def on_reset(self) -> None:
        self._buffer = []

    def margin(self, record: TraceRecord) -> float | None:
        value = abs(getattr(record, self.channel))
        self._buffer.append((record.t, value))
        cutoff = record.t - self.window
        while self._buffer and self._buffer[0][0] < cutoff:
            self._buffer.pop(0)
        if self._buffer[-1][0] - self._buffer[0][0] < 0.5 * self.window:
            return None  # window not filled yet
        mean = sum(v for _, v in self._buffer) / len(self._buffer)
        return 1.0 - mean / self.bound


class FunctionAssertion(TraceAssertion):
    """Wrap a plain function as an assertion — the DSL's escape hatch.

    The function receives the record and a mutable state dict (empty at
    each reset) and returns a normalized margin or ``None``::

        def no_reverse(record, state):
            return record.est_v + 0.5  # violated if estimate goes backward

        assertion = FunctionAssertion("U1", "no reverse", no_reverse)
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        fn: Callable[[TraceRecord, dict], float | None],
        category: str = "custom",
        settle_time: float = 0.0,
        end_fn: Callable[[TraceRecord, dict], float | None] | None = None,
        **kwargs,
    ):
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self._fn = fn
        self._end_fn = end_fn
        self._state: dict = {}

    def on_reset(self) -> None:
        self._state = {}

    def margin(self, record: TraceRecord) -> float | None:
        return self._fn(record, self._state)

    def end_margin(self, last_record: TraceRecord | None) -> float | None:
        if self._end_fn is None or last_record is None:
            return None
        return self._end_fn(last_record, self._state)
