"""Assertion base class and authoring combinators.

An assertion is a *stateful margin monitor*: each trace record is mapped to
a normalized margin (``>= 0`` satisfied, ``< 0`` violated, ``None`` not
applicable at this step), and the base class turns the margin stream into
debounced violation *episodes*.  Margins are normalized by the assertion's
threshold, so ``-0.5`` always means "50% beyond the bound" regardless of
the underlying physical unit — which makes severities comparable across
the catalog and keeps the diagnosis engine unit-free.

The same objects serve two engines:

* the **online** (per-step) path — :meth:`TraceAssertion.step` per record
  plus :meth:`TraceAssertion.finish` at the end — used by the live
  monitor and kept as the differential-testing oracle;
* the **offline vectorized** path — :meth:`TraceAssertion.evaluate_offline`
  computes the full margin array in one shot (via
  :meth:`TraceAssertion.margin_array` over the trace's columnar view) and
  runs debounce/episode extraction as array operations over the
  run-length encoding of the bad/good margin signs.

Both paths produce byte-identical verdicts.  That is an engineered
property, not an accident: every vectorized margin uses the same
elementwise float64 operations as its scalar twin (IEEE-754 elementwise
ops match Python scalar ops bit for bit), and windowed means are defined
as *prefix-sum differences* on both paths — ``np.cumsum`` reproduces a
sequential running sum exactly, whereas pairwise summation
(``np.add.reduceat``) would not.  Equivalence over the full grid is
enforced by ``tests/test_checker_equivalence.py`` and a CI benchmark
smoke step.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

import numpy as np

from repro.core.verdicts import AssertionSummary, Violation
from repro.trace.schema import Trace, TraceColumns, TraceRecord

__all__ = [
    "TraceAssertion",
    "BoundAssertion",
    "WindowMeanBoundAssertion",
    "FunctionAssertion",
]


class TraceAssertion(abc.ABC):
    """Base class: margin computation + episode/debounce machinery.

    Args:
        assertion_id: short stable identifier (e.g. ``"A1"``).
        name: human-readable name.
        category: one of ``behaviour``, ``consistency``, ``actuation``,
            ``stability``, ``liveness`` (used by ablations and reports).
        settle_time: seconds at the start of the trace during which the
            assertion is not evaluated (launch transient).
        debounce_on: consecutive violating evaluations required to open an
            episode (suppresses single-sample noise).
        debounce_off: consecutive satisfied evaluations required to close
            an episode.
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        category: str,
        settle_time: float = 0.0,
        debounce_on: int = 3,
        debounce_off: int = 10,
    ):
        if debounce_on < 1 or debounce_off < 1:
            raise ValueError("debounce counts must be >= 1")
        self.assertion_id = assertion_id
        self.name = name
        self.category = category
        self.settle_time = settle_time
        self.debounce_on = debounce_on
        self.debounce_off = debounce_off
        self.bound_scale = 1.0
        self._reset_episode_state()

    def scale_bound(self, factor: float) -> "TraceAssertion":
        """Relax (>1) or tighten (<1) the effective threshold.

        Margins of the form ``1 - value/bound`` transform exactly as
        ``m' = 1 - (1 - m)/factor`` when the bound is scaled by ``factor``;
        the calibrator (:mod:`repro.core.tuning`) uses this to fit nominal
        headroom without knowing each assertion's internal threshold
        attribute.  Returns ``self`` for chaining.
        """
        if factor <= 0:
            raise ValueError("bound_scale factor must be positive")
        self.bound_scale = factor
        return self

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def margin(self, record: TraceRecord) -> float | None:
        """Normalized margin at this record (None = not applicable)."""

    def on_reset(self) -> None:
        """Clear subclass state (called by :meth:`reset`)."""

    def end_margin(self, last_record: TraceRecord | None) -> float | None:
        """Optional end-of-trace check (liveness assertions override).

        A negative return value opens (and closes) a final episode at the
        last record's timestamp.
        """
        return None

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """Vectorized margin over a whole trace, or ``None`` if unsupported.

        Returns ``(margins, applicable)`` where ``margins`` is a float64
        array of per-record margins and ``applicable`` is a bool mask (or
        ``None`` meaning "applicable everywhere").  ``margins`` entries
        where ``applicable`` is False are ignored; NaN margins at
        applicable steps are legal and mean exactly what they mean on the
        per-step path (NaN compares false against every threshold, so it
        counts as a *good* sample and never becomes the worst margin).

        Implementations must be bit-identical to iterating
        :meth:`margin`: use the same elementwise float64 operations, and
        express windowed means as prefix-sum differences on both paths.
        The default returns ``None``, which makes
        :meth:`evaluate_offline` fall back to the sequential margin loop
        (state-machine subclasses stay exact without extra work).
        """
        return None

    def _needs_end_record(self) -> bool:
        """Whether :meth:`finish` must see the materialized last record.

        True iff the subclass overrides :meth:`end_margin`; pure
        column-vectorized assertions then skip record materialization
        entirely on the offline path.
        """
        return type(self).end_margin is not TraceAssertion.end_margin

    # ------------------------------------------------------------------
    # Engine-facing interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Prepare for a new trace."""
        self._reset_episode_state()
        self.on_reset()

    def step(self, record: TraceRecord) -> Violation | None:
        """Process one record; returns a violation iff an episode *closed*.

        The margin is computed at *every* step so stateful assertions
        observe the full trace; verdicts inside the settle window are
        discarded (launch transient).  Episodes still open when the trace
        ends are closed by :meth:`finish`.
        """
        self._last_step_t = record.t
        m = self.margin(record)
        if record.t < self.settle_time:
            return None
        if m is None:
            return None
        if self.bound_scale != 1.0:
            m = 1.0 - (1.0 - m) / self.bound_scale
        self._evaluated = True
        self._worst_overall = min(self._worst_overall, m)
        if m < 0.0:
            self._bad_streak += 1
            self._good_streak = 0
            if self._episode_start is None and self._bad_streak >= self.debounce_on:
                self._episode_start = record.t
                self._episode_worst = m
            elif self._episode_start is not None:
                self._episode_worst = min(self._episode_worst, m)
            if self._episode_start is None:
                # Remember the depth of a forming episode so debounce does
                # not erase the worst sample.
                self._pending_worst = min(self._pending_worst, m)
        else:
            self._good_streak += 1
            self._bad_streak = 0
            self._pending_worst = 0.0
            if self._episode_start is not None and (
                self._good_streak >= self.debounce_off
            ):
                return self._close_episode(record.t)
        return None

    def finish(self, last_record: TraceRecord | None) -> list[Violation]:
        """Close any open episode and run the end-of-trace check."""
        out: list[Violation] = []
        if self._episode_start is not None:
            # _close_episode records the violation itself.
            out.append(self._close_episode(self._last_step_t))
        if last_record is not None and last_record.t >= self.settle_time:
            end_m = self.end_margin(last_record)
            if end_m is not None:
                self._evaluated = True
                self._worst_overall = min(self._worst_overall, end_m)
                if end_m < 0.0:
                    violation = Violation(
                        assertion_id=self.assertion_id,
                        name=self.name,
                        category=self.category,
                        t_start=last_record.t,
                        t_end=last_record.t,
                        worst_margin=end_m,
                        message=f"{self.name}: end-of-trace check failed",
                    )
                    self._closed_violations.append(violation)
                    out.append(violation)
        return out

    def evaluate_offline(self, trace: Trace) -> list[Violation]:
        """Evaluate the whole trace in one shot (vectorized where possible).

        Equivalent to ``reset(); [step(r) for r in trace]; finish(last)``
        but computes the margin stream as arrays via :meth:`margin_array`
        when the subclass supports it, then extracts debounced episodes
        from the run-length encoding of the bad/good signs.  Verdicts
        (episodes, margins, severities) are byte-identical to the
        per-step path.  Returns the full violation list.
        """
        self.reset()
        n = len(trace)
        if n == 0:
            return self.finish(None)
        cols = trace.columns()
        t = cols.get("t")
        computed = self.margin_array(cols)
        if computed is None:
            # Sequential fallback: stateful margins see records in order,
            # exactly as the online path does.
            margins = np.empty(n, dtype=np.float64)
            applicable = np.empty(n, dtype=bool)
            for i, record in enumerate(trace):
                m = self.margin(record)
                if m is None:
                    applicable[i] = False
                    margins[i] = 0.0
                else:
                    applicable[i] = True
                    margins[i] = m
        else:
            margins, applicable = computed
            margins = np.asarray(margins, dtype=np.float64)
        valid = t >= self.settle_time
        if applicable is not None:
            valid &= applicable
        mv = margins[valid]
        if self.bound_scale != 1.0:
            mv = 1.0 - (1.0 - mv) / self.bound_scale
        if mv.size:
            self._evaluated = True
            finite = mv[~np.isnan(mv)]
            if finite.size:
                # Python min() ignores a NaN in the second slot, so the
                # per-step worst is the min over non-NaN margins.
                self._worst_overall = float(finite.min())
            self._last_step_t = float(t[-1])
            self._extract_episodes(t[valid], mv)
        last_record = trace[n - 1] if self._needs_end_record() else None
        return self.finish(last_record)

    def _extract_episodes(self, tv: np.ndarray, mv: np.ndarray) -> None:
        """Debounce/episode extraction over an evaluated margin array.

        ``tv``/``mv`` hold only the applicable, post-settle samples.
        Works on the run-length encoding of ``mv < 0``: a bad run of
        length >= debounce_on opens an episode at its debounce_on-th
        sample; a good run of length >= debounce_off while open closes it
        at its debounce_off-th sample.  (NaN compares false, so NaN
        margins land in good runs — same as per-step.)
        """
        bad = mv < 0.0
        if not bad.any():
            return
        flips = np.flatnonzero(bad[1:] != bad[:-1]) + 1
        starts = np.concatenate(([0], flips))
        ends = np.concatenate((flips, [bad.size]))
        streak_start = -1
        open_pos = -1
        for s, e in zip(starts.tolist(), ends.tolist()):
            if bad[s]:
                if open_pos < 0 and e - s >= self.debounce_on:
                    streak_start = s
                    open_pos = s + self.debounce_on - 1
            elif open_pos >= 0 and e - s >= self.debounce_off:
                close = s + self.debounce_off - 1
                # Any good sample resets the pending (pre-open) worst, so
                # step-closed episodes never carry one.
                self._emit_episode(tv, mv, open_pos, float(tv[close]),
                                   close + 1, 0.0)
                open_pos = -1
        if open_pos >= 0:
            # Episode still open at end of trace: the pre-open streak
            # depth survives into the episode only if no good sample was
            # seen since the pre-open streak began.
            if bool((~(mv[open_pos + 1:] < 0.0)).any()):
                pending = 0.0
            elif open_pos > streak_start:
                pending = float(mv[streak_start:open_pos].min())
            else:
                pending = 0.0
            self._emit_episode(tv, mv, open_pos, self._last_step_t,
                               mv.size, pending)

    def _emit_episode(self, tv: np.ndarray, mv: np.ndarray, open_pos: int,
                      t_end: float, stop: int, pending: float) -> None:
        seg = mv[open_pos:stop]
        episode_worst = float(seg[seg < 0.0].min())
        self._closed_violations.append(Violation(
            assertion_id=self.assertion_id,
            name=self.name,
            category=self.category,
            t_start=float(tv[open_pos]),
            t_end=t_end,
            worst_margin=min(episode_worst, pending),
            message=f"{self.name} violated "
                    f"(worst margin {episode_worst:+.2f})",
        ))

    @property
    def violations(self) -> list[Violation]:
        """All episodes closed since the last :meth:`reset` (time order)."""
        return list(self._closed_violations)

    def summarize(self) -> AssertionSummary:
        """Aggregate everything seen since the last :meth:`reset`."""
        violations = self._closed_violations
        first_t = min((v.t_start for v in violations), default=None)
        total = sum(v.duration for v in violations)
        return AssertionSummary(
            assertion_id=self.assertion_id,
            name=self.name,
            category=self.category,
            fired=bool(violations),
            episodes=len(violations),
            first_violation_t=first_t,
            total_violation_time=total,
            worst_margin=self._worst_overall if self._evaluated else 0.0,
            evaluated=self._evaluated,
        )

    # ------------------------------------------------------------------
    def _reset_episode_state(self) -> None:
        self._bad_streak = 0
        self._good_streak = 0
        self._episode_start: float | None = None
        self._episode_worst = 0.0
        self._pending_worst = 0.0
        self._worst_overall = float("inf")
        self._evaluated = False
        self._last_step_t = 0.0
        self._closed_violations: list[Violation] = []

    def _close_episode(self, t_end: float) -> Violation:
        assert self._episode_start is not None
        violation = Violation(
            assertion_id=self.assertion_id,
            name=self.name,
            category=self.category,
            t_start=self._episode_start,
            t_end=t_end,
            worst_margin=min(self._episode_worst, self._pending_worst),
            message=f"{self.name} violated "
                    f"(worst margin {self._episode_worst:+.2f})",
        )
        self._episode_start = None
        self._episode_worst = 0.0
        self._pending_worst = 0.0
        self._closed_violations.append(violation)
        return violation

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.assertion_id}: {self.name!r})"


class BoundAssertion(TraceAssertion):
    """``|channel| <= bound`` at every step — the simplest assertion form."""

    def __init__(
        self,
        assertion_id: str,
        name: str,
        channel: str,
        bound: float,
        category: str = "behaviour",
        settle_time: float = 0.0,
        **kwargs,
    ):
        if bound <= 0:
            raise ValueError("bound must be positive")
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self.channel = channel
        self.bound = bound

    def margin(self, record: TraceRecord) -> float:
        value = getattr(record, self.channel)
        return 1.0 - abs(value) / self.bound

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray | None]:
        values = np.asarray(cols.get(self.channel), dtype=np.float64)
        return 1.0 - np.abs(values) / self.bound, None


class WindowMeanBoundAssertion(TraceAssertion):
    """Mean of ``|channel|`` over a sliding time window stays below a bound.

    Catches sustained degradation that per-sample bounds miss (and is
    immune to isolated spikes).  The mean is computed as a prefix-sum
    difference on *both* the per-step and the vectorized path, so the two
    agree bit for bit (``np.cumsum`` reproduces a sequential running sum
    exactly).
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        channel: str,
        bound: float,
        window: float,
        category: str = "behaviour",
        settle_time: float = 0.0,
        **kwargs,
    ):
        if bound <= 0 or window <= 0:
            raise ValueError("bound and window must be positive")
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self.channel = channel
        self.bound = bound
        self.window = window
        self._buffer: list[tuple[float, float]] = []
        self._cum = 0.0
        self._prev_cum = 0.0

    def on_reset(self) -> None:
        self._buffer = []
        self._cum = 0.0
        self._prev_cum = 0.0

    def margin(self, record: TraceRecord) -> float | None:
        # The buffer holds (t, running_sum_through_t); the window sum is
        # the difference of two running-sum samples.
        self._cum = self._cum + abs(getattr(record, self.channel))
        buf = self._buffer
        buf.append((record.t, self._cum))
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            self._prev_cum = buf.pop(0)[1]
        if buf[-1][0] - buf[0][0] < 0.5 * self.window:
            return None  # window not filled yet
        mean = (self._cum - self._prev_cum) / len(buf)
        return 1.0 - mean / self.bound

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.get("t")
        values = np.abs(np.asarray(cols.get(self.channel), dtype=np.float64))
        cum = np.cumsum(values)
        lo = np.searchsorted(t, t - self.window, side="left")
        count = np.arange(1, t.size + 1) - lo
        prev = np.where(lo > 0, cum[lo - 1], 0.0)
        margins = 1.0 - ((cum - prev) / count) / self.bound
        applicable = (t - t[lo]) >= 0.5 * self.window
        return margins, applicable


class FunctionAssertion(TraceAssertion):
    """Wrap a plain function as an assertion — the DSL's escape hatch.

    The function receives the record and a mutable state dict (empty at
    each reset) and returns a normalized margin or ``None``::

        def no_reverse(record, state):
            return record.est_v + 0.5  # violated if estimate goes backward

        assertion = FunctionAssertion("U1", "no reverse", no_reverse)

    An optional ``fn_array`` twin vectorizes the margin over the trace's
    columnar view: it receives a :class:`~repro.trace.schema.TraceColumns`
    and returns either a margin array (applicable everywhere) or a
    ``(margins, applicable_mask)`` pair.  It must be bit-identical to
    iterating ``fn``.  When ``end_fn`` is present the offline path always
    uses the sequential ``fn`` loop, because ``end_fn`` may read state
    that ``fn`` accumulates.
    """

    def __init__(
        self,
        assertion_id: str,
        name: str,
        fn: Callable[[TraceRecord, dict], float | None],
        category: str = "custom",
        settle_time: float = 0.0,
        end_fn: Callable[[TraceRecord, dict], float | None] | None = None,
        fn_array: Callable[
            [TraceColumns],
            "np.ndarray | tuple[np.ndarray, np.ndarray | None] | None",
        ] | None = None,
        **kwargs,
    ):
        super().__init__(assertion_id, name, category, settle_time, **kwargs)
        self._fn = fn
        self._end_fn = end_fn
        self._fn_array = fn_array
        self._state: dict = {}

    def on_reset(self) -> None:
        self._state = {}

    def margin(self, record: TraceRecord) -> float | None:
        return self._fn(record, self._state)

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray | None] | None:
        if self._fn_array is None or self._end_fn is not None:
            return None
        out = self._fn_array(cols)
        if out is None:
            return None
        if isinstance(out, tuple):
            return out
        return np.asarray(out, dtype=np.float64), None

    def _needs_end_record(self) -> bool:
        return self._end_fn is not None

    def end_margin(self, last_record: TraceRecord | None) -> float | None:
        if self._end_fn is None or last_record is None:
            return None
        return self._end_fn(last_record, self._state)
