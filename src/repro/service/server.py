"""The asyncio TCP trace-ingest server.

One connection serves one streaming session (plus stateless STATUS
queries).  The handler is a small frame loop; everything stateful lives
in :class:`~repro.service.session.SessionState` (exactly-once cursor),
:class:`~repro.service.store.SessionStore` (crash-safe checkpoints) and
:class:`~repro.service.shards.ShardPool` (verdict scoring off the event
loop).  The loop's job is to keep the failure matrix honest:

===================  ====================================================
failure              behavior
===================  ====================================================
clean close / BYE    session suspended (checkpointed); resumable
mid-frame EOF        ``FrameTruncated`` -> suspend; resumable
torn / corrupt CRC   fatal ERROR (framing lost sync), connection closed,
                     session suspended; resumable
stalled client       idle timeout -> suspend, close (no slot held)
overload             BUSY with ``retry_after_s``; the chunk is **not**
                     applied and client credit is never buffered
                     unboundedly
shard death          invisible: re-dispatch inside :class:`ShardPool`
server kill -9       next server resumes every session from its
                     checkpoint; finished sessions re-deliver their
                     **stored** verdict (never recomputed)
second server        store lease conflict: refuses to start
===================  ====================================================

Backpressure is a single global credit: bytes of chunk payloads accepted
but not yet applied-and-checkpointed.  A chunk that would exceed
``max_inflight_bytes`` is refused with BUSY before any buffering
happens, so a stalled shard or a flood of concurrent streams degrades
into polite retry-after, not memory growth.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.monitor import OnlineMonitor
from repro.service.aggregates import FleetAggregates
from repro.service.protocol import (
    FrameTruncated,
    FrameType,
    ProtocolError,
    encode_frame,
    read_frame,
)
from repro.service.session import ChunkRejected, MonitorPool, SessionState
from repro.service.shards import ShardPool
from repro.service.store import SessionStore
from repro.trace.schema import TraceMeta

__all__ = ["ServerConfig", "TraceIngestServer"]


@dataclass(slots=True)
class ServerConfig:
    """Tuning knobs for one :class:`TraceIngestServer`."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = ephemeral; read the bound port off ``server.port`` after start."""
    shards: int = 2
    """Worker-process shards for verdict scoring (0 = inline)."""
    store_dir: str | Path | None = None
    """Checkpoint directory (default: the shared cache root)."""
    max_inflight_bytes: int = 32 << 20
    """Global credit of accepted-but-unapplied chunk bytes; beyond it,
    chunks get BUSY instead of buffering."""
    retry_after_s: float = 0.05
    """Hint sent with BUSY frames."""
    idle_timeout_s: float = 30.0
    """A connection silent this long is a stalled client: suspend+close."""
    checkpoint_every: int = 1
    """Checkpoint the session every N applied chunks (1 = every chunk)."""
    live_monitor: bool = True
    """Feed an incremental monitor and push violations on ACKs; the
    final verdict never depends on this."""
    chunk_delay_s: float = 0.0
    """Artificial per-chunk apply delay — a test knob that makes ingest
    slow enough for the chaos suite to drive the server into BUSY."""


class TraceIngestServer:
    """Fleet trace-ingest endpoint; start with :meth:`start`."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.store = SessionStore(self.config.store_dir)
        self.shards = ShardPool(self.config.shards)
        self.monitors = MonitorPool()
        self.aggregates = FleetAggregates()
        self.sessions: dict[str, SessionState] = {}
        """Sessions with a live connection right now."""
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight_bytes = 0
        self.port: int | None = None
        # failure-matrix counters (surfaced by STATUS)
        self.connections = 0
        self.suspends = 0
        self.resumes = 0
        self.busy_sent = 0
        self.truncated_frames = 0
        self.protocol_errors = 0
        self.stalled_clients = 0
        self.verdicts_issued = 0
        self.verdicts_replayed = 0

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and begin accepting; raises
        :class:`~repro.locking.LeaseConflict` if another live server owns
        the checkpoint store."""
        self.store.acquire()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up on live connections and let their handlers run their
        # suspend path to completion (checkpoints included).
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # Checkpoint whatever is still live so a restart resumes it.
        for session in list(self.sessions.values()):
            self._suspend(session)
        self.shards.shutdown()
        self.store.release()

    async def __aenter__(self) -> "TraceIngestServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handler ----------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        session: SessionState | None = None
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(
                        read_frame(reader), self.config.idle_timeout_s)
                except asyncio.TimeoutError:
                    # Stalled client: it holds no credit and no slot.
                    self.stalled_clients += 1
                    break
                if frame is None:
                    break  # clean close between frames
                if frame.type == FrameType.HELLO:
                    session = await self._on_hello(writer, frame.header)
                elif frame.type == FrameType.RESUME:
                    session = await self._on_resume(writer, frame.header)
                elif frame.type == FrameType.CHUNK:
                    await self._on_chunk(writer, session, frame)
                elif frame.type == FrameType.FINISH:
                    session = await self._on_finish(writer, session)
                elif frame.type == FrameType.STATUS:
                    await self._send(writer, FrameType.STATS, self.status())
                elif frame.type == FrameType.BYE:
                    await self._send(writer, FrameType.BYE, {})
                    break
                else:
                    await self._send(writer, FrameType.ERROR, {
                        "message": f"unexpected {frame.type.name} frame",
                        "fatal": True})
                    break
        except FrameTruncated:
            # Mid-frame disconnect (or a torn write): the signature
            # failure the resume path exists for.
            self.truncated_frames += 1
        except ProtocolError as exc:
            # Bad magic/version/CRC: framing lost sync, this connection
            # cannot continue — but the session state is intact.
            self.protocol_errors += 1
            await self._try_send(writer, FrameType.ERROR,
                                 {"message": str(exc), "fatal": True})
        except (ConnectionError, OSError):
            pass  # peer vanished; same handling as truncation
        finally:
            self._writers.discard(writer)
            if session is not None and not session.finished:
                self._suspend(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- frame handlers --------------------------------------------------
    async def _on_hello(self, writer: asyncio.StreamWriter,
                        header: dict) -> SessionState | None:
        session_id = header.get("session_id")
        if not session_id or not isinstance(session_id, str):
            await self._send(writer, FrameType.ERROR, {
                "message": "HELLO requires a session_id", "fatal": True})
            return None
        if session_id in self.sessions:
            await self._send(writer, FrameType.ERROR, {
                "message": f"session {session_id!r} is already streaming "
                           "on another connection", "fatal": True})
            return None
        if self.store.load(session_id) is not None:
            # The session has history.  Never silently restart it — that
            # is how a verdict gets computed twice.  The client must
            # RESUME (and gets the cursor or the stored verdict).
            await self._send(writer, FrameType.ERROR, {
                "message": f"session {session_id!r} has checkpointed "
                           "state; send RESUME instead of HELLO",
                "resumable": True, "fatal": False})
            return None
        meta = TraceMeta.from_dict(header.get("meta", {}))
        session = SessionState(
            session_id, meta,
            monitor=self._acquire_monitor())
        self.sessions[session_id] = session
        await self._send(writer, FrameType.WELCOME,
                         {"session_id": session_id, "next_seq": 0})
        return session

    async def _on_resume(self, writer: asyncio.StreamWriter,
                         header: dict) -> SessionState | None:
        session_id = header.get("session_id")
        if not session_id or not isinstance(session_id, str):
            await self._send(writer, FrameType.ERROR, {
                "message": "RESUME requires a session_id", "fatal": True})
            return None
        if session_id in self.sessions:
            await self._send(writer, FrameType.ERROR, {
                "message": f"session {session_id!r} is already streaming "
                           "on another connection", "fatal": True})
            return None
        checkpoint = self.store.load(session_id)
        if checkpoint is None:
            # Nothing on disk (never seen, or an unreadable checkpoint
            # dropped as garbage): resume degrades to a fresh start.
            meta = TraceMeta.from_dict(header.get("meta", {}))
            session = SessionState(session_id, meta,
                                   monitor=self._acquire_monitor())
            self.sessions[session_id] = session
            self.resumes += 1
            await self._send(writer, FrameType.RESUMED, {
                "session_id": session_id, "next_seq": 0,
                "finished": False, "fresh": True})
            return session
        if checkpoint.finished:
            # Exactly-once: the stored verdict is re-delivered verbatim,
            # never recomputed.
            self.resumes += 1
            self.verdicts_replayed += 1
            await self._send(writer, FrameType.RESUMED, {
                "session_id": session_id,
                "next_seq": checkpoint.next_seq, "finished": True,
                "verdict": checkpoint.verdict})
            return None
        session = SessionState(session_id, checkpoint.meta,
                               monitor=self._acquire_monitor())
        session.replay(checkpoint.records, checkpoint.next_seq)
        self.sessions[session_id] = session
        self.resumes += 1
        await self._send(writer, FrameType.RESUMED, {
            "session_id": session_id, "next_seq": session.next_seq,
            "finished": False})
        return session

    async def _on_chunk(self, writer: asyncio.StreamWriter,
                        session: SessionState | None, frame) -> None:
        if session is None:
            await self._send(writer, FrameType.ERROR, {
                "message": "CHUNK before HELLO/RESUME", "fatal": True})
            raise ConnectionResetError("protocol misuse")
        seq = int(frame.header.get("seq", -1))
        cost = len(frame.payload)
        if self._inflight_bytes + cost > self.config.max_inflight_bytes:
            # Refuse *before* buffering anything: the client resends
            # after retry_after_s, so overload costs retries, not memory.
            self.busy_sent += 1
            await self._send(writer, FrameType.BUSY, {
                "seq": seq,
                "retry_after_s": self.config.retry_after_s})
            return
        self._inflight_bytes += cost
        try:
            if self.config.chunk_delay_s > 0.0:
                await asyncio.sleep(self.config.chunk_delay_s)
            try:
                violations = session.apply_chunk(seq, frame.payload)
            except ChunkRejected as exc:
                await self._send(writer, FrameType.ERROR, {
                    "message": str(exc), "fatal": False,
                    "next_seq": session.next_seq})
                return
            if violations is None:  # duplicate delivery: re-ACK only
                await self._send(writer, FrameType.ACK, {
                    "seq": seq, "next_seq": session.next_seq,
                    "duplicate": True, "violations": []})
                return
            if session.next_seq % max(self.config.checkpoint_every, 1) == 0:
                self._checkpoint(session)
            await self._send(writer, FrameType.ACK, {
                "seq": seq, "next_seq": session.next_seq,
                "duplicate": False,
                "violations": [v.to_dict() for v in violations]})
        finally:
            self._inflight_bytes -= cost

    async def _on_finish(
            self, writer: asyncio.StreamWriter,
            session: SessionState | None) -> SessionState | None:
        if session is None:
            await self._send(writer, FrameType.ERROR, {
                "message": "FINISH before HELLO/RESUME", "fatal": True})
            raise ConnectionResetError("protocol misuse")
        if not session.records:
            await self._send(writer, FrameType.ERROR, {
                "message": "FINISH on an empty session", "fatal": False})
            return session  # still live; keep it bound for suspend
        t0 = time.perf_counter()
        trace_bytes = session.assemble_bytes()
        verdict = await self.shards.score(session.session_id, trace_bytes)
        session.finished = True
        session.verdict = verdict
        # Persist BEFORE sending: if the VERDICT frame is lost to a
        # disconnect, the resume re-delivers this stored verdict — the
        # client can never observe two different verdicts for one
        # session.
        self.store.save(session.session_id, meta=session.meta,
                        record_bytes=trace_bytes,
                        next_seq=session.next_seq, finished=True,
                        verdict=verdict)
        self.aggregates.record_session(
            verdict, verdict_latency_s=time.perf_counter() - t0)
        self.verdicts_issued += 1
        self.sessions.pop(session.session_id, None)
        self._release_monitor(session)
        await self._send(writer, FrameType.VERDICT, dict(verdict))
        return None  # connection may HELLO/RESUME another session

    # -- session plumbing -------------------------------------------------
    def _acquire_monitor(self) -> OnlineMonitor | None:
        return self.monitors.acquire() if self.config.live_monitor else None

    def _release_monitor(self, session: SessionState) -> None:
        self.monitors.release(session.monitor)
        session.monitor = None

    def _checkpoint(self, session: SessionState) -> None:
        self.store.save(session.session_id, meta=session.meta,
                        record_bytes=session.assemble_bytes(),
                        next_seq=session.next_seq,
                        finished=False, verdict=None)
        session.buffered_bytes = 0

    def _suspend(self, session: SessionState) -> None:
        """Disconnect path: checkpoint, then forget the live state."""
        self._checkpoint(session)
        self.sessions.pop(session.session_id, None)
        self._release_monitor(session)
        self.suspends += 1

    # -- introspection -----------------------------------------------------
    def status(self) -> dict:
        return {
            "fleet": self.aggregates.as_dict(),
            "shards": self.shards.stats(),
            "sessions": {
                "active": len(self.sessions),
                "checkpointed": len(self.store.session_ids()),
            },
            "monitor_pool": {"created": self.monitors.created,
                             "reused": self.monitors.reused},
            "counters": {
                "connections": self.connections,
                "suspends": self.suspends,
                "resumes": self.resumes,
                "busy_sent": self.busy_sent,
                "truncated_frames": self.truncated_frames,
                "protocol_errors": self.protocol_errors,
                "stalled_clients": self.stalled_clients,
                "verdicts_issued": self.verdicts_issued,
                "verdicts_replayed": self.verdicts_replayed,
            },
            "inflight_bytes": self._inflight_bytes,
        }

    # -- wire helpers ------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter, ftype: FrameType,
                    header: dict, payload: bytes = b"") -> None:
        writer.write(encode_frame(ftype, header, payload))
        await writer.drain()

    async def _try_send(self, writer: asyncio.StreamWriter,
                        ftype: FrameType, header: dict) -> None:
        try:
            await self._send(writer, ftype, header)
        except (ConnectionError, OSError):
            pass
