"""Multi-host distributed campaign backend: lease-claimed grid shards.

``run_grid(executor="distributed")`` (or a standalone ``adassure worker``
fleet) executes one campaign as N independent worker *processes* — on one
host or many — that share nothing but a cache directory:

* the campaign is serialized once as a :class:`GridSpec`
  (``<cache>/campaigns/<grid id>.grid.json``), from which every worker
  re-enumerates byte-identical point tuples and cache keys;
* the grid is striped into shards on a :class:`ShardBoard`
  (``<cache>/checkpoints/<grid id>.shards/``) and each shard is claimed
  through an advisory :class:`~repro.locking.FileLease` with background
  heartbeat renewal (:class:`HeartbeatThread`);
* every completed point is committed to the content-addressed
  :class:`~repro.experiments.cache.RunCache` **before** the shard's done
  marker is written and the lease released — the commit-before-release
  ordering that makes verdicts exactly-once.

Failure semantics, in one paragraph: a worker that dies mid-shard
(SIGKILL, OOM, power) stops heartbeating; once its lease heartbeat is
older than the TTL the shard is *reclaimed* by any surviving worker,
which re-runs only the points the corpse had not yet committed (per-point
``cache.contains`` check — crash-exact resume).  A duplicate claimant
(force-broken lease, extreme clock skew) is harmless: grid points are
pure functions of their key, so double-executed points commit
byte-identical entries to the same content address, and the loser
detects the theft at release time and reports a ``lease_conflict``
instead of corrupting anything.  Torn board/done-marker writes are
unreadable JSON, which classifies as "not done" — the shard simply runs
again.  The coordinator degrades gracefully: if every worker dies, the
remaining shards fall back to in-process serial execution.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.backend import (
    BatchExecutor,
    Executor,
    SerialExecutor,
    StripedScheduler,
    build_grid,
    retry_delay,
)
from repro.locking import FileLease, default_lease_ttl, lease_state

__all__ = [
    "DEFAULT_DIST_TIMEOUT",
    "DistributedExecutor",
    "GridSpec",
    "HeartbeatThread",
    "ShardBoard",
    "WorkerReport",
    "lease_health",
    "resolve_shard_points",
    "run_worker",
]

DEFAULT_DIST_TIMEOUT = 900.0
"""Coordinator convergence deadline, seconds (``ADASSURE_DIST_TIMEOUT``)."""

_CHAOS_KILL_ENV = "ADASSURE_CHAOS_KILL_AFTER"
"""Chaos hook: SIGKILL this process after committing N points — *between*
the result commit and the shard bookkeeping, the exact window the
crash-exact resume contract covers.  Test-only, documented for the chaos
suite."""


def _dist_timeout(timeout: float | None = None) -> float:
    if timeout is None:
        env = os.environ.get("ADASSURE_DIST_TIMEOUT")
        if env:
            try:
                timeout = float(env)
            except ValueError:
                timeout = None
    if timeout is None:
        timeout = DEFAULT_DIST_TIMEOUT
    return max(float(timeout), 1.0)


def resolve_shard_points(n_points: int, n_workers: int,
                         shard_points: int | None = None) -> int:
    """Points per lease-claimed shard: argument > env > heuristic.

    Roughly four shards per worker so a dead worker forfeits little and
    survivors load-balance, but never shards so small that lease traffic
    dominates the simulation work.
    """
    if shard_points is None:
        env = os.environ.get("ADASSURE_SHARD_POINTS")
        if env:
            try:
                shard_points = int(env)
            except ValueError:
                shard_points = None
    if shard_points is None:
        shard_points = -(-n_points // max(4 * max(n_workers, 1), 1))
    return max(int(shard_points), 1)


# ---------------------------------------------------------------------------
# GridSpec: the campaign, serialized for workers on other hosts
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class GridSpec:
    """Everything a worker needs to re-enumerate the exact campaign grid."""

    scenarios: tuple
    controllers: tuple
    attacks: tuple
    seeds: tuple
    intensity: float
    onset: float
    duration: float | None
    shard_points: int
    grid_id: str
    code: str
    catalog: str

    @staticmethod
    def build(scenarios, controllers, attacks, seeds, intensity, onset,
              duration, shard_points: int) -> "GridSpec":
        import repro
        from repro.core.spec import catalog_fingerprint
        from repro.experiments.cache import grid_identity

        grid = build_grid(scenarios, controllers, attacks, seeds,
                          intensity=intensity, onset=onset, duration=duration)
        return GridSpec(
            scenarios=tuple(scenarios), controllers=tuple(controllers),
            attacks=tuple(attacks), seeds=tuple(int(s) for s in seeds),
            intensity=float(intensity), onset=float(onset),
            duration=None if duration is None else float(duration),
            shard_points=int(shard_points),
            grid_id=grid_identity(grid),
            code=repro.__version__,
            catalog=catalog_fingerprint(),
        )

    def points(self) -> list[tuple]:
        """The canonical point list — identical on every host."""
        return build_grid(self.scenarios, self.controllers, self.attacks,
                          self.seeds, intensity=self.intensity,
                          onset=self.onset, duration=self.duration)

    def as_dict(self) -> dict:
        return {
            "scenarios": list(self.scenarios),
            "controllers": list(self.controllers),
            "attacks": list(self.attacks),
            "seeds": list(self.seeds),
            "intensity": self.intensity,
            "onset": self.onset,
            "duration": self.duration,
            "shard_points": self.shard_points,
            "grid_id": self.grid_id,
            "code": self.code,
            "catalog": self.catalog,
        }

    @staticmethod
    def from_dict(payload: dict) -> "GridSpec":
        return GridSpec(
            scenarios=tuple(payload["scenarios"]),
            controllers=tuple(payload["controllers"]),
            attacks=tuple(payload["attacks"]),
            seeds=tuple(int(s) for s in payload["seeds"]),
            intensity=float(payload["intensity"]),
            onset=float(payload["onset"]),
            duration=(None if payload["duration"] is None
                      else float(payload["duration"])),
            shard_points=int(payload["shard_points"]),
            grid_id=payload["grid_id"],
            code=payload["code"],
            catalog=payload["catalog"],
        )

    def save(self, cache) -> Path:
        path = cache.root / "campaigns" / f"{self.grid_id}.grid.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.as_dict(), indent=2) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    @staticmethod
    def load(path: str | Path) -> "GridSpec":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        spec = GridSpec.from_dict(payload)
        import repro
        from repro.core.spec import catalog_fingerprint
        if spec.code != repro.__version__:
            raise ValueError(
                f"grid spec {path} was written by code version "
                f"{spec.code!r}; this worker runs {repro.__version__!r} — "
                "mixed-version fleets would commit incompatible cache keys")
        if spec.catalog != catalog_fingerprint():
            raise ValueError(
                f"grid spec {path} was written against a different "
                "assertion catalog; refusing to mix verdicts")
        return spec


# ---------------------------------------------------------------------------
# ShardBoard: claimable shard state shared through the cache directory
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class Shard:
    index: int
    start: int
    stop: int


class ShardBoard:
    """Filesystem shard table for one campaign grid.

    Layout (under ``<cache root>/checkpoints/<grid id>.shards/``)::

        board.json            deterministic shard table (idempotent write)
        shard-0007.lease      advisory claim lease (heartbeat-renewed)
        shard-0007.done.json  completion record (atomic, written *after*
                              every point of the shard is in the cache)

    Every mutation is either atomic (tmp + rename) or idempotent
    (deterministic content), so concurrent workers and torn writes can
    cost re-execution, never correctness.
    """

    def __init__(self, cache, spec: GridSpec):
        self.cache = cache
        self.spec = spec
        self.points = spec.points()
        self.dir = cache.root / "checkpoints" / f"{spec.grid_id}.shards"
        self.board_path = self.dir / "board.json"
        scheduler = StripedScheduler(spec.shard_points)
        stripes = scheduler.shards(self.points)
        self.shards: list[Shard] = []
        start = 0
        for stripe in stripes:
            self.shards.append(Shard(index=len(self.shards), start=start,
                                     stop=start + len(stripe)))
            start += len(stripe)

    # -- paths ----------------------------------------------------------
    def lease_path(self, index: int) -> Path:
        return self.dir / f"shard-{index:04d}.lease"

    def done_path(self, index: int) -> Path:
        return self.dir / f"shard-{index:04d}.done.json"

    def shard_points(self, shard: Shard) -> list[tuple]:
        return self.points[shard.start:shard.stop]

    # -- board ----------------------------------------------------------
    def ensure(self) -> None:
        """Materialize ``board.json`` (idempotent: content is a pure
        function of the spec, so concurrent writers write identical
        bytes and a torn write is repaired by the next caller)."""
        payload = {
            "grid_id": self.spec.grid_id,
            "total_points": len(self.points),
            "shard_points": self.spec.shard_points,
            "shards": [[s.start, s.stop] for s in self.shards],
        }
        try:
            prior = json.loads(self.board_path.read_text(encoding="utf-8"))
            if prior == payload:
                return
        except (OSError, ValueError):
            pass
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = self.board_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        os.replace(tmp, self.board_path)

    # -- per-shard state -------------------------------------------------
    def done_record(self, index: int) -> dict | None:
        try:
            record = json.loads(self.done_path(index).read_text(
                encoding="utf-8"))
        except (OSError, ValueError):
            return None  # absent or torn: not done
        if (record.get("grid_id") == self.spec.grid_id
                and record.get("shard") == index):
            return record
        return None

    def is_done(self, index: int) -> bool:
        return self.done_record(index) is not None

    def mark_done(self, index: int, record: dict) -> None:
        record = {"grid_id": self.spec.grid_id, "shard": index, **record}
        path = self.done_path(index)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def claim(self, index: int, *, ttl: float | None = None,
              owner_hint: str | None = None) -> FileLease | None:
        """Try to lease one shard; ``None`` when a live claimant holds it."""
        lease = FileLease(self.lease_path(index), ttl=ttl)
        if owner_hint:
            lease.owner_id = f"{owner_hint}:{lease.owner_id}"
        return lease if lease.acquire() else None

    # -- campaign view ---------------------------------------------------
    def status(self, ttl: float | None = None) -> dict:
        """One scan of the board: done / leased / stale / open counts."""
        ttl = ttl if ttl is not None else default_lease_ttl()
        counts = {"shards": len(self.shards), "done": 0, "leased": 0,
                  "stale": 0, "open": 0}
        for shard in self.shards:
            if self.is_done(shard.index):
                counts["done"] += 1
                continue
            state = lease_state(self.lease_path(shard.index), ttl)
            if state == "active":
                counts["leased"] += 1
            elif state == "stale":
                counts["stale"] += 1
            else:
                counts["open"] += 1
        return counts

    def all_done(self) -> bool:
        return all(self.is_done(s.index) for s in self.shards)

    def undone_shards(self) -> list[Shard]:
        return [s for s in self.shards if not self.is_done(s.index)]

    def cleanup(self) -> None:
        """Remove the board directory (campaign fully converged)."""
        import shutil
        shutil.rmtree(self.dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------

class HeartbeatThread(threading.Thread):
    """Background lease renewal: re-stamps the lease every ``interval``.

    Daemonized so a crashing worker never blocks on its heartbeat — the
    whole point is that a dead worker *stops* heartbeating and loses the
    shard to a survivor.
    """

    def __init__(self, lease: FileLease, interval: float | None = None):
        super().__init__(daemon=True, name=f"heartbeat:{lease.path.name}")
        self.lease = lease
        self.interval = (interval if interval is not None
                         else max(lease.ttl / 4.0, 0.05))
        self.beats = 0
        # NB: not `_stop` — threading.Thread uses that name internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            self.lease.refresh()
            self.beats += 1

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Worker: the claim loop
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class WorkerReport:
    """What one worker process did to the campaign."""

    worker_id: str
    shards_claimed: int = 0
    shards_reclaimed: int = 0
    """Claimed shards that a previous (dead) claimant had partially
    committed — the crash-exact resume path."""
    points_executed: int = 0
    points_skipped: int = 0
    """Points found already committed (by this or a previous claimant)."""
    heartbeats: int = 0
    lease_conflicts: int = 0
    """Shards whose lease was stolen from under us mid-run (duplicate
    claimant); the work still committed exactly once."""
    stale_breaks: int = 0
    """Abandoned leases this worker broke while claiming."""
    quarantined: list = field(default_factory=list)
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "shards_claimed": self.shards_claimed,
            "shards_reclaimed": self.shards_reclaimed,
            "points_executed": self.points_executed,
            "points_skipped": self.points_skipped,
            "heartbeats": self.heartbeats,
            "lease_conflicts": self.lease_conflicts,
            "stale_breaks": self.stale_breaks,
            "quarantined": [
                {"point": list(point), "error": error}
                for point, error in self.quarantined
            ],
            "wall_s": round(self.wall_s, 4),
        }


def _chaos_kill_budget() -> int | None:
    env = os.environ.get(_CHAOS_KILL_ENV)
    if not env:
        return None
    try:
        return max(int(env), 0)
    except ValueError:
        return None


def run_worker(
    spec: GridSpec,
    *,
    worker_id: str | None = None,
    max_shards: int | None = None,
    retries: int | None = None,
    sim_engine: str | None = None,
    ttl: float | None = None,
    poll_s: float = 0.25,
    max_wait_s: float | None = None,
) -> WorkerReport:
    """Claim-execute-commit loop until the campaign converges.

    Scans the shard board, leases the first claimable shard (breaking
    stale leases of dead workers), executes the shard's not-yet-committed
    points (optionally through the batch engine), commits each result to
    the shared cache *as it finishes*, then writes the shard's done
    marker and releases the lease — in that order, so a crash at any
    instant loses at most bookkeeping.  When no shard is claimable the
    worker waits (jittered poll) for live claimants to finish or their
    leases to go stale; it returns once every shard is done, ``max_shards``
    have been run, or ``max_wait_s`` passes without progress.
    """
    from repro.experiments import runner
    from repro.experiments.cache import RunCache
    from repro.experiments.stats import GridStats

    wall_start = time.perf_counter()
    worker_id = worker_id or f"worker-{os.getpid()}"
    report = WorkerReport(worker_id=worker_id)
    cache = RunCache.from_env()
    if cache is None:
        raise ValueError(
            "distributed workers need the disk cache (the shared result "
            "store); unset ADASSURE_CACHE=0")
    board = ShardBoard(cache, spec)
    board.ensure()
    engine = runner.resolve_sim_engine(sim_engine)
    retries = runner._point_retries(retries)
    chaos_budget = _chaos_kill_budget()
    committed_total = 0
    waited = 0.0
    max_wait_s = (_dist_timeout(None) if max_wait_s is None
                  else float(max_wait_s))

    def commit(point: tuple, run, phases) -> None:
        nonlocal committed_total
        from repro.experiments.cache import cache_key
        cache.store(cache_key(*point, catalog=spec.catalog),
                    run.result, run.report, run.diagnosis)
        report.points_executed += 1
        committed_total += 1
        if chaos_budget is not None and committed_total >= chaos_budget:
            # Chaos hook: die *after* the result commit but *before* any
            # shard bookkeeping — the exactly-once window under test.
            os.kill(os.getpid(), signal.SIGKILL)

    while True:
        progressed = False
        for shard in board.shards:
            if max_shards is not None and report.shards_claimed >= max_shards:
                break
            if board.is_done(shard.index):
                continue
            lease = board.claim(shard.index, ttl=ttl, owner_hint=worker_id)
            if lease is None:
                continue
            report.stale_breaks += lease.stale_breaks
            points = board.shard_points(shard)
            missing = [p for p in points
                       if not cache.contains(
                           _point_key(p, spec.catalog))]
            skipped = len(points) - len(missing)
            if skipped:
                # A previous claimant committed part of this shard and
                # died: crash-exact resume re-runs only the remainder.
                report.shards_reclaimed += 1
                report.points_skipped += skipped
            heartbeat = HeartbeatThread(lease)
            heartbeat.start()
            stats = GridStats(workers=1, grid_points=len(points))
            quarantined: list = []

            def quarantine(point: tuple, error: str) -> None:
                quarantined.append((point, error))
                report.quarantined.append((point, error))

            try:
                items = [(p, 0) for p in missing]
                if engine == "batch" and len(items) > 1:
                    items = BatchExecutor().execute(items, commit, stats)
                SerialExecutor(retries).execute(items, commit, stats,
                                                quarantine)
            finally:
                heartbeat.stop()
                report.heartbeats += heartbeat.beats
            holder = lease.holder()
            if holder is not None and holder.get("owner") != lease.owner_id:
                # Duplicate claimant stole the lease mid-shard (forced
                # break / clock skew).  The results are still exactly-once
                # — commits are idempotent — but the theft is reported,
                # never swallowed.
                report.lease_conflicts += 1
                cache.log_lease_event("shard-lease-lost", {
                    "grid_id": spec.grid_id, "shard": shard.index,
                    "loser": lease.owner_id,
                    "thief": holder.get("owner")})
            board.mark_done(shard.index, {
                "owner": lease.owner_id,
                "points": len(points),
                "executed": len(missing) - len(quarantined),
                "skipped": skipped,
                "reclaimed": bool(skipped),
                "heartbeats": heartbeat.beats,
                "quarantined": [
                    {"point": list(point), "error": error}
                    for point, error in quarantined
                ],
            })
            lease.release()
            report.shards_claimed += 1
            progressed = True
            waited = 0.0
        if max_shards is not None and report.shards_claimed >= max_shards:
            break
        if board.all_done():
            break
        if not progressed:
            # Remaining shards are leased by live claimants: wait for
            # them to finish or their heartbeats to go stale.  Jittered
            # so a fleet does not poll (or re-claim) in lockstep.
            delay = retry_delay(1, 0.0, base=poll_s, cap=poll_s * 4)
            time.sleep(delay)
            waited += delay
            if waited > max_wait_s:
                break
    report.wall_s = time.perf_counter() - wall_start
    return report


def _point_key(point: tuple, catalog: str) -> str:
    from repro.experiments.cache import cache_key
    return cache_key(*point, catalog=catalog)


# ---------------------------------------------------------------------------
# Coordinator: the DistributedExecutor run_grid plugs in
# ---------------------------------------------------------------------------

class DistributedExecutor(Executor):
    """Spawns a local worker fleet and adopts their committed results.

    The coordinator side of the multi-host mode: it serializes the
    campaign spec, materializes the shard board, launches ``n_workers``
    ``adassure worker`` subprocesses pointed at the same cache directory,
    and polls the board until the campaign converges.  Completed points
    are *adopted* from the shared store (``merge(point, run, None)`` —
    the ``None`` phases mark them as executed elsewhere); anything still
    missing when the fleet exits (dead workers, quarantines, deadline)
    is returned as leftovers for the in-process serial fallback — the
    campaign converges even if every worker dies.

    Additional hosts join the same campaign by running ``adassure worker
    --grid-file <spec>`` against the shared cache; the coordinator
    neither knows nor cares who commits a point first.
    """

    name = "distributed"

    def __init__(self, grid: list[tuple], store, n_workers: int,
                 shard_points: int | None = None,
                 sim_engine: str | None = None,
                 timeout: float | None = None):
        self.grid = grid
        self.store = store
        self.n_workers = max(int(n_workers), 1)
        self.shard_points = shard_points
        self.sim_engine = sim_engine
        self.timeout = timeout

    def _spawn(self, spec_path: Path, index: int) -> subprocess.Popen:
        import repro
        env = os.environ.copy()
        from repro.experiments.cache import default_cache_dir
        env["ADASSURE_CACHE_DIR"] = str(default_cache_dir())
        # Workers run their shards serially/batched; they are the
        # parallelism, so no nested pools.
        env["ADASSURE_WORKERS"] = "1"
        if self.sim_engine:
            env["ADASSURE_SIM"] = self.sim_engine
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = (pkg_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else pkg_root)
        quiet = os.environ.get("ADASSURE_DIST_VERBOSE", "").strip() == ""
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--grid-file", str(spec_path),
             "--worker-id", f"w{index}"],
            env=env,
            stdout=subprocess.DEVNULL if quiet else None,
            stderr=subprocess.DEVNULL if quiet else None,
        )

    def execute(self, items, merge, stats, quarantine=None):
        cache = self.store.cache
        assert cache is not None, "distributed mode requires the disk cache"
        shard_points = resolve_shard_points(len(self.grid), self.n_workers,
                                            self.shard_points)
        spec = GridSpec.build(
            scenarios=_unique(p[0] for p in self.grid),
            controllers=_unique(p[1] for p in self.grid),
            attacks=_unique(p[2] for p in self.grid),
            seeds=_unique(p[4] for p in self.grid),
            intensity=self.grid[0][3], onset=self.grid[0][5],
            duration=self.grid[0][6], shard_points=shard_points,
        )
        spec_path = spec.save(cache)
        board = ShardBoard(cache, spec)
        board.ensure()
        stats.executor = self.name
        stats.shards_total = len(board.shards)
        stats.dist_workers = self.n_workers

        procs = [self._spawn(spec_path, i) for i in range(self.n_workers)]
        deadline = time.monotonic() + _dist_timeout(self.timeout)
        try:
            while not board.all_done():
                if all(proc.poll() is not None for proc in procs):
                    break  # fleet gone; fall back below
                if time.monotonic() > deadline:
                    for proc in procs:
                        if proc.poll() is None:
                            proc.kill()
                    break
                time.sleep(0.1)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.wait(timeout=30.0)

        # Aggregate the fleet's self-reported counters from done markers.
        done = 0
        for shard in board.shards:
            record = board.done_record(shard.index)
            if record is None:
                continue
            done += 1
            stats.heartbeats += int(record.get("heartbeats", 0))
            if record.get("reclaimed"):
                stats.shards_reclaimed += 1
        stats.shards_claimed = done

        # Adopt everything the fleet committed; whatever is missing
        # (dead workers, worker-side quarantines, deadline) degrades to
        # the in-process serial fallback.
        leftover: list[tuple] = []
        for point, failures in items:
            run = self.store.load(point)
            if run is not None:
                merge(point, run, None)
            else:
                leftover.append((point, failures))
        if board.all_done() and not leftover:
            board.cleanup()
        return leftover


def _unique(values) -> tuple:
    seen: list = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return tuple(seen)


# ---------------------------------------------------------------------------
# Lease / manifest health (adassure cache stats)
# ---------------------------------------------------------------------------

def lease_health(cache=None, ttl: float | None = None) -> dict:
    """Manifest/lease health of one cache directory.

    Reports what an operator needs before trusting (or cleaning) a shared
    campaign directory: leases with live heartbeats, stale leases whose
    owners are presumed dead, orphaned checkpoint shards (shard state
    left behind without a readable board, or next to an already-done
    marker), and the cumulative ``lease_conflicts`` event count.
    """
    from repro.experiments.cache import RunCache

    cache = cache if cache is not None else RunCache()
    ttl = ttl if ttl is not None else default_lease_ttl()
    checkpoints = cache.root / "checkpoints"
    health = {
        "active_leases": 0,
        "stale_leases": 0,
        "orphaned_shards": 0,
        "lease_conflicts": cache.lease_event_count(),
        "shard_boards": 0,
    }
    if not checkpoints.exists():
        return health
    for lease_path in checkpoints.rglob("*.lease"):
        state = lease_state(lease_path, ttl)
        if state == "active":
            health["active_leases"] += 1
        elif state == "stale":
            health["stale_leases"] += 1
    for shards_dir in checkpoints.glob("*.shards"):
        health["shard_boards"] += 1
        board_path = shards_dir / "board.json"
        try:
            json.loads(board_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Shard state without a readable board: unclaimable leftovers.
            health["orphaned_shards"] += 1
            continue
        for lease_path in shards_dir.glob("shard-*.lease"):
            done = lease_path.with_name(
                lease_path.name.replace(".lease", ".done.json"))
            if done.exists():
                # The shard finished but its claimant never released —
                # a corpse's lease next to committed work.
                health["orphaned_shards"] += 1
    return health
