"""Wire protocol for the trace-ingest service.

Every message is one **frame**::

    offset  size  field
    0       4     magic  b"ADSV"
    4       1     protocol version (readers reject anything else)
    5       1     frame type (FrameType)
    6       2     reserved (zero)
    8       4     header length  H  (big-endian u32)
    12      4     payload length P  (big-endian u32)
    16      4     CRC-32 over header + payload
    20      H     header: UTF-8 JSON object (seq numbers, session ids, ...)
    20+H    P     payload: raw bytes (CHUNK frames carry a binary trace
                  chunk in the ``.npz`` format of :mod:`repro.trace.io`,
                  so the server decodes it with the same magic-sniffing
                  reader the run cache uses)

Design notes:

* **Length-prefixed, never delimited** — a reader always knows exactly
  how many bytes to wait for, so a slow or stalled peer cannot wedge the
  parser, and a disconnect is detected as an *incomplete read* at a known
  boundary (:class:`FrameTruncated`), which the server treats as
  "session suspended, checkpoint and wait for resume".
* **CRC-guarded** — a torn or bit-flipped frame fails the checksum and
  raises :class:`ProtocolError` instead of feeding garbage records into a
  monitor.  Trace payloads additionally self-validate through the npz
  reader's own structure checks.
* **Versioned** — the version byte follows the same contract as the
  binary trace format: bump on any incompatible change, readers reject
  foreign versions with an actionable error.

Frame size limits bound a malicious or broken peer's memory cost before
any allocation happens.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

__all__ = [
    "FRAME_MAGIC",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "PROTOCOL_VERSION",
    "Frame",
    "FrameTruncated",
    "FrameType",
    "ProtocolError",
    "encode_frame",
    "read_frame",
]

FRAME_MAGIC = b"ADSV"
PROTOCOL_VERSION = 1
"""Wire format version; incompatible changes bump this."""

MAX_HEADER_BYTES = 1 << 20        # 1 MiB of JSON is already pathological
MAX_PAYLOAD_BYTES = 64 << 20      # one chunk must stay far below this

_PREFIX = struct.Struct("!4sBBxxIII")
PREFIX_BYTES = _PREFIX.size


class ProtocolError(ValueError):
    """The byte stream is not a valid frame (bad magic/version/CRC/size)."""


class FrameTruncated(ProtocolError):
    """The stream ended mid-frame (peer died or tore the frame)."""


class FrameType(IntEnum):
    """Every message the service speaks, both directions."""

    HELLO = 1      # client -> server: open a session (meta, session_id)
    WELCOME = 2    # server -> client: session accepted (next_seq)
    CHUNK = 3      # client -> server: trace records (seq; npz payload)
    ACK = 4        # server -> client: chunk applied (seq, live violations)
    BUSY = 5       # server -> client: backpressure (retry_after_s); the
    #                frame was NOT applied and must be resent
    FINISH = 6     # client -> server: stream complete, request verdict
    VERDICT = 7    # server -> client: the final CheckReport + diagnosis
    RESUME = 8     # client -> server: re-open an interrupted session
    RESUMED = 9    # server -> client: resume point (next_seq, verdict?)
    STATUS = 10    # client -> server: request fleet aggregates
    STATS = 11     # server -> client: fleet aggregates snapshot
    ERROR = 12     # server -> client: request rejected (message, fatal?)
    BYE = 13       # either direction: orderly close


@dataclass(slots=True)
class Frame:
    """One decoded frame."""

    type: FrameType
    header: dict = field(default_factory=dict)
    payload: bytes = b""

    def __repr__(self) -> str:  # compact: payloads can be megabytes
        return (f"Frame({self.type.name}, header={self.header}, "
                f"payload={len(self.payload)}B)")


def encode_frame(ftype: FrameType | int, header: dict | None = None,
                 payload: bytes = b"") -> bytes:
    """Serialize one frame to wire bytes."""
    header_bytes = json.dumps(header or {}, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte limit")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit")
    crc = zlib.crc32(payload, zlib.crc32(header_bytes))
    prefix = _PREFIX.pack(FRAME_MAGIC, PROTOCOL_VERSION, int(ftype),
                          len(header_bytes), len(payload), crc)
    return prefix + header_bytes + payload


def _decode_prefix(prefix: bytes) -> tuple[FrameType, int, int, int]:
    magic, version, ftype, header_len, payload_len, crc = \
        _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (not a service stream, or the "
            "stream lost sync)")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this build speaks version {PROTOCOL_VERSION})")
    try:
        ftype = FrameType(ftype)
    except ValueError:
        raise ProtocolError(f"unknown frame type {ftype}") from None
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header length {header_len} exceeds "
                            f"the {MAX_HEADER_BYTES}-byte limit")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"frame payload length {payload_len} exceeds "
                            f"the {MAX_PAYLOAD_BYTES}-byte limit")
    return ftype, header_len, payload_len, crc


def _decode_body(ftype: FrameType, header_bytes: bytes, payload: bytes,
                 crc: int) -> Frame:
    if zlib.crc32(payload, zlib.crc32(header_bytes)) != crc:
        raise ProtocolError(
            f"{ftype.name} frame failed its CRC check (torn or corrupted "
            "in transit)")
    try:
        header = json.loads(header_bytes) if header_bytes else {}
    except ValueError as exc:
        raise ProtocolError(f"{ftype.name} frame header is not valid "
                            f"JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"{ftype.name} frame header must be a JSON "
                            f"object, got {type(header).__name__}")
    return Frame(ftype, header, payload)


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read one frame from the stream.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    between messages).  An EOF *inside* a frame — the signature of a
    mid-frame disconnect or a torn write — raises :class:`FrameTruncated`
    so the caller can suspend the session instead of mistaking the
    partial bytes for an orderly close.
    """
    try:
        prefix = await reader.readexactly(PREFIX_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise FrameTruncated(
            f"stream ended {len(exc.partial)} byte(s) into a frame "
            "prefix") from exc
    ftype, header_len, payload_len, crc = _decode_prefix(prefix)
    try:
        header_bytes = await reader.readexactly(header_len)
        payload = await reader.readexactly(payload_len)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated(
            f"stream ended mid-{ftype.name} ({len(exc.partial)} of the "
            "remaining frame bytes arrived)") from exc
    return _decode_body(ftype, header_bytes, payload, crc)


def decode_frames(data: bytes) -> list[Frame]:
    """Decode a byte buffer holding zero or more complete frames.

    Synchronous sibling of :func:`read_frame` for tests and offline
    tooling; trailing partial bytes raise :class:`FrameTruncated`.
    """
    frames = []
    offset = 0
    while offset < len(data):
        if len(data) - offset < PREFIX_BYTES:
            raise FrameTruncated(
                f"{len(data) - offset} trailing byte(s) are not a frame")
        ftype, header_len, payload_len, crc = _decode_prefix(
            data[offset:offset + PREFIX_BYTES])
        end = offset + PREFIX_BYTES + header_len + payload_len
        if end > len(data):
            raise FrameTruncated(f"buffer ends mid-{ftype.name}")
        header_bytes = data[offset + PREFIX_BYTES:
                            offset + PREFIX_BYTES + header_len]
        payload = data[offset + PREFIX_BYTES + header_len:end]
        frames.append(_decode_body(ftype, header_bytes, payload, crc))
        offset = end
    return frames
