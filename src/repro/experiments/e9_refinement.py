"""E9 / Figure 5 — the methodology refinement loop converges.

Runs the staged catalog over an anomaly corpus (every attack class, several
seeds) and reports, per refinement iteration, how many anomalies remain
undetected or undiagnosed.  Expected shape: a monotone decrease — each
stage of assertions authored in response to gaps closes them.
"""

from __future__ import annotations

from repro.core.methodology import AnomalyCase, RefinementLoop
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_gap_proposals", "build_refinement_loop"]


def build_refinement_loop(config: ExperimentConfig | None = None,
                          workers: int | None = None,
                          propose_gaps: bool = False):
    """Gap counts per methodology iteration (staged catalog growth).

    With ``propose_gaps=True``, returns ``[loop_table, proposals_table]``:
    the second table runs the counterfactual separation-gap detector over
    the cases that stay ambiguous after the final iteration, automating
    the "author a separating assertion" step the loop otherwise leaves to
    a human (see :func:`build_gap_proposals`).
    """
    config = config or ExperimentConfig.full()
    runs = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )
    corpus = [AnomalyCase(trace=r.result.trace, true_cause=r.attack)
              for r in runs]
    iterations = RefinementLoop(corpus).run()

    table = Table(
        title="Figure 5 (E9): methodology refinement loop "
              f"({len(corpus)} anomaly cases, scenario={config.scenario})",
        columns=["iteration", "stage added", "# assertions", "undetected",
                 "undiagnosed", "diagnosed", "ambiguous"],
    )
    for i, iteration in enumerate(iterations, start=1):
        ambiguous = sum(1 for g in iteration.gaps if g.ambiguous)
        table.add_row(
            i,
            iteration.stage_names[-1],
            len(iteration.assertion_ids),
            iteration.undetected,
            iteration.undiagnosed,
            f"{iteration.diagnosed}/{iteration.total}",
            ambiguous,
        )
    table.add_note("undiagnosed = undetected OR wrongly ranked root cause; "
                   "stages accumulate left to right.")
    if not propose_gaps:
        return table
    proposals = build_gap_proposals(config, runs, iterations[-1])
    return [table, proposals]


def build_gap_proposals(config: ExperimentConfig, runs,
                        final_iteration) -> Table:
    """E9 addendum: counterfactual separation gaps after the last stage.

    For every case still ambiguous under the full catalog, the
    counterfactual tie-breaker re-simulates the confused cause pair; when
    even the simulated signatures fail to separate
    (:class:`~repro.experiments.counterfactual.SeparationGap`), the case
    is a genuine catalog gap and the proposed separating assertions are
    the refinement loop's next authoring targets.
    """
    from repro.experiments.counterfactual import counterfactual_tiebreak

    table = Table(
        title="E9 addendum: counterfactual separation of remaining "
              "ambiguous cases",
        columns=["true cause", "confused with", "re-ranked top",
                 "separable", "proposed separating assertions"],
    )
    # runs and final_iteration.gaps are corpus-aligned (one gap per case).
    for run, gap_info in zip(runs, final_iteration.gaps):
        if not gap_info.ambiguous:
            continue
        diagnosis, gap = counterfactual_tiebreak(
            run, onset=config.attack_onset, duration=config.duration)
        table.add_row(
            gap_info.true_cause,
            gap_info.top_cause,
            diagnosis.top().cause,
            "no — GAP" if gap is not None else "yes",
            ", ".join(gap.proposed) if gap is not None else "-",
        )
    if not table.rows:
        table.add_note("no case stayed ambiguous after the final stage")
    table.add_note("a non-separable pair means the catalog lacks a "
                   "distinguishing assertion even under re-simulation; "
                   "proposals feed the next refinement iteration.")
    return table


def main() -> None:
    print(build_refinement_loop().render())


if __name__ == "__main__":
    main()
