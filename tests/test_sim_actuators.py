"""Tests for repro.sim.actuators."""

import pytest

from repro.sim.actuators import ActuatorLimits, Actuators


class TestActuatorLimits:
    def test_defaults(self):
        ActuatorLimits()

    def test_invalid(self):
        with pytest.raises(ValueError):
            ActuatorLimits(steer_max=0.0)
        with pytest.raises(ValueError):
            ActuatorLimits(steer_tau=-0.1)


class TestActuators:
    def test_ideal_actuator_is_instant(self):
        act = Actuators(ActuatorLimits(steer_tau=0.0, accel_tau=0.0,
                                       steer_rate_max=100.0))
        steer, accel = act.apply(0.3, 1.5, 0.05)
        assert steer == pytest.approx(0.3)
        assert accel == pytest.approx(1.5)

    def test_lag_approaches_command(self):
        act = Actuators(ActuatorLimits(steer_tau=0.15, steer_rate_max=10.0))
        for _ in range(200):
            steer, _ = act.apply(0.3, 0.0, 0.05)
        assert steer == pytest.approx(0.3, abs=1e-3)

    def test_lag_is_gradual(self):
        act = Actuators(ActuatorLimits(steer_tau=0.2, steer_rate_max=10.0))
        steer, _ = act.apply(0.3, 0.0, 0.05)
        assert 0.0 < steer < 0.3

    def test_rate_limit(self):
        act = Actuators(ActuatorLimits(steer_tau=0.0, steer_rate_max=0.5))
        steer, _ = act.apply(0.6, 0.0, 0.05)
        assert steer == pytest.approx(0.025)  # 0.5 rad/s * 0.05 s

    def test_saturation(self):
        act = Actuators(ActuatorLimits(steer_max=0.5, steer_tau=0.0,
                                       steer_rate_max=100.0))
        steer, _ = act.apply(2.0, 0.0, 0.05)
        assert steer == pytest.approx(0.5)

    def test_brake_and_accel_saturation(self):
        act = Actuators(ActuatorLimits(accel_max=3.0, brake_max=6.0,
                                       accel_tau=0.0))
        __, accel = act.apply(0.0, 10.0, 0.05)
        assert accel == pytest.approx(3.0)
        __, accel = act.apply(0.0, -20.0, 0.05)
        assert accel == pytest.approx(-6.0)

    def test_reset(self):
        act = Actuators()
        act.apply(0.3, 2.0, 0.5)
        act.reset()
        assert act.steer == 0.0
        assert act.accel == 0.0

    def test_reset_clamps(self):
        act = Actuators(ActuatorLimits(steer_max=0.5))
        act.reset(steer=2.0)
        assert act.steer == pytest.approx(0.5)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            Actuators().apply(0.0, 0.0, 0.0)
