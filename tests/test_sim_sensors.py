"""Tests for repro.sim.sensors: schedules, noise models, determinism."""

import numpy as np
import pytest

from repro.sim.dynamics import VehicleState
from repro.sim.rng import RngStreams
from repro.sim.sensors.base import SensorConfig
from repro.sim.sensors.compass import Compass, CompassConfig
from repro.sim.sensors.gps import Gps, GpsConfig
from repro.sim.sensors.imu import Imu, ImuConfig
from repro.sim.sensors.odometry import Odometry, OdometryConfig
from repro.sim.sensors.suite import SensorSuite, SensorSuiteConfig

STATE = VehicleState(x=10.0, y=-5.0, yaw=0.3, v=8.0, yaw_rate=0.1, accel=0.5)


def rng():
    return RngStreams(3).stream("test")


class TestSensorConfig:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SensorConfig(rate_hz=0.0)

    def test_invalid_dropout(self):
        with pytest.raises(ValueError):
            SensorConfig(rate_hz=10.0, dropout_prob=1.0)

    def test_period(self):
        assert SensorConfig(rate_hz=20.0).period == pytest.approx(0.05)


class TestSchedule:
    def test_rate_respected(self):
        gps = Gps(GpsConfig(rate_hz=10.0, noise_std=0.0, walk_std=0.0), rng())
        readings = [gps.poll(i * 0.05, STATE) for i in range(100)]  # 5 s at 20 Hz
        fresh = [r for r in readings if r is not None]
        assert len(fresh) == 50  # 10 Hz over 5 s

    def test_first_sample_at_zero(self):
        gps = Gps(GpsConfig(noise_std=0.0, walk_std=0.0), rng())
        assert gps.poll(0.0, STATE) is not None

    def test_reset_restarts_schedule(self):
        gps = Gps(GpsConfig(noise_std=0.0, walk_std=0.0), rng())
        gps.poll(0.0, STATE)
        gps.reset()
        assert gps.poll(0.0, STATE) is not None

    def test_dropout(self):
        config = GpsConfig(rate_hz=10.0, dropout_prob=0.5, noise_std=0.0,
                           walk_std=0.0)
        gps = Gps(config, rng())
        fresh = sum(gps.poll(i * 0.1, STATE) is not None for i in range(1000))
        assert 400 < fresh < 600


class TestGps:
    def test_noiseless_exact(self):
        gps = Gps(GpsConfig(noise_std=0.0, walk_std=0.0), rng())
        fix = gps.poll(0.0, STATE)
        assert fix.x == pytest.approx(STATE.x)
        assert fix.y == pytest.approx(STATE.y)

    def test_noise_spread(self):
        gps = Gps(GpsConfig(rate_hz=100.0, noise_std=0.5, walk_std=0.0), rng())
        xs = [gps.poll(i * 0.01, STATE).x for i in range(2000)]
        assert np.std(xs) == pytest.approx(0.5, rel=0.15)

    def test_offset_helper(self):
        fix = Gps(GpsConfig(noise_std=0.0, walk_std=0.0), rng()).poll(0.0, STATE)
        shifted = fix.offset(1.0, -2.0)
        assert shifted.x == fix.x + 1.0
        assert shifted.y == fix.y - 2.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GpsConfig(noise_std=-1.0)


class TestImu:
    def test_noiseless_biasless_exact(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.0,
                           accel_noise_std=0.0, accel_bias_std=0.0)
        imu = Imu(config, rng())
        reading = imu.poll(0.0, STATE)
        assert reading.yaw_rate == pytest.approx(STATE.yaw_rate)
        assert reading.accel == pytest.approx(STATE.accel)

    def test_bias_constant_within_run(self):
        config = ImuConfig(gyro_noise_std=0.0, gyro_bias_std=0.01,
                           accel_noise_std=0.0, accel_bias_std=0.0,
                           rate_hz=100.0)
        imu = Imu(config, rng())
        r1 = imu.poll(0.0, STATE)
        r2 = imu.poll(0.01, STATE)
        assert r1.yaw_rate == pytest.approx(r2.yaw_rate)
        assert imu.gyro_bias != 0.0

    def test_reading_mutators(self):
        imu = Imu(ImuConfig(), rng())
        reading = imu.poll(0.0, STATE)
        assert reading.with_yaw_rate(9.0).yaw_rate == 9.0
        assert reading.with_accel(-1.0).accel == -1.0


class TestOdometry:
    def test_noiseless_exact(self):
        odo = Odometry(OdometryConfig(noise_std=0.0, scale_error_std=0.0), rng())
        assert odo.poll(0.0, STATE).speed == pytest.approx(STATE.v)

    def test_never_negative(self):
        odo = Odometry(OdometryConfig(rate_hz=100.0, noise_std=5.0,
                                      scale_error_std=0.0), rng())
        slow = VehicleState(v=0.1)
        speeds = [odo.poll(i * 0.01, slow).speed for i in range(500)]
        assert min(speeds) >= 0.0

    def test_scaled_helper(self):
        odo = Odometry(OdometryConfig(noise_std=0.0, scale_error_std=0.0), rng())
        reading = odo.poll(0.0, STATE)
        assert reading.scaled(0.5).speed == pytest.approx(STATE.v * 0.5)


class TestCompass:
    def test_noiseless_exact(self):
        compass = Compass(CompassConfig(noise_std=0.0), rng())
        assert compass.poll(0.0, STATE).yaw == pytest.approx(STATE.yaw)

    def test_rotated_wraps(self):
        compass = Compass(CompassConfig(noise_std=0.0), rng())
        reading = compass.poll(0.0, VehicleState(yaw=3.0))
        rotated = reading.rotated(0.5)
        assert -np.pi < rotated.yaw <= np.pi


class TestSuite:
    def test_poll_all_channels_at_t0(self):
        suite = SensorSuite(SensorSuiteConfig.noiseless(), RngStreams(5))
        readings = suite.poll(0.0, STATE)
        assert readings.gps is not None
        assert readings.imu is not None
        assert readings.odometry is not None
        assert readings.compass is not None
        assert readings.any_fresh()

    def test_determinism_across_instances(self):
        a = SensorSuite(SensorSuiteConfig(), RngStreams(5))
        b = SensorSuite(SensorSuiteConfig(), RngStreams(5))
        ra = a.poll(0.0, STATE)
        rb = b.poll(0.0, STATE)
        assert ra.gps.x == rb.gps.x
        assert ra.imu.yaw_rate == rb.imu.yaw_rate

    def test_reset(self):
        suite = SensorSuite(SensorSuiteConfig.noiseless(), RngStreams(5))
        suite.poll(0.0, STATE)
        suite.reset()
        assert suite.poll(0.0, STATE).any_fresh()
