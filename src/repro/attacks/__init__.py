"""Attack and fault injection.

Attacks sit man-in-the-middle between sensors and the estimator (sensor
channels) or between the controller and the actuators (command channel) —
the positions a compromised ECU, spoofer, or bus attacker occupies on a
real vehicle.  Each attack carries a scheduling window and transforms the
messages of exactly one channel; the engine records exact ground-truth
labels, which is what lets the experiments score detection and diagnosis.
"""

from repro.attacks.actuator import SteeringOffsetAttack, SteeringStuckAttack
from repro.attacks.base import Attack, AttackWindow
from repro.attacks.campaign import (
    ATTACK_CLASSES,
    AttackCampaign,
    combined_attack,
    make_attack,
    standard_attack,
)
from repro.attacks.channel import CommandDelayAttack, CommandDropAttack
from repro.attacks.compass import CompassOffsetAttack
from repro.attacks.gps import (
    GpsBiasAttack,
    GpsDriftAttack,
    GpsFreezeAttack,
    GpsNoiseAttack,
    GpsReplayAttack,
)
from repro.attacks.imu import ImuAccelBiasAttack, ImuGyroBiasAttack
from repro.attacks.odometry import OdometryScaleAttack
from repro.attacks.radar import (
    RadarBlindAttack,
    RadarGhostAttack,
    RadarRangeScaleAttack,
)

__all__ = [
    "Attack",
    "AttackWindow",
    "GpsBiasAttack",
    "GpsDriftAttack",
    "GpsFreezeAttack",
    "GpsNoiseAttack",
    "GpsReplayAttack",
    "ImuGyroBiasAttack",
    "ImuAccelBiasAttack",
    "OdometryScaleAttack",
    "CompassOffsetAttack",
    "SteeringOffsetAttack",
    "SteeringStuckAttack",
    "RadarRangeScaleAttack",
    "RadarGhostAttack",
    "RadarBlindAttack",
    "CommandDropAttack",
    "CommandDelayAttack",
    "AttackCampaign",
    "ATTACK_CLASSES",
    "make_attack",
    "standard_attack",
    "combined_attack",
]
