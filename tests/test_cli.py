"""Tests for the adassure CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "s_curve"
        assert args.attack == "none"

    def test_invalid_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--attack", "nope"])

    def test_experiment_executor_choices(self):
        args = build_parser().parse_args(
            ["experiment", "e1", "--executor", "distributed",
             "--dist-workers", "3"])
        assert args.executor == "distributed"
        assert args.dist_workers == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["experiment", "e1", "--executor", "teleport"])

    def test_worker_requires_grid_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])
        args = build_parser().parse_args(
            ["worker", "--grid-file", "spec.json", "--worker-id", "w0",
             "--max-shards", "2", "--lease-ttl", "5"])
        assert args.grid_file == "spec.json"
        assert args.worker_id == "w0"
        assert args.max_shards == 2
        assert args.lease_ttl == 5.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pure_pursuit" in out
        assert "A16" in out

    def test_run_nominal(self, capsys):
        code = main(["run", "--scenario", "straight", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ADAssure check report" in out
        assert "root-cause ranking" in out

    def test_run_unknown_scenario(self, capsys):
        assert main(["run", "--scenario", "mars"]) == 2

    def test_run_attack_save_and_check(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "run", "--scenario", "straight", "--attack", "gps_bias",
            "--onset", "10", "--save", str(trace_path),
        ])
        assert code == 0
        assert trace_path.exists()
        capsys.readouterr()
        assert main(["check", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "gps_bias" in out  # diagnosis names the injected cause

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_e7_quick(self, capsys):
        # e7 is the cheapest experiment: one simulation + monitor sweeps.
        assert main(["experiment", "e7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_diff_command(self, tmp_path, capsys):
        ref = tmp_path / "ref.jsonl"
        cand = tmp_path / "cand.jsonl"
        main(["run", "--scenario", "straight", "--save", str(ref)])
        main(["run", "--scenario", "straight", "--attack", "gps_bias",
              "--onset", "10", "--save", str(cand)])
        capsys.readouterr()
        assert main(["diff", str(ref), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "divergence timeline" in out
        assert "gps" in out

    def test_calibrate_command(self, tmp_path, capsys):
        trace = tmp_path / "nominal.jsonl"
        main(["run", "--scenario", "straight", "--save", str(trace)])
        spec_path = tmp_path / "spec.json"
        capsys.readouterr()
        assert main(["calibrate", str(trace), "--output",
                     str(spec_path)]) == 0
        assert spec_path.exists()
        out = capsys.readouterr().out
        assert "calibration over 1 nominal trace" in out


class TestWorkerCommand:
    @pytest.fixture()
    def fresh_cache(self, tmp_path, monkeypatch):
        from repro.experiments.runner import clear_cache

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()
        yield tmp_path
        clear_cache()

    def test_worker_runs_campaign_and_reports_json(self, fresh_cache,
                                                   capsys):
        import json

        from repro.experiments.cache import RunCache
        from repro.experiments.distributed import GridSpec

        spec = GridSpec.build(
            scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("gps_bias",), seeds=(1, 7), intensity=1.0,
            onset=5.0, duration=6.0, shard_points=1)
        path = spec.save(RunCache())
        assert main(["worker", "--grid-file", str(path),
                     "--worker-id", "cli-test"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["worker_id"] == "cli-test"
        assert report["shards_claimed"] == 2
        assert report["points_executed"] == 2
        assert RunCache().stats()["entries"] == 2

    def test_worker_missing_spec_is_actionable(self, fresh_cache, capsys):
        assert main(["worker", "--grid-file", "/nope/missing.json"]) == 2
        assert "cannot read grid spec" in capsys.readouterr().err

    def test_cache_stats_report_lease_health(self, fresh_cache, capsys):
        import json
        import time

        from repro.experiments.cache import RunCache
        from repro.experiments.distributed import GridSpec, ShardBoard

        spec = GridSpec.build(
            scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("gps_bias",), seeds=(1,), intensity=1.0,
            onset=5.0, duration=6.0, shard_points=1)
        board = ShardBoard(RunCache(), spec)
        board.ensure()
        board.lease_path(0).write_text(json.dumps(
            {"owner": "corpse", "heartbeat": time.time() - 99999.0}))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "leases     : 0 active, 1 stale" in out
        assert "shards     : 1 board(s), 0 orphaned" in out
        assert "conflicts  : 0 lease event(s)" in out
