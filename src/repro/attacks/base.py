"""Attack base class: scheduling window + per-channel message hooks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imported for annotations only; avoids a package cycle
    from repro.sim.sensors.compass import CompassReading
    from repro.sim.sensors.gps import GpsFix
    from repro.sim.sensors.imu import ImuReading
    from repro.sim.sensors.odometry import OdometryReading
    from repro.sim.sensors.radar import RadarReading

__all__ = ["AttackWindow", "Attack"]


@dataclass(frozen=True, slots=True)
class AttackWindow:
    """Half-open activation interval ``[start, end)`` in seconds."""

    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("attack window end must be after start")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    def elapsed(self, t: float) -> float:
        """Time since attack onset (0 before onset)."""
        return max(t - self.start, 0.0)


class Attack:
    """A scheduled message-level attack on one channel.

    Subclasses set :attr:`channel` and override the hook for that channel;
    every hook defaults to pass-through so an attack never perturbs other
    channels.  A hook returning ``None`` drops the message (denial of
    service).  Stochastic attacks receive a generator via :meth:`bind_rng`.
    """

    name: str = "attack"
    channel: str = "none"

    def __init__(self, window: AttackWindow | None = None):
        self.window = window or AttackWindow()
        self.rng: np.random.Generator | None = None

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the attack's private randomness stream (engine calls this)."""
        self.rng = rng

    def reset(self) -> None:
        """Clear per-run internal state (replay buffers etc.)."""

    def active(self, t: float) -> bool:
        return self.window.contains(t)

    # ------------------------------------------------------------------
    # Channel hooks (identity by default).  Hooks are only invoked while
    # the attack is active.
    # ------------------------------------------------------------------
    def on_gps(self, t: float, fix: GpsFix) -> GpsFix | None:
        return fix

    def on_imu(self, t: float, reading: ImuReading) -> ImuReading | None:
        return reading

    def on_odometry(self, t: float, reading: OdometryReading) -> OdometryReading | None:
        return reading

    def on_compass(self, t: float, reading: CompassReading) -> CompassReading | None:
        return reading

    def on_radar(self, t: float, reading: RadarReading) -> RadarReading | None:
        return reading

    def on_command(
        self, t: float, steer: float, accel: float
    ) -> tuple[float, float] | None:
        return (steer, accel)

    # ------------------------------------------------------------------
    # Observation hooks: called even while inactive, so replay/freeze
    # attacks can fill their buffers with pre-attack traffic.
    # ------------------------------------------------------------------
    def observe_gps(self, t: float, fix: GpsFix) -> None:
        """See every (pre-attack-window) GPS fix; default ignores it."""

    def observe(self, t: float, value) -> None:
        """See every pre-injection message on this injector's channel.

        The engine calls this for injectors whose :attr:`channel` matches
        the message, *before* any hook runs and regardless of whether the
        window is active — freeze/replay fault models use it to capture
        the last healthy value.  Default ignores the message.
        """

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, channel={self.channel!r}, "
            f"window=[{self.window.start}, {self.window.end}))"
        )
