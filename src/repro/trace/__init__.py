"""Trace capture and analysis.

ADAssure is a *trace-based* methodology: everything downstream (assertions,
diagnosis, experiment tables) consumes the per-step records this package
defines.  The schema deliberately records three parallel views of the run —
ground truth, observed (sensors + estimate), and commanded/applied controls
— so assertions can be written against exactly the channels a given
deployment would have.
"""

from repro.trace.analysis import (
    first_crossing,
    moving_average,
    sign_change_rate,
    sliding_windows,
)
from repro.trace.diff import TraceDiff, diff_traces
from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    trace_from_jsonl_bytes,
    trace_to_jsonl_bytes,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.metrics import TraceMetrics, compute_metrics
from repro.trace.recorder import TraceRecorder
from repro.trace.schema import Trace, TraceMeta, TraceRecord

__all__ = [
    "TraceRecord",
    "TraceMeta",
    "Trace",
    "TraceRecorder",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_trace_csv",
    "read_trace_csv",
    "trace_to_jsonl_bytes",
    "trace_from_jsonl_bytes",
    "TraceMetrics",
    "compute_metrics",
    "moving_average",
    "sliding_windows",
    "sign_change_rate",
    "first_crossing",
    "diff_traces",
    "TraceDiff",
]
