"""Benign sensor-fault injection.

The adversarial counterpart lives in :mod:`repro.attacks`; this package
models the *non-malicious* ways sensor input goes bad — dropouts,
freezes, NaN bursts, latency, intermittent loss — through the same
engine injection point, so faults and attacks compose in one run.  The
trace records fault ground truth (``fault_active`` / ``fault_name`` /
``fault_channel``) exactly like attack labels, which is what lets the
degradation assertions (A21/A22) and experiment E14 score behaviour
inside fault windows.
"""

from repro.faults.base import FAULT_CHANNELS, Fault
from repro.faults.campaign import (
    FAULT_CLASSES,
    FaultCampaign,
    combined_fault,
    make_fault,
    standard_fault,
)
from repro.faults.models import Dropout, Freeze, Intermittent, Latency, NaNBurst

__all__ = [
    "Fault",
    "FAULT_CHANNELS",
    "FAULT_CLASSES",
    "FaultCampaign",
    "make_fault",
    "standard_fault",
    "combined_fault",
    "Dropout",
    "Freeze",
    "NaNBurst",
    "Latency",
    "Intermittent",
]
