"""Tests for repro.sim.rng: deterministic named streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("gps")
        b = RngStreams(42).stream("gps")
        assert np.allclose(a.normal(size=10), b.normal(size=10))

    def test_different_names_independent(self):
        rngs = RngStreams(42)
        a = rngs.stream("gps").normal(size=100)
        b = rngs.stream("imu").normal(size=100)
        assert not np.allclose(a, b)

    def test_same_name_returns_same_generator(self):
        rngs = RngStreams(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        # The key isolation property: consuming from one stream (or
        # creating new ones) never changes another stream's sequence.
        solo = RngStreams(7).stream("sensor.gps").normal(size=20)
        rngs = RngStreams(7)
        rngs.stream("attack.0").normal(size=5)
        rngs.stream("sensor.imu").normal(size=13)
        combined = rngs.stream("sensor.gps").normal(size=20)
        assert np.allclose(solo, combined)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("gps").normal(size=10)
        b = RngStreams(2).stream("gps").normal(size=10)
        assert not np.allclose(a, b)

    def test_child_deterministic_and_distinct(self):
        base = RngStreams(9)
        c1 = base.child("mc", 0)
        c2 = base.child("mc", 1)
        c1_again = RngStreams(9).child("mc", 0)
        assert c1.seed == c1_again.seed
        assert c1.seed != c2.seed
        assert c1.seed != base.seed

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            RngStreams(-1)
        with pytest.raises(ValueError):
            RngStreams(1.5)  # type: ignore[arg-type]

    def test_repr_lists_streams(self):
        rngs = RngStreams(3)
        rngs.stream("b")
        rngs.stream("a")
        assert "a" in repr(rngs) and "b" in repr(rngs)


class TestPerLane:
    """Regression: the batched engine's lane streams replay the serial ones."""

    def test_lane_matches_solo_streams(self):
        # Lane i of a batch must draw bit-for-bit what a serial runner
        # seeded with seeds[i] would draw, for every named stream, even
        # when lanes consume interleaved (the batch engine's tape
        # builder reads all lanes' sensor streams up front).
        seeds = (3, 11, 11, 42)
        lanes = RngStreams.per_lane(seeds)
        assert len(lanes) == len(seeds)
        names = ("sensor.gps", "sensor.imu", "attack.0.gps_bias")
        interleaved = {}
        for name in names:  # draw across lanes in engine order
            for i, lane in enumerate(lanes):
                interleaved[(i, name)] = lane.stream(name).normal(size=32)
        for i, seed in enumerate(seeds):
            solo = RngStreams(seed)
            for name in names:
                expected = solo.stream(name).normal(size=32)
                assert np.array_equal(interleaved[(i, name)], expected)

    def test_equal_seeds_give_equal_lanes(self):
        a, b = RngStreams.per_lane([5, 5])
        assert np.array_equal(a.stream("x").normal(size=8),
                              b.stream("x").normal(size=8))

    def test_distinct_seeds_give_independent_lanes(self):
        a, b = RngStreams.per_lane([5, 6])
        assert not np.allclose(a.stream("x").normal(size=8),
                               b.stream("x").normal(size=8))
