"""Bench E7 — Figure 4: online monitor overhead per step."""

from conftest import run_and_print

from repro.experiments import build_monitor_overhead


def test_e7_monitor_overhead(benchmark, quick_config):
    table = run_and_print(benchmark, build_monitor_overhead, quick_config)
    per_step = [float(r[1]) for r in table.rows]
    pct_full = float(table.rows[-1][2])
    # Paper-shape claims: cost grows with assertion count and the full
    # catalog stays a small fraction of the 50 ms control period.
    assert per_step[-1] >= per_step[0]
    assert pct_full < 20.0
