"""Trace differencing: localize *when and where* two runs diverge.

A standard ADAssure debugging move: re-run the scenario without the
suspected fault (or with yesterday's controller build) and diff the
traces.  The diff reports, per channel, the first time the two runs
diverge beyond a channel-appropriate tolerance — which orders the causal
chain (the GPS channel diverging before the steering command diverging
before the pose diverging tells the story at a glance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.schema import Trace

__all__ = ["ChannelDivergence", "TraceDiff", "diff_traces"]

# Channel -> absolute tolerance used to call a divergence.  Chosen per
# physical unit at roughly 3x the nominal sensor/actuation noise floor.
DEFAULT_TOLERANCES: dict[str, float] = {
    "true_x": 0.5, "true_y": 0.5, "true_yaw": 0.05, "true_v": 0.5,
    "cte_true": 0.5, "heading_err_true": 0.05,
    "gps_x": 1.2, "gps_y": 1.2,
    "imu_yaw_rate": 0.03, "odom_speed": 0.5, "compass_yaw": 0.05,
    "est_x": 0.8, "est_y": 0.8, "est_yaw": 0.05, "est_v": 0.5,
    "nis_gps": 8.0, "nis_speed": 6.0, "nis_compass": 6.0,
    "steer_cmd": 0.04, "accel_cmd": 0.8,
    "steer_applied": 0.04, "accel_applied": 0.8,
    "radar_range": 1.0, "radar_range_rate": 0.8,
    "target_speed": 0.5,
}


@dataclass(frozen=True, slots=True)
class ChannelDivergence:
    """First divergence of one channel between two traces."""

    channel: str
    t_first: float
    """Time of the first sample beyond tolerance."""
    max_abs_diff: float
    tolerance: float


@dataclass(slots=True)
class TraceDiff:
    """Ordered per-channel divergence report."""

    duration_compared: float
    divergences: list[ChannelDivergence]
    """Only channels that diverged, ordered by first divergence time."""

    @property
    def first_channel(self) -> str | None:
        """The first channel to diverge — the head of the causal chain."""
        return self.divergences[0].channel if self.divergences else None

    def diverged(self, channel: str) -> bool:
        return any(d.channel == channel for d in self.divergences)

    def render(self, max_rows: int = 15) -> str:
        """Human-readable divergence timeline."""
        if not self.divergences:
            return ("traces are equivalent within tolerances over "
                    f"{self.duration_compared:.1f} s")
        lines = [
            f"trace divergence timeline ({self.duration_compared:.1f} s "
            f"compared; {len(self.divergences)} channel(s) diverged):"
        ]
        for d in self.divergences[:max_rows]:
            lines.append(
                f"  t={d.t_first:6.2f} s  {d.channel:<18} "
                f"max |diff| {d.max_abs_diff:9.3f} (tol {d.tolerance:g})"
            )
        if len(self.divergences) > max_rows:
            lines.append(f"  ... and {len(self.divergences) - max_rows} more")
        return "\n".join(lines)


def diff_traces(
    reference: Trace,
    candidate: Trace,
    channels: list[str] | None = None,
    tolerances: dict[str, float] | None = None,
) -> TraceDiff:
    """Compare two traces channel by channel.

    The traces must share the same time base (same scenario/dt); the
    comparison covers their common prefix.

    Args:
        reference: the known-good run.
        candidate: the anomalous run.
        channels: channels to compare (default: every channel with a
            default tolerance).
        tolerances: per-channel absolute tolerance overrides.

    Raises:
        ValueError: on empty traces or mismatched time bases.
    """
    if len(reference) == 0 or len(candidate) == 0:
        raise ValueError("cannot diff empty traces")
    if abs(reference.dt - candidate.dt) > 1e-9:
        raise ValueError(
            f"traces have different time steps "
            f"({reference.dt} vs {candidate.dt})"
        )
    n = min(len(reference), len(candidate))
    ref = reference[:n]
    cand = candidate[:n]
    t = ref.times()

    tol_map = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol_map.update(tolerances)
    selected = channels if channels is not None else list(DEFAULT_TOLERANCES)

    divergences = []
    for channel in selected:
        if channel not in tol_map:
            raise ValueError(f"no tolerance known for channel {channel!r}; "
                             "pass one via `tolerances`")
        tol = tol_map[channel]
        diff = np.abs(ref.column(channel) - cand.column(channel))
        beyond = np.flatnonzero(diff > tol)
        if beyond.size:
            divergences.append(ChannelDivergence(
                channel=channel,
                t_first=float(t[beyond[0]]),
                max_abs_diff=float(diff.max()),
                tolerance=tol,
            ))
    divergences.sort(key=lambda d: (d.t_first, d.channel))
    return TraceDiff(
        duration_compared=float(t[-1] - t[0]) if n > 1 else 0.0,
        divergences=divergences,
    )
