"""E14 (extension) — graceful degradation under benign sensor faults.

Attacks need an adversary; sensors also just *break*.  E14 runs the
fault grid (:mod:`repro.faults`: dropout, freeze, NaN burst, intermittent
loss, correlated multi-channel loss) against two stacks — the baseline
follower and the same follower wrapped in the
:class:`~repro.control.supervisor.SupervisedController` watchdog — and
scores both with the full catalog, including the degradation assertions
A21 (bounded tracking inside fault windows) and A22 (safe stop on
multi-sensor loss).

Expected shape, measured in EXPERIMENTS.md:

* ``gps_freeze`` is the catastrophic case for the unprotected stack — a
  frozen fix looks fresh and *drags* the EKF (tens to hundreds of
  meters of cross-track error; A1/A21 fire), while the supervisor's
  repeated-sample quarantine times the channel out and safe-stops;
* ``gps_nan`` **crashes** the unprotected stack outright (a NaN reaches
  the EKF and poisons the state); the supervisor quarantines it;
* correlated ``gps+compass`` loss leaves the unprotected stack cruising
  blind on dead reckoning (A22 fires); the supervisor stops within its
  watchdog-plus-grace budget;
* single benign faults (``gps_dropout``, ``gps_intermittent``) stay
  bounded for both stacks — degradation, not disaster.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scored
from repro.experiments.tables import Table
from repro.faults.campaign import combined_fault, standard_fault
from repro.sim.engine import run_scenario
from repro.sim.scenario import standard_scenarios

__all__ = ["build_degradation_table", "E14_FAULTS"]

E14_FAULTS: tuple[str, ...] = (
    "none",
    "gps_dropout",
    "gps_intermittent",
    "gps_freeze",
    "gps_nan",
    "odom_freeze",
    "gps_dropout+compass_dropout",
)
"""Fault grid: single faults plus the correlated two-channel loss
(``+``-joined, e.g. one power rail feeding GNSS and compass)."""

_CONTROLLER = "pure_pursuit"
_WATCHED = ("A1", "A21", "A22")
"""The headline assertions reported per cell (full reports are cached)."""


def _campaign_for(fault_label: str, onset: float):
    classes = fault_label.split("+")
    if len(classes) > 1:
        return combined_fault(classes, onset=onset)
    return standard_fault(fault_label, onset=onset)


def _run_cell(fault_label: str, supervised: bool, scenario_name: str,
              seed: int, onset: float, duration: float | None):
    scenario = standard_scenarios(seed=seed, duration=duration)[scenario_name]
    return run_scenario(
        scenario,
        controller=_CONTROLLER,
        faults=_campaign_for(fault_label, onset),
        supervised=supervised,
    )


def build_degradation_table(config: ExperimentConfig | None = None,
                            workers: int | None = None) -> Table:
    """Supervised vs. unsupervised stack across the fault grid.

    ``workers`` is accepted for experiment-interface uniformity; these
    off-grid runs execute in-process but go through the shared run cache
    (:func:`~repro.experiments.runner.run_scored`).
    """
    config = config or ExperimentConfig.full()
    onset = config.attack_onset
    table = Table(
        title="Table 10 (E14, extension): graceful degradation under "
              f"sensor faults (scenario={config.scenario}, "
              f"controller={_CONTROLLER}, {len(config.seeds)} seed(s), "
              f"fault onset {onset:g}s)",
        columns=["fault", "stack", "max|cte| [m]", "crashed",
                 "safe stop [s]"] + list(_WATCHED),
    )

    for fault_label in E14_FAULTS:
        for supervised in (False, True):
            stack = "supervised" if supervised else "baseline"
            crashes = 0
            ctes: list[float] = []
            stop_latencies: list[float] = []
            fired = {aid: 0 for aid in _WATCHED}
            for seed in config.seeds:
                params = {
                    "kind": "degradation", "fault": fault_label,
                    "supervised": supervised, "scenario": config.scenario,
                    "controller": _CONTROLLER, "seed": seed,
                    "onset": onset, "duration": config.duration,
                }
                try:
                    result, report = run_scored(
                        params,
                        lambda: _run_cell(fault_label, supervised,
                                          config.scenario, seed, onset,
                                          config.duration),
                    )
                except ValueError:
                    # The unprotected stack dies when a NaN burst reaches
                    # the estimator; that *is* the measurement.
                    crashes += 1
                    continue
                ctes.append(result.metrics.max_abs_cte)
                for aid in _WATCHED:
                    fired[aid] += aid in report.fired_ids
                cols = result.trace.columns()
                engaged = np.flatnonzero(
                    cols.get("supervisor_mode") == "safe_stop")
                if engaged.size:
                    stop_latencies.append(
                        float(cols.get("t")[engaged[0]]) - onset)
            n = len(config.seeds)
            survived = n - crashes
            mean_stop = (sum(stop_latencies) / len(stop_latencies)
                         if stop_latencies else None)
            table.add_row(
                fault_label,
                stack,
                f"{max(ctes):.2f}" if ctes else "-",
                f"{crashes}/{n}",
                f"+{mean_stop:.2f}" if mean_stop is not None else "-",
                *(f"{fired[aid]}/{survived}" if survived else "-"
                  for aid in _WATCHED),
            )
    table.add_note(
        "safe stop [s] is the mean engagement latency after fault onset "
        "(watchdog timeout + dead-reckoning budget for single critical "
        "channels, timeout only for multi-channel loss); A21/A22 columns "
        "count runs that violated the degradation contract among the "
        "runs that survived to produce a trace."
    )
    return table


def main() -> None:
    print(build_degradation_table().render())


if __name__ == "__main__":
    main()
