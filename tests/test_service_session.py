"""Session-layer tests: chunk codec, the exactly-once gate, scoring,
monitor pooling."""

from __future__ import annotations

import pytest

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.monitor import OnlineMonitor
from repro.service.session import (
    ChunkRejected,
    MonitorPool,
    SessionState,
    chunk_to_bytes,
    records_from_chunk,
    score_trace_bytes,
)
from repro.trace.io import trace_to_npz_bytes
from repro.trace.schema import TraceMeta

from conftest import make_trace
from service_utils import attacked_trace as _attacked_trace


def _chunks(trace, size):
    records = list(trace.records)
    return [(i // size, chunk_to_bytes(trace.meta, records[i:i + size]))
            for i in range(0, len(records), size)]


class TestChunkCodec:
    def test_roundtrip_exact(self):
        trace = make_trace(30)
        meta, records = records_from_chunk(
            chunk_to_bytes(trace.meta, list(trace.records)[5:15]))
        assert len(records) == 10
        # float64-exact: the byte-identical verdict contract rests on this
        assert records == list(trace.records)[5:15]

    def test_reassembled_chunks_equal_source(self):
        trace = make_trace(50)
        rebuilt = []
        for _, payload in _chunks(trace, 7):
            rebuilt.extend(records_from_chunk(payload)[1])
        assert rebuilt == list(trace.records)


class TestExactlyOnceGate:
    def _session(self, monitor=True):
        return SessionState(
            "s1", TraceMeta(scenario="synthetic", controller="test"),
            monitor=OnlineMonitor(default_catalog()) if monitor else None)

    def test_in_order_chunks_apply(self):
        trace = make_trace(40)
        session = self._session()
        for seq, payload in _chunks(trace, 10):
            assert session.apply_chunk(seq, payload) is not None
        assert session.next_seq == 4
        assert len(session.records) == 40

    def test_duplicate_is_acknowledged_not_reapplied(self):
        trace = make_trace(20)
        session = self._session()
        chunks = _chunks(trace, 10)
        session.apply_chunk(*chunks[0])
        assert session.apply_chunk(*chunks[0]) is None  # dup: no re-feed
        assert len(session.records) == 10
        session.apply_chunk(*chunks[1])
        assert len(session.records) == 20

    def test_gap_rejected_with_cursor_hint(self):
        trace = make_trace(30)
        session = self._session()
        chunks = _chunks(trace, 10)
        session.apply_chunk(*chunks[0])
        with pytest.raises(ChunkRejected, match="1 is next"):
            session.apply_chunk(*chunks[2])
        assert len(session.records) == 10  # nothing partial applied

    def test_finished_session_is_immutable(self):
        trace = make_trace(10)
        session = self._session()
        session.apply_chunk(*_chunks(trace, 10)[0])
        session.finished = True
        with pytest.raises(ChunkRejected, match="finished"):
            session.apply_chunk(1, _chunks(trace, 10)[0][1])

    def test_garbage_payload_rejected(self):
        session = self._session()
        with pytest.raises(ChunkRejected, match="undecodable"):
            session.apply_chunk(0, b"PK\x03\x04 but not really a zip")

    def test_non_monotonic_records_rejected(self):
        trace = make_trace(20)
        session = self._session()
        chunks = _chunks(trace, 10)
        session.apply_chunk(*chunks[0])
        # same records again under a *new* seq: overlap, not extension
        with pytest.raises(ChunkRejected, match="does not extend"):
            session.apply_chunk(1, chunks[0][1])

    def test_live_violations_surface_incrementally(self):
        trace = _attacked_trace()
        session = self._session()
        per_chunk = []
        for seq, payload in _chunks(trace, 20):
            per_chunk.append(session.apply_chunk(seq, payload))
        assert any(per_chunk), "attack must fire the incremental monitor"

    def test_replay_restores_cursor_and_monitor(self):
        trace = _attacked_trace()
        chunks = _chunks(trace, 20)
        straight = self._session()
        for seq, payload in chunks:
            straight.apply_chunk(seq, payload)

        resumed = self._session()
        resumed.replay(list(trace.records)[:80], next_seq=4)  # 4 x 20
        for seq, payload in chunks[4:]:
            resumed.apply_chunk(seq, payload)
        assert resumed.records == straight.records
        assert resumed.next_seq == straight.next_seq


class TestScoring:
    def test_score_matches_offline_check_trace(self):
        trace = _attacked_trace()
        verdict = score_trace_bytes(trace_to_npz_bytes(trace))
        offline = check_trace(trace)
        assert verdict["report"] == offline.to_dict()
        assert verdict["any_fired"] == offline.any_fired
        assert verdict["n_records"] == len(trace)

    def test_clean_trace_has_no_cause(self):
        # 300 steps: long enough to reach the goal (A15 liveness holds)
        verdict = score_trace_bytes(trace_to_npz_bytes(make_trace(300)))
        assert verdict["any_fired"] is False
        assert verdict["top_cause"] is None

    def test_assembled_session_scores_like_source(self):
        trace = _attacked_trace()
        session = SessionState("s1", trace.meta, monitor=None)
        for seq, payload in _chunks(trace, 30):
            session.apply_chunk(seq, payload)
        verdict = score_trace_bytes(session.assemble_bytes())
        assert verdict["report"] == check_trace(trace).to_dict()


class TestMonitorPool:
    def test_reuses_released_monitors(self):
        pool = MonitorPool()
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first
        assert pool.created == 1
        assert pool.reused == 1

    def test_recycled_monitor_is_reset(self):
        trace = make_trace(10)
        pool = MonitorPool()
        monitor = pool.acquire()
        for record in trace.records:
            monitor.feed(record)
        monitor.finish()
        pool.release(monitor)
        recycled = pool.acquire()
        assert recycled is monitor
        # a finished monitor would raise on feed; reset re-arms it
        recycled.feed(list(trace.records)[0])

    def test_idle_cap_bounds_the_free_list(self):
        pool = MonitorPool(max_idle=1)
        a, b = pool.acquire(), pool.acquire()
        pool.release(a)
        pool.release(b)
        assert len(pool._idle) == 1
