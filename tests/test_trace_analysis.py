"""Tests for repro.trace.analysis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.analysis import (
    first_crossing,
    max_abs,
    moving_average,
    rms,
    settling_time,
    sign_change_rate,
    sliding_windows,
)

signal_lists = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1,
    max_size=60,
)


class TestMovingAverage:
    def test_constant_signal(self):
        out = moving_average([3.0] * 10, window=4)
        assert np.allclose(out, 3.0)

    def test_warmup_ramp(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], window=3)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(1.5)
        assert out[2] == pytest.approx(2.0)
        assert out[3] == pytest.approx(3.0)

    def test_empty(self):
        assert moving_average([], window=3).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)

    @given(signal_lists)
    def test_window_one_is_identity(self, xs):
        assert np.allclose(moving_average(xs, 1), xs)

    @given(signal_lists)
    def test_bounded_by_signal_range(self, xs):
        out = moving_average(xs, window=5)
        assert out.min() >= min(xs) - 1e-9
        assert out.max() <= max(xs) + 1e-9


class TestSlidingWindows:
    def test_count_and_content(self):
        ws = list(sliding_windows([1, 2, 3, 4, 5], window=3))
        assert len(ws) == 3
        assert list(ws[0]) == [1, 2, 3]
        assert list(ws[-1]) == [3, 4, 5]

    def test_step(self):
        ws = list(sliding_windows(list(range(10)), window=4, step=3))
        assert [w[0] for w in ws] == [0, 3, 6]

    def test_too_short(self):
        assert list(sliding_windows([1, 2], window=5)) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            list(sliding_windows([1], window=0))


class TestSignChangeRate:
    def test_alternating(self):
        x = [1, -1] * 10
        rate = sign_change_rate(x, dt=0.1)
        assert rate == pytest.approx(19 / 2.0)

    def test_deadband_filters_dither(self):
        x = [0.05, -0.05] * 10
        assert sign_change_rate(x, dt=0.1, deadband=0.1) == 0.0

    def test_constant_zero(self):
        assert sign_change_rate([5.0] * 10, dt=0.1) == 0.0

    def test_short_signal(self):
        assert sign_change_rate([1.0], dt=0.1) == 0.0

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            sign_change_rate([1, -1], dt=0.0)


class TestFirstCrossing:
    def test_index_mode(self):
        assert first_crossing([0.1, 0.2, 5.0, 0.1], threshold=1.0) == 2.0

    def test_time_mode(self):
        t = [0.0, 0.5, 1.0, 1.5]
        assert first_crossing([0, 0, -3, 0], 1.0, times=t) == 1.0

    def test_none_when_never(self):
        assert first_crossing([0.1, 0.2], 1.0) is None


class TestRmsMaxAbs:
    def test_rms(self):
        assert rms([3.0, -4.0]) == pytest.approx(np.sqrt(12.5))

    def test_empty(self):
        assert rms([]) == 0.0
        assert max_abs([]) == 0.0

    def test_max_abs(self):
        assert max_abs([1.0, -7.0, 3.0]) == 7.0

    @given(signal_lists)
    def test_rms_le_max_abs(self, xs):
        assert rms(xs) <= max_abs(xs) + 1e-9


class TestSettlingTime:
    def test_settles(self):
        t = np.arange(10) * 0.1
        x = np.array([5, 4, 3, 2, 0.5, 0.2, 0.1, 0.1, 0.05, 0.01])
        assert settling_time(x, t, band=1.0) == pytest.approx(0.4)

    def test_never_settles(self):
        t = np.arange(5) * 0.1
        x = np.array([0, 0, 0, 0, 9.0])
        assert settling_time(x, t, band=1.0) is None

    def test_always_inside(self):
        t = np.arange(5) * 0.1
        x = np.zeros(5)
        assert settling_time(x, t, band=1.0) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            settling_time([1.0], [1.0, 2.0], band=0.5)

    def test_empty(self):
        assert settling_time([], [], band=1.0) is None
