"""Tests for repro.control.defects."""

import pytest

from repro.control.base import make_lateral_controller
from repro.control.defects import (
    DEFECT_CLASSES,
    DeadbandDefect,
    DefectiveController,
    GainErrorDefect,
    SaturationDefect,
    SignFlipDefect,
    StaleInputDefect,
    make_defect,
)
from repro.geom.routes import straight_route
from repro.geom.vec import Pose, Vec2


def decision(controller, y_offset=2.0):
    controller.reset()
    return controller.compute_steer(
        Pose(Vec2(20.0, y_offset), 0.0), 8.0, straight_route(200.0), 0.05
    )


class TestDefectTransforms:
    def test_gain_error(self):
        clean = decision(make_lateral_controller("pure_pursuit"))
        bugged = decision(DefectiveController(
            make_lateral_controller("pure_pursuit"), GainErrorDefect(2.0)))
        assert bugged.steer == pytest.approx(2.0 * clean.steer)

    def test_sign_flip(self):
        clean = decision(make_lateral_controller("pure_pursuit"))
        bugged = decision(DefectiveController(
            make_lateral_controller("pure_pursuit"), SignFlipDefect()))
        assert bugged.steer == pytest.approx(-clean.steer)

    def test_deadband_truncates(self):
        bugged = DefectiveController(
            make_lateral_controller("pure_pursuit"), DeadbandDefect(0.5))
        assert decision(bugged, y_offset=0.2).steer == 0.0

    def test_saturation_clamps(self):
        bugged = DefectiveController(
            make_lateral_controller("pure_pursuit"), SaturationDefect(0.01))
        assert abs(decision(bugged, y_offset=5.0).steer) == pytest.approx(0.01)

    def test_stale_input_uses_old_pose(self):
        defect = StaleInputDefect(delay_steps=2)
        controller = DefectiveController(
            make_lateral_controller("pure_pursuit"), defect)
        controller.reset()
        route = straight_route(200.0)
        first = controller.compute_steer(Pose(Vec2(0, 3.0), 0.0), 8.0, route, 0.05)
        # Later calls from an on-path pose still see the old offset pose.
        controller.compute_steer(Pose(Vec2(5, 0.0), 0.0), 8.0, route, 0.05)
        third = controller.compute_steer(Pose(Vec2(10, 0.0), 0.0), 8.0, route, 0.05)
        assert third.steer == pytest.approx(first.steer, abs=0.05)

    def test_reset_clears_stale_history(self):
        defect = StaleInputDefect(delay_steps=2)
        defect.transform_input(Pose(Vec2(0, 9.0), 0.0), 8.0)
        defect.reset()
        pose, __ = defect.transform_input(Pose(Vec2(0, 0.0), 0.0), 8.0)
        assert pose.y == 0.0

    def test_error_fields_untouched(self):
        # The defect corrupts the command, not the controller's reported
        # error view (the trace must show what the controller *saw*).
        clean = decision(make_lateral_controller("pure_pursuit"))
        bugged = decision(DefectiveController(
            make_lateral_controller("pure_pursuit"), SignFlipDefect()))
        assert bugged.cte == pytest.approx(clean.cte)

    def test_name_combines(self):
        bugged = DefectiveController(
            make_lateral_controller("stanley"), SignFlipDefect())
        assert bugged.name == "stanley+ctrl_sign_flip"


class TestDefectRegistry:
    def test_all_instantiable(self):
        for name in DEFECT_CLASSES:
            assert make_defect(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_defect("ctrl_nope")

    def test_kwargs_forwarded(self):
        assert make_defect("ctrl_gain_error", factor=5.0).factor == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GainErrorDefect(0.0)
        with pytest.raises(ValueError):
            StaleInputDefect(0)
        with pytest.raises(ValueError):
            DeadbandDefect(0.0)
        with pytest.raises(ValueError):
            SaturationDefect(-1.0)
