"""Tests for repro.core.diagnosis."""

import math

import pytest

from repro.core.diagnosis import diagnose
from repro.core.knowledge import CauseProfile, KnowledgeBase
from repro.core.verdicts import AssertionSummary, CheckReport


def report_with_evidence(strengths: dict[str, float]) -> CheckReport:
    summaries = {}
    for aid in ("A1", "A2", "A3", "A4"):
        s = strengths.get(aid, 0.0)
        summaries[aid] = AssertionSummary(
            assertion_id=aid, name=aid, category="behaviour",
            fired=s > 0, episodes=1 if s > 0 else 0,
            first_violation_t=10.0 if s > 0 else None,
            total_violation_time=2.0 * s,
            # Invert the strength formula approximately via worst margin.
            worst_margin=-s if s > 0 else 0.5,
        )
    return CheckReport(scenario="s", controller="c", attack_label="?",
                       duration=60.0, summaries=summaries)


def toy_kb() -> KnowledgeBase:
    return KnowledgeBase([
        CauseProfile("none", "nominal", {}),
        CauseProfile("fault_a", "fires A1+A2", {"A1": 0.9, "A2": 0.9}),
        CauseProfile("fault_b", "fires A3", {"A3": 0.9}),
        CauseProfile("fault_c", "fires A1 only", {"A1": 0.9}),
    ])


class TestDiagnose:
    def test_matching_signature_wins(self):
        result = diagnose(report_with_evidence({"A1": 0.9, "A2": 0.9}),
                          toy_kb())
        assert result.top().cause == "fault_a"

    def test_single_assertion_prefers_narrow_profile(self):
        # Only A1 fired: fault_c (predicts exactly A1) must beat fault_a
        # (whose silent A2 is evidence against it).
        result = diagnose(report_with_evidence({"A1": 0.9}), toy_kb())
        assert result.top().cause == "fault_c"
        # fault_a is penalized for its silent A2, fault_b for its silent A3.
        assert result.rank_of("fault_a") < result.rank_of("fault_b")

    def test_no_evidence_means_nominal(self):
        result = diagnose(report_with_evidence({}), toy_kb())
        assert result.top().cause == "none"

    def test_posteriors_sum_to_one(self):
        result = diagnose(report_with_evidence({"A3": 0.8}), toy_kb())
        total = sum(d.posterior for d in result.ranking)
        assert total == pytest.approx(1.0)

    def test_ranking_sorted_by_likelihood(self):
        result = diagnose(report_with_evidence({"A1": 0.9}), toy_kb())
        lls = [d.log_likelihood for d in result.ranking]
        assert lls == sorted(lls, reverse=True)

    def test_supporting_and_contradicting_fields(self):
        result = diagnose(report_with_evidence({"A1": 0.9}), toy_kb())
        fault_a = next(d for d in result.ranking if d.cause == "fault_a")
        assert "A1" in fault_a.supporting
        assert "A2" in fault_a.contradicting

    def test_rank_of_and_top_k(self):
        result = diagnose(report_with_evidence({"A3": 0.9}), toy_kb())
        assert result.rank_of("fault_b") == 1
        assert result.rank_of("unknown") is None
        assert len(result.top_k(2)) == 2

    def test_confident_flag(self):
        strong = diagnose(report_with_evidence({"A1": 0.9, "A2": 0.9}),
                          toy_kb())
        assert strong.confident

    def test_weak_evidence_discounted(self):
        # A barely-fired A3 must not overturn a clean A1+A2 signature.
        result = diagnose(
            report_with_evidence({"A1": 0.9, "A2": 0.9, "A3": 0.13}),
            toy_kb(),
        )
        assert result.top().cause == "fault_a"

    def test_default_kb_used_when_none(self):
        report = report_with_evidence({})
        result = diagnose(report)
        assert result.top().cause == "none"

    def test_log_likelihoods_finite(self):
        result = diagnose(report_with_evidence({"A1": 1.0, "A2": 1.0,
                                                "A3": 1.0, "A4": 1.0}),
                          toy_kb())
        assert all(math.isfinite(d.log_likelihood) for d in result.ranking)


class TestDiagnoseMulti:
    def test_single_cause_matches_single_ranking(self):
        from repro.core.diagnosis import diagnose_multi

        report = report_with_evidence({"A1": 0.9, "A2": 0.9})
        multi = diagnose_multi(report, toy_kb())
        assert multi.cause_set == {"fault_a"}
        assert multi.fully_explained

    def test_two_disjoint_causes_recovered(self):
        from repro.core.diagnosis import diagnose_multi

        # fault_a explains A1+A2; fault_b explains A3: all three fired.
        report = report_with_evidence({"A1": 0.9, "A2": 0.9, "A3": 0.9})
        multi = diagnose_multi(report, toy_kb())
        assert multi.cause_set == {"fault_a", "fault_b"}
        assert multi.fully_explained
        assert len(multi.rounds) >= 2

    def test_nominal_returns_empty_set(self):
        from repro.core.diagnosis import diagnose_multi

        multi = diagnose_multi(report_with_evidence({}), toy_kb())
        assert multi.cause_set == frozenset()
        assert multi.fully_explained

    def test_max_causes_respected(self):
        from repro.core.diagnosis import diagnose_multi

        report = report_with_evidence({"A1": 0.9, "A2": 0.9, "A3": 0.9})
        multi = diagnose_multi(report, toy_kb(), max_causes=1)
        assert len(multi.causes) == 1
        assert not multi.fully_explained  # A3 remains unexplained

    def test_invalid_max_causes(self):
        import pytest as _pytest

        from repro.core.diagnosis import diagnose_multi

        with _pytest.raises(ValueError):
            diagnose_multi(report_with_evidence({}), toy_kb(), max_causes=0)

    def test_explanation_order_strongest_first(self):
        from repro.core.diagnosis import diagnose_multi

        report = report_with_evidence({"A1": 0.9, "A2": 0.9, "A3": 0.4})
        multi = diagnose_multi(report, toy_kb())
        assert multi.causes[0].cause == "fault_a"

    def test_overlapping_profiles_do_not_double_count(self):
        from repro.core.diagnosis import diagnose_multi

        # fault_a (A1+A2) and fault_c (A1) overlap on A1.  With only
        # A1+A2 fired, accepting fault_a must consume *both* assertions;
        # the loop must not then also accept fault_c for the already
        # explained A1.
        report = report_with_evidence({"A1": 0.9, "A2": 0.9})
        multi = diagnose_multi(report, toy_kb())
        assert multi.cause_set == {"fault_a"}
        assert "fault_c" not in multi.cause_set

    def test_overlap_plus_disjoint_evidence(self):
        from repro.core.diagnosis import diagnose_multi

        # Overlapping profiles with extra disjoint evidence: A1+A2+A3.
        # fault_a explains A1+A2, fault_b the residual A3 — fault_c
        # (subset of
        # fault_a's signature) must stay out of the explanation.
        report = report_with_evidence({"A1": 0.9, "A2": 0.9, "A3": 0.9})
        multi = diagnose_multi(report, toy_kb())
        assert "fault_c" not in multi.cause_set
        assert multi.cause_set == {"fault_a", "fault_b"}

    def test_empty_ranking_inputs(self):
        from repro.core.diagnosis import diagnose_multi

        # A report whose summaries are all silent is not an error; the
        # residual is the (all-weak) evidence map itself.
        report = report_with_evidence({})
        multi = diagnose_multi(report, toy_kb())
        assert multi.causes == []
        assert multi.rounds == []
        assert all(s < 0.12 for s in multi.residual_evidence.values())

    def test_tied_scores_break_deterministically(self):
        from repro.core.diagnosis import diagnose

        # Two causes with *identical* profiles score identically; the
        # ranking must still be deterministic (alphabetical on ties),
        # not dict-insertion-order of the knowledge base.
        kb_ab = KnowledgeBase([
            CauseProfile("none", "nominal", {}),
            CauseProfile("zeta", "fires A1", {"A1": 0.9}),
            CauseProfile("alpha", "fires A1", {"A1": 0.9}),
        ])
        kb_ba = KnowledgeBase([
            CauseProfile("none", "nominal", {}),
            CauseProfile("alpha", "fires A1", {"A1": 0.9}),
            CauseProfile("zeta", "fires A1", {"A1": 0.9}),
        ])
        report = report_with_evidence({"A1": 0.9})
        r1 = diagnose(report, kb_ab)
        r2 = diagnose(report, kb_ba)
        assert r1.top_k(2) == r2.top_k(2) == ["alpha", "zeta"]
        assert r1.ranking[0].log_likelihood == r1.ranking[1].log_likelihood


class TestAmbiguityAndTiebreak:
    def ambiguous_result(self):
        # Identical profiles guarantee a tie, hence ambiguity.
        kb = KnowledgeBase([
            CauseProfile("none", "nominal", {}),
            CauseProfile("alpha", "fires A1", {"A1": 0.9}),
            CauseProfile("zeta", "fires A1", {"A1": 0.9}),
        ])
        return diagnose(report_with_evidence({"A1": 0.9}), kb)

    def test_ambiguous_flag(self):
        result = self.ambiguous_result()
        assert not result.confident
        assert result.ambiguous

    def test_confident_result_not_ambiguous(self):
        result = diagnose(report_with_evidence({"A1": 0.9, "A2": 0.9}),
                          toy_kb())
        assert result.confident
        assert not result.ambiguous

    def test_single_candidate_never_ambiguous(self):
        kb = KnowledgeBase([CauseProfile("only", "sole cause",
                                         {"A1": 0.9})])
        result = diagnose(report_with_evidence({"A1": 0.9}), kb)
        assert result.confident
        assert not result.ambiguous

    def test_apply_tiebreak_reorders_head(self):
        from repro.core.diagnosis import apply_tiebreak

        result = self.ambiguous_result()
        assert result.top().cause == "alpha"
        # Counterfactual distances say zeta matches the observation
        # better (lower = better): the head pair must swap.
        fixed = apply_tiebreak(result, {"alpha": 1.5, "zeta": 0.2})
        assert fixed.top().cause == "zeta"
        assert fixed.top_k(2) == ["zeta", "alpha"]

    def test_apply_tiebreak_leaves_unprobed_tail_untouched(self):
        from repro.core.diagnosis import apply_tiebreak

        result = self.ambiguous_result()
        tail_before = [d.cause for d in result.ranking
                       if d.cause not in ("alpha", "zeta")]
        fixed = apply_tiebreak(result, {"alpha": 9.0, "zeta": 0.1})
        tail_after = [d.cause for d in fixed.ranking
                      if d.cause not in ("alpha", "zeta")]
        assert tail_before == tail_after
        # Probed causes only moved among the positions they occupied.
        pos = [i for i, d in enumerate(result.ranking)
               if d.cause in ("alpha", "zeta")]
        pos_after = [i for i, d in enumerate(fixed.ranking)
                     if d.cause in ("alpha", "zeta")]
        assert pos == pos_after

    def test_apply_tiebreak_empty_scores_is_identity(self):
        from repro.core.diagnosis import apply_tiebreak

        result = self.ambiguous_result()
        fixed = apply_tiebreak(result, {})
        assert [d.cause for d in fixed.ranking] == [
            d.cause for d in result.ranking]

    def test_apply_tiebreak_score_ties_keep_likelihood_order(self):
        from repro.core.diagnosis import apply_tiebreak

        result = self.ambiguous_result()
        fixed = apply_tiebreak(result, {"alpha": 0.5, "zeta": 0.5})
        assert fixed.top_k(2) == result.top_k(2)
