"""Persistable catalog configurations.

A deployment of ADAssure tunes which assertions run and at what effective
thresholds (typically via :mod:`repro.core.tuning` on a nominal corpus).
``CatalogSpec`` captures that configuration as a plain JSON document so it
can be versioned next to the vehicle software and reloaded on the bench:

    spec = CatalogSpec.from_calibration(calibrate_catalog(nominal_traces))
    spec.save("catalog_spec.json")
    ...
    assertions = CatalogSpec.load("catalog_spec.json").build()
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.catalog import CATALOG_IDS, default_catalog
from repro.core.dsl import TraceAssertion
from repro.core.tuning import CalibrationResult

__all__ = ["AssertionSpec", "CatalogSpec", "catalog_fingerprint"]

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class AssertionSpec:
    """Configuration of one assertion."""

    assertion_id: str
    enabled: bool = True
    bound_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.assertion_id not in CATALOG_IDS:
            raise ValueError(f"unknown assertion id {self.assertion_id!r}")
        if self.bound_scale <= 0:
            raise ValueError("bound_scale must be positive")


@dataclass(slots=True)
class CatalogSpec:
    """A named, serializable assertion-catalog configuration."""

    description: str = ""
    specs: dict[str, AssertionSpec] = field(default_factory=dict)

    @staticmethod
    def default() -> "CatalogSpec":
        """The stock catalog: everything enabled, unscaled."""
        return CatalogSpec(
            description="stock catalog",
            specs={aid: AssertionSpec(aid) for aid in CATALOG_IDS},
        )

    @staticmethod
    def from_calibration(result: CalibrationResult,
                         description: str = "") -> "CatalogSpec":
        """A spec carrying the calibrator's bound scales."""
        specs = {}
        for aid in CATALOG_IDS:
            headroom = result.headrooms.get(aid)
            specs[aid] = AssertionSpec(
                aid, bound_scale=headroom.scale if headroom else 1.0
            )
        return CatalogSpec(
            description=description or (
                f"calibrated on {result.corpus_size} nominal trace(s), "
                f"target headroom {result.target_headroom}"
            ),
            specs=specs,
        )

    # ------------------------------------------------------------------
    def set(self, assertion_id: str, enabled: bool | None = None,
            bound_scale: float | None = None) -> None:
        """Override one assertion's configuration."""
        current = self.specs.get(assertion_id, AssertionSpec(assertion_id))
        self.specs[assertion_id] = AssertionSpec(
            assertion_id,
            enabled=current.enabled if enabled is None else enabled,
            bound_scale=(current.bound_scale if bound_scale is None
                         else bound_scale),
        )

    def enabled_ids(self) -> list[str]:
        return [aid for aid in CATALOG_IDS
                if self.specs.get(aid, AssertionSpec(aid)).enabled]

    def build(self) -> list[TraceAssertion]:
        """Fresh assertion instances per this configuration."""
        assertions = default_catalog(tuple(self.enabled_ids()))
        for assertion in assertions:
            spec = self.specs.get(assertion.assertion_id)
            if spec is not None and spec.bound_scale != 1.0:
                assertion.scale_bound(spec.bound_scale)
        return assertions

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "description": self.description,
            "assertions": {
                aid: {"enabled": s.enabled, "bound_scale": s.bound_scale}
                for aid, s in sorted(self.specs.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "CatalogSpec":
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported catalog spec version {version!r}")
        specs = {}
        for aid, cfg in data.get("assertions", {}).items():
            specs[aid] = AssertionSpec(
                aid,
                enabled=bool(cfg.get("enabled", True)),
                bound_scale=float(cfg.get("bound_scale", 1.0)),
            )
        return CatalogSpec(description=data.get("description", ""),
                           specs=specs)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                              encoding="utf-8")

    @staticmethod
    def load(path: str | Path) -> "CatalogSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a valid catalog spec: {exc}") from exc
        return CatalogSpec.from_dict(data)

    def fingerprint(self) -> str:
        """Stable hex digest of this catalog configuration.

        Two specs that build the same effective assertion set (same ids,
        same enablement, same bound scales, same episode semantics) share
        a fingerprint; any change to the catalog registry, a threshold
        scale, or an assertion's settle/debounce parameters changes it.
        Used as a component of the persistent run-cache key so cached
        reports are never reused across catalog revisions.
        """
        assertions = [
            {
                "id": a.assertion_id,
                "name": a.name,
                "category": a.category,
                "settle_time": a.settle_time,
                "debounce_on": a.debounce_on,
                "debounce_off": a.debounce_off,
                "bound_scale": a.bound_scale,
            }
            for a in self.build()
        ]
        payload = json.dumps(
            {"ids": list(CATALOG_IDS), "spec": self.to_dict(),
             "assertions": assertions},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def catalog_fingerprint() -> str:
    """Fingerprint of the stock catalog (what ``check_trace`` runs by
    default); see :meth:`CatalogSpec.fingerprint`."""
    return CatalogSpec.default().fingerprint()
