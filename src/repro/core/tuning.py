"""Threshold calibration from nominal corpora.

The methodology's "domain experts tune the thresholds" step, mechanized:
run the catalog over a corpus of *known-good* traces, measure each
assertion's worst nominal margin (its headroom), and relax any assertion
whose headroom falls below a target so the nominal fleet never trips it.

Margins are normalized (0 = at the threshold), so a single multiplicative
bound scale per assertion suffices: scaling the bound by ``k`` maps a
margin ``m`` to ``1 - (1 - m)/k`` (exact for every ratio-form margin in
the catalog; for the progress assertion A10 the transform is a close
over-approximation, i.e. never tightens).

Calibration only ever *relaxes* assertions — a tight-but-quiet assertion
is left alone, and attack sensitivity is reduced no more than the nominal
evidence demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.catalog import CATALOG_IDS, default_catalog
from repro.core.checker import check_trace
from repro.core.dsl import TraceAssertion
from repro.trace.schema import Trace

__all__ = ["AssertionHeadroom", "CalibrationResult", "calibrate_catalog"]


@dataclass(frozen=True, slots=True)
class AssertionHeadroom:
    """Nominal-corpus statistics for one assertion."""

    assertion_id: str
    worst_margin: float
    """Most negative (or smallest positive) margin over the corpus."""
    fired_runs: int
    """Number of corpus traces on which the assertion (wrongly) fired."""
    scale: float
    """Bound scale chosen by the calibrator (1.0 = untouched)."""


@dataclass(slots=True)
class CalibrationResult:
    """Outcome of calibrating a catalog against a nominal corpus."""

    target_headroom: float
    headrooms: dict[str, AssertionHeadroom]
    corpus_size: int

    @property
    def adjusted_ids(self) -> list[str]:
        """Assertions whose bounds the calibrator relaxed."""
        return [aid for aid, h in self.headrooms.items() if h.scale > 1.0]

    def scale_of(self, assertion_id: str) -> float:
        return self.headrooms[assertion_id].scale

    def build_catalog(self, ids: Sequence[str] | None = None) -> list[TraceAssertion]:
        """Fresh catalog instances with the calibrated scales applied."""
        assertions = default_catalog(tuple(ids) if ids is not None else None)
        for assertion in assertions:
            headroom = self.headrooms.get(assertion.assertion_id)
            if headroom is not None:
                assertion.scale_bound(headroom.scale)
        return assertions

    def summary(self) -> str:
        """One line per adjusted assertion, for the debugging log."""
        lines = [
            f"calibration over {self.corpus_size} nominal trace(s), "
            f"target headroom {self.target_headroom:.2f}:"
        ]
        if not self.adjusted_ids:
            lines.append("  all assertions already meet the target headroom")
        for aid in self.adjusted_ids:
            h = self.headrooms[aid]
            lines.append(
                f"  {aid:<4} worst nominal margin {h.worst_margin:+.2f} "
                f"(fired on {h.fired_runs} run(s)) -> bound x{h.scale:.2f}"
            )
        return "\n".join(lines)


def calibrate_catalog(
    nominal_traces: Iterable[Trace],
    target_headroom: float = 0.1,
    ids: Sequence[str] | None = None,
) -> CalibrationResult:
    """Fit assertion bound scales so nominal traces keep clear headroom.

    Args:
        nominal_traces: known-good traces (the assertion catalog must not
            fire on any of them).
        target_headroom: minimum normalized margin every assertion must
            keep on the corpus (0.1 = 10% below threshold).
        ids: calibrate a catalog subset (default: full catalog).

    Returns:
        A :class:`CalibrationResult`; ``result.build_catalog()`` yields the
        calibrated assertion set.

    Raises:
        ValueError: for an empty corpus or a non-positive target.
    """
    if not 0.0 < target_headroom < 1.0:
        raise ValueError("target_headroom must be in (0, 1)")
    selected = tuple(ids) if ids is not None else CATALOG_IDS
    worst: dict[str, float] = {aid: float("inf") for aid in selected}
    fired: dict[str, int] = {aid: 0 for aid in selected}

    corpus_size = 0
    for trace in nominal_traces:
        corpus_size += 1
        report = check_trace(trace, default_catalog(selected))
        for aid in selected:
            summary = report.summaries[aid]
            if not summary.evaluated:
                continue  # never applicable on this trace: no evidence
            worst[aid] = min(worst[aid], summary.worst_margin)
            fired[aid] += summary.fired
    if corpus_size == 0:
        raise ValueError("calibration needs at least one nominal trace")

    headrooms = {}
    for aid in selected:
        w = worst[aid]
        if w == float("inf"):
            # Never applicable on the corpus: leave untouched.
            headrooms[aid] = AssertionHeadroom(aid, 0.0, 0, 1.0)
            continue
        if w < target_headroom:
            scale = (1.0 - w) / (1.0 - target_headroom)
        else:
            scale = 1.0
        headrooms[aid] = AssertionHeadroom(
            assertion_id=aid, worst_margin=w, fired_runs=fired[aid],
            scale=scale,
        )
    return CalibrationResult(
        target_headroom=target_headroom,
        headrooms=headrooms,
        corpus_size=corpus_size,
    )
