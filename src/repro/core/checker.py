"""Offline trace checker: the post-hoc debugging entry point.

Two engines produce byte-identical reports:

* ``"vector"`` (default) — each assertion evaluates the whole trace at
  once via :meth:`~repro.core.dsl.TraceAssertion.evaluate_offline`,
  using the trace's columnar view and array-level margin/episode
  extraction where the assertion supports it (stateful assertions fall
  back to an exact sequential margin loop).
* ``"step"`` — wraps the :class:`~repro.core.monitor.OnlineMonitor`,
  feeding records one by one.  Retained as the differential-testing
  oracle and for parity with live monitoring.

Select explicitly with ``engine=``, or globally with the
``ADASSURE_CHECKER`` environment variable (``vector`` | ``step``).
Equivalence across the full attack x fault x controller grid is enforced
by ``tests/test_checker_equivalence.py``.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.core.catalog import default_catalog
from repro.core.dsl import TraceAssertion
from repro.core.monitor import OnlineMonitor, build_report
from repro.core.verdicts import CheckReport
from repro.trace.schema import Trace

__all__ = ["check_trace"]

_ENGINES = ("vector", "step")


def check_trace(
    trace: Trace,
    assertions: Sequence[TraceAssertion] | None = None,
    *,
    engine: str | None = None,
) -> CheckReport:
    """Evaluate assertions over a recorded trace.

    Args:
        trace: a recorded run (live, or loaded via :mod:`repro.trace.io`).
        assertions: the assertion set (default: the full built-in catalog).
            Instances are reset before use, so a list can be reused across
            calls.
        engine: ``"vector"`` (default) or ``"step"``; ``None`` reads
            ``$ADASSURE_CHECKER`` and falls back to ``"vector"``.  Both
            engines return byte-identical reports.

    Returns:
        A :class:`~repro.core.verdicts.CheckReport` with every violation
        episode and per-assertion summaries.
    """
    if assertions is None:
        assertions = default_catalog()
    if engine is None:
        engine = os.environ.get("ADASSURE_CHECKER", "").strip().lower() or "vector"
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown checker engine {engine!r}; expected one of {_ENGINES}"
        )
    if engine == "step":
        monitor = OnlineMonitor(assertions)
        monitor.feed_all(trace)
        return monitor.finish(trace)
    ids = [a.assertion_id for a in assertions]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate assertion ids: {ids}")
    for assertion in assertions:
        assertion.evaluate_offline(trace)
    return build_report(assertions, trace)


def _bench_main(argv: list[str] | None = None) -> int:
    """Benchmark the offline checker; writes ``BENCH_checker.json``.

    Simulates a small attack x controller campaign, then measures
    re-checking it the old way (gzip'd JSONL payloads + per-step engine)
    against the new way (binary npz payloads + vectorized engine) —
    i.e. the cost of re-scoring a cached campaign after a catalog edit.
    Aborts if the two engines ever disagree.
    """
    import argparse
    import json
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.checker",
        description=_bench_main.__doc__,
    )
    parser.add_argument("--output", default="BENCH_checker.json")
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    from repro.attacks.campaign import standard_attack
    from repro.experiments.stats import _host_info
    from repro.faults.campaign import standard_fault
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import standard_scenarios
    from repro.trace.io import (
        trace_from_bytes,
        trace_to_jsonl_bytes,
        trace_to_npz_bytes,
    )

    traces = []
    for attack in ("none", "gps_bias", "gps_freeze", "radar_scale"):
        for controller in ("pure_pursuit", "stanley"):
            scenario = standard_scenarios(
                seed=7, duration=args.duration)["s_curve"]
            campaign = (standard_attack(attack, onset=10.0)
                        if attack != "none" else None)
            traces.append(run_scenario(scenario, controller=controller,
                                       campaign=campaign).trace)
    scenario = standard_scenarios(seed=7, duration=args.duration)["s_curve"]
    traces.append(run_scenario(
        scenario, controller="pure_pursuit",
        faults=standard_fault("gps_dropout", onset=10.0)).trace)
    for trace in traces:
        trace.columns()
    steps = sum(len(t) for t in traces)
    print(f"campaign: {len(traces)} runs, {steps} steps")

    for trace in traces:  # drift guard: never publish numbers for a lie
        vec = check_trace(trace, engine="vector")
        step = check_trace(trace, engine="step")
        if vec.summaries != step.summaries or vec.violations != step.violations:
            raise SystemExit("checker engines disagree; refusing to benchmark")

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    npz = [trace_to_npz_bytes(t) for t in traces]
    jsonl = [trace_to_jsonl_bytes(t) for t in traces]
    timings = {
        "check_step": best_of(
            lambda: [check_trace(t, engine="step") for t in traces]),
        "check_vector": best_of(
            lambda: [check_trace(t, engine="vector") for t in traces]),
        "load_jsonl_check_step": best_of(
            lambda: [check_trace(trace_from_bytes(b), engine="step")
                     for b in jsonl]),
        "load_npz_check_vector": best_of(
            lambda: [check_trace(trace_from_bytes(b), engine="vector")
                     for b in npz]),
    }
    for label, value in timings.items():
        print(f"{label:<26} {value:8.3f}s")

    npz_bytes = sum(map(len, npz))
    jsonl_bytes = sum(map(len, jsonl))
    payload = {
        "host": _host_info(),
        "campaign": {"runs": len(traces), "steps": steps,
                     "duration_s": args.duration},
        "timings_s": {k: round(v, 4) for k, v in timings.items()},
        "speedups": {
            "vector_vs_step": round(
                timings["check_step"] / timings["check_vector"], 2),
            "cached_campaign_recheck": round(
                timings["load_jsonl_check_step"]
                / timings["load_npz_check_vector"], 2),
        },
        "payload_bytes": {
            "npz": npz_bytes,
            "jsonl_gz": jsonl_bytes,
            "npz_vs_jsonl": round(npz_bytes / jsonl_bytes, 3),
        },
        "engines_agree": True,
    }
    from pathlib import Path

    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_bench_main())
