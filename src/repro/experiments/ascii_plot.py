"""Terminal figure rendering: sparklines and multi-series line plots.

The evaluation "figures" are regenerated as text so the whole harness
stays dependency-free and diff-able; these helpers turn the numeric series
the experiments produce into compact terminal graphics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["sparkline", "line_plot"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """A one-line unicode sparkline of a numeric series.

    Args:
        values: the series (empty -> empty string).
        lo / hi: fixed scale bounds (default: the series min/max).
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return ""
    lo = float(np.min(x)) if lo is None else lo
    hi = float(np.max(x)) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[1] * x.size
    scaled = (x - lo) / (hi - lo)
    idx = np.clip((scaled * (len(_BLOCKS) - 2)).astype(int) + 1, 1,
                  len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in idx)


def line_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A multi-series ASCII line plot.

    Args:
        series: label -> (x values, y values); series are overlaid and each
            gets its own glyph.
        width / height: plot area size in characters.
        x_label / y_label: axis captions.

    Returns:
        The rendered plot with axes, scale annotations, and a legend.
    """
    if not series:
        raise ValueError("line_plot needs at least one series")
    glyphs = "*o+x#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float)
                             for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float)
                             for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (label, (xv, yv)) in enumerate(series.items()):
        glyph = glyphs[i % len(glyphs)]
        for x, y in zip(np.asarray(xv, dtype=float), np.asarray(yv, dtype=float)):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_hi:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<10.1f}" + " " * max(width - 22, 0)
                 + f"{x_hi:>10.1f}" + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
