"""Stanley lateral controller (front-axle cross-track law).

The DARPA-Grand-Challenge-winning law: steer to cancel the heading error
and add a cross-track correction that sharpens at low speed:

    steer = heading_err_to_path + atan2(k * cte_front, v + v_soft)

Cross-track error is measured at the *front* axle; positive cte (vehicle
left of path) demands a negative (rightward) correction.
"""

from __future__ import annotations

import math

from repro.control.base import LateralController, SteerDecision
from repro.geom.angles import angle_diff
from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = ["StanleyController"]


class StanleyController(LateralController):
    """Stanley path tracker.

    Args:
        wheelbase: distance rear axle -> front axle, meters (the pose is
            rear-axle referenced; the front axle point is derived).
        k_cte: cross-track gain, 1/s.
        v_soft: softening speed to keep the law bounded near standstill.
        k_damp: yaw-damping gain on the steering output (first-order
            low-pass between steps), in [0, 1); 0 disables damping.
        max_steer: output saturation, rad.
    """

    name = "stanley"
    supports_batch = True

    def __init__(
        self,
        wheelbase: float = 2.7,
        k_cte: float = 1.2,
        v_soft: float = 1.0,
        k_damp: float = 0.2,
        max_steer: float = 0.61,
    ):
        if wheelbase <= 0 or k_cte <= 0 or v_soft <= 0:
            raise ValueError("wheelbase, k_cte and v_soft must be positive")
        if not 0.0 <= k_damp < 1.0:
            raise ValueError("k_damp must be in [0, 1)")
        self.wheelbase = wheelbase
        self.k_cte = k_cte
        self.v_soft = v_soft
        self.k_damp = k_damp
        self.max_steer = max_steer
        self._station_hint: float | None = None
        self._prev_steer = 0.0

    def reset(self) -> None:
        self._station_hint = None
        self._prev_steer = 0.0

    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        front_axle = pose.position + pose.forward() * self.wheelbase
        proj_front = route.project(front_axle, hint_station=self._station_hint)
        self._station_hint = proj_front.station

        heading_err = angle_diff(proj_front.heading, pose.yaw)
        cross_term = math.atan2(
            -self.k_cte * proj_front.cross_track, speed + self.v_soft
        )
        steer = heading_err + cross_term
        if self.k_damp > 0.0:
            steer = (1.0 - self.k_damp) * steer + self.k_damp * self._prev_steer
        steer = _clamp(steer, -self.max_steer, self.max_steer)
        self._prev_steer = steer

        # Report rear-axle-referenced errors for trace comparability with
        # the other controllers.
        proj_rear = route.project(pose.position, hint_station=proj_front.station)
        return SteerDecision(
            steer=steer,
            cte=proj_rear.cross_track,
            heading_err=angle_diff(pose.yaw, proj_rear.heading),
            station=proj_rear.station,
        )


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
