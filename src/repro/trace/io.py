"""Trace serialization: binary ``.npz`` (preferred), JSONL, and CSV.

Three formats, by role:

* **Binary** (:func:`write_trace_npz` / :func:`trace_to_npz_bytes`) — one
  compressed numpy array per trace channel plus a version-stamped JSON
  header.  Exact float64 round-trip, a fraction of JSONL's size, and
  loading yields the *columnar* trace form directly (no per-record
  parsing), which is what the vectorized checker consumes.  This is the
  run cache's payload format.
* **JSONL** (:func:`write_trace_jsonl`) — one metadata header line plus
  one record per line; round-tripping is exact up to float repr (Python's
  ``repr`` of a float is lossless).  Kept as the human-inspectable
  interchange format (``zcat``, ``jq``, hand-built fixtures).
* **CSV** (:func:`write_trace_csv`) — spreadsheet-friendly record table
  with the metadata in a ``# meta:`` comment line.

Paths ending in ``.gz`` are transparently gzip-compressed on the JSONL
path; :func:`read_trace_auto` / :func:`trace_from_bytes` sniff the format
(zip magic = binary, gzip magic = compressed JSONL, else plain JSONL).

Error handling contract: structurally broken input (missing header,
corrupt record in the middle of a file, wrong CSV columns, a binary
payload with a missing channel or an unknown format version) raises
:class:`TraceIOError` — a :class:`ValueError` subclass carrying the file
label.  A JSONL stream cut off mid-write (truncated gzip stream,
incomplete final line — what a killed worker or full disk leaves behind)
instead returns the parseable prefix and emits a
:class:`TraceTruncationWarning`, because the prefix is still a valid
trace and losing the tail is recoverable.  A truncated *binary* payload
is always a hard :class:`TraceIOError`: npz members are compressed
whole, so there is no meaningful prefix to salvage.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
import warnings
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.trace.schema import Trace, TraceMeta, TraceRecord

__all__ = [
    "TraceIOError",
    "TraceTruncationWarning",
    "TRACE_NPZ_VERSION",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_trace_csv",
    "read_trace_csv",
    "write_trace_npz",
    "read_trace_npz",
    "read_trace_auto",
    "trace_to_jsonl_bytes",
    "trace_from_jsonl_bytes",
    "trace_to_npz_bytes",
    "trace_from_npz_bytes",
    "trace_from_bytes",
]

_GZIP_MAGIC = b"\x1f\x8b"
_ZIP_MAGIC = b"PK\x03\x04"

TRACE_NPZ_VERSION = 1
"""Binary trace format version; readers reject anything else."""

_NPZ_FORMAT_NAME = "adassure-trace"
_NPZ_COLUMN_PREFIX = "col_"


class TraceIOError(ValueError):
    """A trace file/payload is structurally unreadable (not just truncated)."""


class TraceTruncationWarning(UserWarning):
    """A trace stream ended mid-write; the parseable prefix was returned."""


def _record_to_dict(record: TraceRecord) -> dict:
    return {name: getattr(record, name) for name in Trace.field_names}


def _record_from_dict(data: dict) -> TraceRecord:
    kwargs = {}
    for name in Trace.field_names:
        if name not in data:
            raise ValueError(f"record is missing channel {name!r}")
        kwargs[name] = data[name]
    for name in Trace.int_channels:
        kwargs[name] = int(kwargs[name])
    return TraceRecord(**kwargs)


def _write_jsonl_stream(trace: Trace, f) -> None:
    f.write(json.dumps({"meta": trace.meta.to_dict()}) + "\n")
    for record in trace:
        f.write(json.dumps(_record_to_dict(record)) + "\n")


# Exceptions a file object raises mid-iteration when the underlying
# stream was cut off (gzip raises EOFError/BadGzipFile on a truncated
# member, plain files can surface OSError on bad media).
_STREAM_TRUNCATION = (EOFError, gzip.BadGzipFile, OSError)


def _read_jsonl_stream(f, label: str) -> Trace:
    try:
        header = f.readline()
    except _STREAM_TRUNCATION as exc:
        raise TraceIOError(f"{label}: unreadable trace stream: {exc}") from exc
    if not header:
        raise TraceIOError(f"{label}: empty trace file")
    try:
        head = json.loads(header)
    except json.JSONDecodeError as exc:
        raise TraceIOError(f"{label}: bad metadata header: {exc}") from exc
    if not isinstance(head, dict) or "meta" not in head:
        raise TraceIOError(f"{label}: missing metadata header line")
    meta = TraceMeta.from_dict(head["meta"])
    trace = Trace(meta)

    lines = iter(f)
    line_no = 1
    truncated: str | None = None
    while True:
        line_no += 1
        try:
            line = next(lines)
        except StopIteration:
            break
        except _STREAM_TRUNCATION as exc:
            truncated = f"stream ended mid-record: {exc}"
            break
        line = line.strip()
        if not line:
            continue
        try:
            trace.append(_record_from_dict(json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            # A bad *final* line is what an interrupted write leaves
            # behind — salvage the prefix.  A bad line with more data
            # after it is corruption and must not be papered over.
            try:
                more = next(lines)
            except (StopIteration, *_STREAM_TRUNCATION):
                more = ""
            if more.strip():
                raise TraceIOError(
                    f"{label}:{line_no}: bad trace record: {exc}") from exc
            truncated = f"incomplete final record ({exc})"
            break
    if truncated is not None:
        warnings.warn(
            f"{label}: truncated trace, kept {len(trace)} record(s) "
            f"({truncated})",
            TraceTruncationWarning,
            stacklevel=3,
        )
    return trace


def write_trace_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace to a JSON-lines file (header line + one record/line).

    A ``.gz`` suffix gzip-compresses the file transparently.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as f:
            _write_jsonl_stream(trace, f)
    else:
        with path.open("w", encoding="utf-8") as f:
            _write_jsonl_stream(trace, f)


def read_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_jsonl` (plain or .gz).

    Raises :class:`TraceIOError` on structurally corrupt input; a stream
    truncated mid-write yields the parseable prefix with a
    :class:`TraceTruncationWarning` instead.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as f:
            return _read_jsonl_stream(f, str(path))
    with path.open("r", encoding="utf-8") as f:
        return _read_jsonl_stream(f, str(path))


def trace_to_jsonl_bytes(trace: Trace, compress: bool = True) -> bytes:
    """Serialize a trace to JSONL bytes (gzip-compressed by default).

    This is the persistent run cache's payload format: identical to the
    on-disk JSONL files but round-tripped in memory, so cache writes are
    a single atomic file operation.
    """
    buf = io.StringIO()
    _write_jsonl_stream(trace, buf)
    data = buf.getvalue().encode("utf-8")
    if compress:
        # mtime=0 keeps the payload a pure function of the trace content
        # (content-addressed stores must not embed wall-clock time).
        data = gzip.compress(data, mtime=0)
    return data


def trace_from_jsonl_bytes(data: bytes) -> Trace:
    """Inverse of :func:`trace_to_jsonl_bytes`; auto-detects compression."""
    if data[:2] == _GZIP_MAGIC:
        stream = io.TextIOWrapper(
            gzip.GzipFile(fileobj=io.BytesIO(data)), encoding="utf-8")
        return _read_jsonl_stream(stream, "<trace bytes>")
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceIOError(
            f"<trace bytes>: not a trace payload (binary garbage, "
            f"{exc.reason} at byte {exc.start})") from exc
    return _read_jsonl_stream(io.StringIO(text), "<trace bytes>")


# ---------------------------------------------------------------------------
# Binary (.npz) format
# ---------------------------------------------------------------------------

# Everything np.load / zipfile / zlib / json can throw at a damaged or
# truncated npz payload; all of it maps to TraceIOError (binary payloads
# have no salvageable prefix, unlike JSONL).
_NPZ_READ_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    OSError,
    EOFError,
)


def trace_to_npz_bytes(trace: Trace) -> bytes:
    """Serialize a trace to the binary format as an in-memory payload.

    One compressed array per channel (exact float64 round-trip) plus a
    ``header`` member carrying the format name, the format version and
    the trace metadata.  npz members are deflate-compressed, so the
    payload needs no further compression.
    """
    cols = trace.columns()
    header = json.dumps({
        "format": _NPZ_FORMAT_NAME,
        "version": TRACE_NPZ_VERSION,
        "n": len(trace),
        "meta": trace.meta.to_dict(),
    })
    arrays = {_NPZ_COLUMN_PREFIX + name: cols.get(name)
              for name in Trace.field_names}
    buf = io.BytesIO()
    np.savez_compressed(buf, header=np.asarray(header), **arrays)
    return buf.getvalue()


def trace_from_npz_bytes(data: bytes) -> Trace:
    """Inverse of :func:`trace_to_npz_bytes`.

    Raises :class:`TraceIOError` on anything that is not a complete,
    current-version binary trace: truncated or corrupt zip structure,
    a foreign npz file, a version mismatch, or missing channels.
    """
    label = "<trace bytes>"
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            if "header" not in npz.files:
                raise TraceIOError(f"{label}: not a trace npz (no header)")
            try:
                header = json.loads(str(npz["header"][()]))
            except json.JSONDecodeError as exc:
                raise TraceIOError(f"{label}: bad npz header: {exc}") from exc
            if (not isinstance(header, dict)
                    or header.get("format") != _NPZ_FORMAT_NAME):
                raise TraceIOError(f"{label}: not an adassure trace npz")
            version = header.get("version")
            if version != TRACE_NPZ_VERSION:
                raise TraceIOError(
                    f"{label}: unsupported trace format version {version!r} "
                    f"(this build reads version {TRACE_NPZ_VERSION})")
            arrays = {}
            for name in Trace.field_names:
                member = _NPZ_COLUMN_PREFIX + name
                if member not in npz.files:
                    raise TraceIOError(f"{label}: missing channel {name!r}")
                arrays[name] = npz[member]
    except TraceIOError:
        raise
    except _NPZ_READ_ERRORS as exc:
        raise TraceIOError(
            f"{label}: unreadable binary trace: {exc}") from exc
    meta = TraceMeta.from_dict(header.get("meta", {}))
    try:
        trace = Trace.from_columns(meta, arrays)
    except ValueError as exc:
        raise TraceIOError(f"{label}: {exc}") from exc
    expected = header.get("n")
    if expected is not None and expected != len(trace):
        raise TraceIOError(
            f"{label}: header claims {expected} records, payload has "
            f"{len(trace)}")
    return trace


def write_trace_npz(trace: Trace, path: str | Path) -> None:
    """Write a trace in the binary format (conventional suffix ``.npz``)."""
    Path(path).write_bytes(trace_to_npz_bytes(trace))


def read_trace_npz(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_npz`."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceIOError(f"{path}: unreadable trace file: {exc}") from exc
    try:
        return trace_from_npz_bytes(data)
    except TraceIOError as exc:
        raise TraceIOError(str(exc).replace("<trace bytes>",
                                            str(path), 1)) from exc


def trace_from_bytes(data: bytes) -> Trace:
    """Deserialize a trace payload of any supported format.

    Sniffs the leading magic: zip (binary npz), gzip (compressed JSONL),
    else plain-text JSONL.  The run cache reads entries through this, so
    caches written by older (JSONL) builds still load.

    Payloads too short to even carry a format magic (what a torn network
    frame or a zero-byte cache file looks like) raise
    :class:`TraceIOError` up front rather than a confusing low-level
    error from whichever decoder the sniffer happened to guess.
    """
    if len(data) < len(_ZIP_MAGIC):
        raise TraceIOError(
            f"<trace bytes>: payload of {len(data)} byte(s) is too short "
            "to be a trace (no format magic)")
    if data[:4] == _ZIP_MAGIC:
        return trace_from_npz_bytes(data)
    return trace_from_jsonl_bytes(data)


def read_trace_auto(path: str | Path) -> Trace:
    """Read a trace file of any supported format (sniffed, not by suffix)."""
    path = Path(path)
    try:
        with path.open("rb") as f:
            head = f.read(4)
    except OSError as exc:
        raise TraceIOError(f"{path}: unreadable trace file: {exc}") from exc
    if len(head) < len(_ZIP_MAGIC):
        raise TraceIOError(
            f"{path}: file of {len(head)} byte(s) is too short to be a "
            "trace (no format magic)")
    if head == _ZIP_MAGIC:
        return read_trace_npz(path)
    if head[:2] == _GZIP_MAGIC and path.suffix != ".gz":
        # gzip'd JSONL under a non-.gz name: the suffix dispatch in
        # read_trace_jsonl would misread it as plain text.
        return trace_from_jsonl_bytes(path.read_bytes())
    return read_trace_jsonl(path)


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace as CSV with a ``# meta:`` comment header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as f:
        f.write("# meta: " + json.dumps(trace.meta.to_dict()) + "\n")
        writer = csv.writer(f)
        writer.writerow(Trace.field_names)
        for record in trace:
            writer.writerow(getattr(record, name) for name in Trace.field_names)


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as f:
        first = f.readline()
        meta = TraceMeta()
        if first.startswith("# meta:"):
            meta = TraceMeta.from_dict(json.loads(first[len("# meta:"):]))
            header_line = None
        else:
            header_line = first
        reader = csv.reader(f)
        if header_line is not None:
            header = next(csv.reader([header_line]))
        else:
            header = next(reader)
        if tuple(header) != Trace.field_names:
            raise TraceIOError(f"{path}: unexpected CSV columns")
        trace = Trace(meta)
        for row in reader:
            data = dict(zip(Trace.field_names, row))
            kwargs = {}
            for name, raw in data.items():
                if name in Trace.string_channels:
                    kwargs[name] = raw
                elif name in Trace.int_channels:
                    kwargs[name] = int(raw)
                elif name in Trace.bool_channels:
                    kwargs[name] = raw in ("True", "true", "1")
                else:
                    kwargs[name] = float(raw)
            trace.append(TraceRecord(**kwargs))
    return trace
