"""Tests for repro.core.tuning: threshold calibration."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.dsl import BoundAssertion
from repro.core.tuning import calibrate_catalog

from conftest import make_trace


def borderline_trace(cte=2.2):
    """A healthy-by-design trace whose cte rides near the A1 bound (2.5)."""
    def mutate(step, record):
        return record.replace(cte_true=cte if step % 7 else cte * 0.9)

    return make_trace(600, mutate=mutate)


class TestScaleBound:
    def test_scaling_relaxes(self):
        a = BoundAssertion("T", "t", channel="cte_true", bound=2.0,
                           debounce_on=2, debounce_off=3)
        bad = make_trace(100, mutate=lambda s, r: r.replace(cte_true=3.0))
        assert check_trace(bad, [a]).any_fired
        a.scale_bound(2.0)  # effective bound now 4.0
        assert not check_trace(bad, [a]).any_fired

    def test_invalid_factor(self):
        a = BoundAssertion("T", "t", channel="cte_true", bound=2.0)
        with pytest.raises(ValueError):
            a.scale_bound(0.0)

    def test_chaining(self):
        a = BoundAssertion("T", "t", channel="cte_true", bound=2.0)
        assert a.scale_bound(1.5) is a


class TestCalibrateCatalog:
    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_catalog([make_trace(10)], target_headroom=0.0)
        with pytest.raises(ValueError):
            calibrate_catalog([], target_headroom=0.1)

    def test_clean_corpus_changes_nothing(self):
        result = calibrate_catalog([make_trace(600)], target_headroom=0.05)
        assert result.adjusted_ids == []
        assert all(h.scale == 1.0 for h in result.headrooms.values())

    def test_borderline_corpus_relaxes_a1(self):
        # cte rides at 2.2 m against A1's 2.5 m bound: headroom 0.12 only;
        # a 0.3 target forces a relaxation.
        result = calibrate_catalog([borderline_trace()],
                                   target_headroom=0.3, ids=("A1",))
        assert "A1" in result.adjusted_ids
        assert result.scale_of("A1") > 1.0

    def test_calibrated_catalog_silences_nominal_fp(self):
        # cte at 2.7 m fires stock A1 (bound 2.5); after calibration on
        # that same corpus the assertion no longer fires on it.
        noisy_nominal = make_trace(
            600, mutate=lambda s, r: r.replace(cte_true=2.7))
        stock = check_trace(noisy_nominal, default_catalog(("A1",)))
        assert stock.any_fired
        result = calibrate_catalog([noisy_nominal], target_headroom=0.1,
                                   ids=("A1",))
        calibrated = result.build_catalog(("A1",))
        assert not check_trace(noisy_nominal, calibrated).any_fired

    def test_calibration_preserves_attack_sensitivity(self):
        # Relaxing for a 2.7 m nominal must still catch an 8 m deviation.
        noisy_nominal = make_trace(
            600, mutate=lambda s, r: r.replace(cte_true=2.7))
        result = calibrate_catalog([noisy_nominal], target_headroom=0.1,
                                   ids=("A1",))
        attacked = make_trace(
            600,
            mutate=lambda s, r: r.replace(cte_true=8.0 if s > 300 else 0.0),
        )
        report = check_trace(attacked, result.build_catalog(("A1",)))
        assert report.any_fired

    def test_summary_text(self):
        result = calibrate_catalog([borderline_trace()],
                                   target_headroom=0.3, ids=("A1", "A2"))
        text = result.summary()
        assert "A1" in text
        assert "target headroom 0.30" in text

    def test_multi_trace_corpus_takes_worst(self):
        clean = make_trace(600)
        borderline = borderline_trace()
        solo = calibrate_catalog([borderline], target_headroom=0.3,
                                 ids=("A1",))
        both = calibrate_catalog([clean, borderline], target_headroom=0.3,
                                 ids=("A1",))
        assert both.scale_of("A1") == pytest.approx(solo.scale_of("A1"))
        assert both.corpus_size == 2
