"""Vehicle dynamics: kinematic and dynamic bicycle models.

Both models share the :class:`VehicleState` representation so the rest of
the stack (sensors, controllers, trace schema) is model-agnostic.  The
kinematic model is the standard single-track model used throughout the
path-tracking literature; the dynamic model adds a linear-tire lateral
dynamics layer (states: lateral velocity and yaw rate) that matters at the
speeds and curvatures of the urban-loop scenario.

Conventions: world frame is East-North, yaw is CCW from +x, steering angle
is the front-wheel angle (positive = left), accelerations are in m/s^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.geom.angles import normalize_angle
from repro.geom.vec import Pose, Vec2

__all__ = [
    "VehicleParams",
    "VehicleState",
    "KinematicBicycleModel",
    "DynamicBicycleModel",
]


@dataclass(frozen=True, slots=True)
class VehicleParams:
    """Physical parameters of the simulated vehicle.

    Defaults approximate a mid-size sedan (comparable to the Lexus/Toyota
    platforms used by AV research vehicles, and to CARLA's default sedan).
    """

    wheelbase: float = 2.7
    """Distance between axles, meters."""
    lf: float = 1.3
    """CoG to front axle, meters."""
    lr: float = 1.4
    """CoG to rear axle, meters."""
    mass: float = 1650.0
    """Vehicle mass, kg."""
    inertia_z: float = 2800.0
    """Yaw moment of inertia, kg m^2."""
    cornering_front: float = 85_000.0
    """Front axle cornering stiffness, N/rad."""
    cornering_rear: float = 95_000.0
    """Rear axle cornering stiffness, N/rad."""
    max_steer: float = 0.61
    """Steering angle limit, rad (about 35 degrees)."""
    max_accel: float = 3.0
    """Maximum longitudinal acceleration, m/s^2."""
    max_brake: float = 6.0
    """Maximum deceleration magnitude, m/s^2."""
    max_speed: float = 25.0
    """Speed cap, m/s."""
    drag_coeff: float = 0.02
    """Lumped rolling/air drag: a_drag = -drag_coeff * v."""

    def __post_init__(self) -> None:
        if self.wheelbase <= 0 or self.mass <= 0 or self.inertia_z <= 0:
            raise ValueError("wheelbase, mass and inertia must be positive")
        if abs((self.lf + self.lr) - self.wheelbase) > 0.2:
            raise ValueError("lf + lr must be consistent with the wheelbase")
        if self.max_steer <= 0 or self.max_speed <= 0:
            raise ValueError("limits must be positive")


@dataclass(frozen=True, slots=True)
class VehicleState:
    """Full vehicle state shared by both dynamics models.

    For the kinematic model ``vy`` is identically zero and ``yaw_rate``
    follows the steering geometry; the dynamic model evolves both.
    """

    x: float = 0.0
    y: float = 0.0
    yaw: float = 0.0
    v: float = 0.0
    """Longitudinal (body-frame) speed, m/s; non-negative."""
    vy: float = 0.0
    """Lateral (body-frame) velocity, m/s."""
    yaw_rate: float = 0.0
    accel: float = 0.0
    """Longitudinal acceleration applied during the last step."""
    steer: float = 0.0
    """Front wheel angle applied during the last step."""

    @property
    def pose(self) -> Pose:
        return Pose(Vec2(self.x, self.y), self.yaw)

    @property
    def position(self) -> Vec2:
        return Vec2(self.x, self.y)

    @property
    def speed(self) -> float:
        """Total planar speed (kinematic: equals ``v``)."""
        return math.hypot(self.v, self.vy)

    @property
    def lateral_accel(self) -> float:
        """Centripetal acceleration estimate v * yaw_rate, m/s^2."""
        return self.v * self.yaw_rate

    def with_pose(self, x: float, y: float, yaw: float) -> "VehicleState":
        return replace(self, x=x, y=y, yaw=normalize_angle(yaw))


class KinematicBicycleModel:
    """Rear-axle-referenced kinematic bicycle model.

    State update (exact integration of the unicycle part over dt with
    piecewise-constant inputs is approximated by RK2/midpoint, which is
    accurate to O(dt^3) and keeps the model cheap):

        x'   = v cos(yaw)
        y'   = v sin(yaw)
        yaw' = v tan(steer) / L
        v'   = a - drag * v
    """

    name = "kinematic"

    def __init__(self, params: VehicleParams | None = None):
        self.params = params or VehicleParams()

    def step(
        self, state: VehicleState, steer: float, accel: float, dt: float
    ) -> VehicleState:
        """Advance the state by ``dt`` with clamped inputs."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        steer = _clamp(steer, -p.max_steer, p.max_steer)
        accel = _clamp(accel, -p.max_brake, p.max_accel)

        v0 = state.v
        a_net = accel - p.drag_coeff * v0
        v1 = _clamp(v0 + a_net * dt, 0.0, p.max_speed)
        v_mid = 0.5 * (v0 + v1)

        yaw_rate = v_mid * math.tan(steer) / p.wheelbase
        yaw_mid = state.yaw + 0.5 * yaw_rate * dt
        x1 = state.x + v_mid * math.cos(yaw_mid) * dt
        y1 = state.y + v_mid * math.sin(yaw_mid) * dt
        yaw1 = normalize_angle(state.yaw + yaw_rate * dt)

        return VehicleState(
            x=x1,
            y=y1,
            yaw=yaw1,
            v=v1,
            vy=0.0,
            yaw_rate=yaw_rate,
            accel=accel,
            steer=steer,
        )


class DynamicBicycleModel:
    """Linear-tire dynamic bicycle model with kinematic low-speed fallback.

    Lateral dynamics (body frame, small-angle tires):

        m  (vy' + v * r) = Fyf + Fyr
        Iz r'             = lf Fyf - lr Fyr
        Fyf = -Cf * alpha_f,  alpha_f = (vy + lf r)/v - steer
        Fyr = -Cr * alpha_r,  alpha_r = (vy - lr r)/v

    Below ``blend_speed`` the tire model is ill-conditioned (divide by v),
    so the update blends into the kinematic model, which is exact at low
    speed anyway.
    """

    name = "dynamic"

    def __init__(self, params: VehicleParams | None = None, blend_speed: float = 3.0):
        self.params = params or VehicleParams()
        if blend_speed <= 0:
            raise ValueError("blend_speed must be positive")
        self.blend_speed = blend_speed
        self._kinematic = KinematicBicycleModel(self.params)

    def step(
        self, state: VehicleState, steer: float, accel: float, dt: float
    ) -> VehicleState:
        """Advance the state by ``dt`` with clamped inputs."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        steer = _clamp(steer, -p.max_steer, p.max_steer)
        accel = _clamp(accel, -p.max_brake, p.max_accel)

        if state.v < self.blend_speed:
            return self._kinematic.step(state, steer, accel, dt)

        v = state.v
        vy = state.vy
        r = state.yaw_rate

        alpha_f = (vy + p.lf * r) / v - steer
        alpha_r = (vy - p.lr * r) / v
        fyf = -p.cornering_front * alpha_f
        fyr = -p.cornering_rear * alpha_r

        vy_dot = (fyf + fyr) / p.mass - v * r
        r_dot = (p.lf * fyf - p.lr * fyr) / p.inertia_z

        a_net = accel - p.drag_coeff * v
        v1 = _clamp(v + a_net * dt, 0.0, p.max_speed)
        vy1 = vy + vy_dot * dt
        r1 = r + r_dot * dt

        yaw_mid = state.yaw + 0.5 * r1 * dt
        cos_y, sin_y = math.cos(yaw_mid), math.sin(yaw_mid)
        vx_world = v * cos_y - vy * sin_y
        vy_world = v * sin_y + vy * cos_y
        x1 = state.x + vx_world * dt
        y1 = state.y + vy_world * dt
        yaw1 = normalize_angle(state.yaw + r1 * dt)

        return VehicleState(
            x=x1,
            y=y1,
            yaw=yaw1,
            v=v1,
            vy=vy1,
            yaw_rate=r1,
            accel=accel,
            steer=steer,
        )


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
