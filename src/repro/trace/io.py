"""Trace serialization: JSONL (lossless) and CSV (spreadsheet-friendly).

The JSONL format stores one metadata header line followed by one record
per line; round-tripping is exact up to float repr (Python's ``repr`` of a
float is lossless).  CSV stores only the record table and takes the
metadata as a sidecar dict embedded in a ``# meta:`` comment line.

Paths ending in ``.gz`` are transparently gzip-compressed on the JSONL
path, and :func:`trace_to_jsonl_bytes` / :func:`trace_from_jsonl_bytes`
provide the same format as an in-memory payload — the persistent run
cache (:mod:`repro.experiments.cache`) round-trips traces through these
without touching temporary files.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path

from repro.trace.schema import Trace, TraceMeta, TraceRecord

__all__ = [
    "write_trace_jsonl",
    "read_trace_jsonl",
    "write_trace_csv",
    "read_trace_csv",
    "trace_to_jsonl_bytes",
    "trace_from_jsonl_bytes",
]

_GZIP_MAGIC = b"\x1f\x8b"

_BOOL_CHANNELS = frozenset(
    name for name in Trace.field_names
    if name.endswith("_fresh") or name in ("attack_active", "lead_present")
)


def _record_to_dict(record: TraceRecord) -> dict:
    return {name: getattr(record, name) for name in Trace.field_names}


def _record_from_dict(data: dict) -> TraceRecord:
    kwargs = {}
    for name in Trace.field_names:
        if name not in data:
            raise ValueError(f"record is missing channel {name!r}")
        kwargs[name] = data[name]
    kwargs["step"] = int(kwargs["step"])
    return TraceRecord(**kwargs)


def _write_jsonl_stream(trace: Trace, f) -> None:
    f.write(json.dumps({"meta": trace.meta.to_dict()}) + "\n")
    for record in trace:
        f.write(json.dumps(_record_to_dict(record)) + "\n")


def _read_jsonl_stream(f, label: str) -> Trace:
    header = f.readline()
    if not header:
        raise ValueError(f"{label}: empty trace file")
    head = json.loads(header)
    if "meta" not in head:
        raise ValueError(f"{label}: missing metadata header line")
    meta = TraceMeta.from_dict(head["meta"])
    trace = Trace(meta)
    for line_no, line in enumerate(f, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            trace.append(_record_from_dict(json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise ValueError(f"{label}:{line_no}: bad trace record: {exc}") from exc
    return trace


def write_trace_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace to a JSON-lines file (header line + one record/line).

    A ``.gz`` suffix gzip-compresses the file transparently.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as f:
            _write_jsonl_stream(trace, f)
    else:
        with path.open("w", encoding="utf-8") as f:
            _write_jsonl_stream(trace, f)


def read_trace_jsonl(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_jsonl` (plain or .gz)."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as f:
            return _read_jsonl_stream(f, str(path))
    with path.open("r", encoding="utf-8") as f:
        return _read_jsonl_stream(f, str(path))


def trace_to_jsonl_bytes(trace: Trace, compress: bool = True) -> bytes:
    """Serialize a trace to JSONL bytes (gzip-compressed by default).

    This is the persistent run cache's payload format: identical to the
    on-disk JSONL files but round-tripped in memory, so cache writes are
    a single atomic file operation.
    """
    buf = io.StringIO()
    _write_jsonl_stream(trace, buf)
    data = buf.getvalue().encode("utf-8")
    if compress:
        # mtime=0 keeps the payload a pure function of the trace content
        # (content-addressed stores must not embed wall-clock time).
        data = gzip.compress(data, mtime=0)
    return data


def trace_from_jsonl_bytes(data: bytes) -> Trace:
    """Inverse of :func:`trace_to_jsonl_bytes`; auto-detects compression."""
    if data[:2] == _GZIP_MAGIC:
        data = gzip.decompress(data)
    return _read_jsonl_stream(io.StringIO(data.decode("utf-8")),
                              "<trace bytes>")


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace as CSV with a ``# meta:`` comment header."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as f:
        f.write("# meta: " + json.dumps(trace.meta.to_dict()) + "\n")
        writer = csv.writer(f)
        writer.writerow(Trace.field_names)
        for record in trace:
            writer.writerow(getattr(record, name) for name in Trace.field_names)


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as f:
        first = f.readline()
        meta = TraceMeta()
        if first.startswith("# meta:"):
            meta = TraceMeta.from_dict(json.loads(first[len("# meta:"):]))
            header_line = None
        else:
            header_line = first
        reader = csv.reader(f)
        if header_line is not None:
            header = next(csv.reader([header_line]))
        else:
            header = next(reader)
        if tuple(header) != Trace.field_names:
            raise ValueError(f"{path}: unexpected CSV columns")
        trace = Trace(meta)
        for row in reader:
            data = dict(zip(Trace.field_names, row))
            kwargs = {}
            for name, raw in data.items():
                if name in ("attack_name", "attack_channel"):
                    kwargs[name] = raw
                elif name == "step":
                    kwargs[name] = int(raw)
                elif name in _BOOL_CHANNELS:
                    kwargs[name] = raw in ("True", "true", "1")
                else:
                    kwargs[name] = float(raw)
            trace.append(TraceRecord(**kwargs))
    return trace
