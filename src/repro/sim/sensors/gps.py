"""GNSS/GPS position sensor.

The paper's vehicle localizes from GNSS projected into a local East-North
frame; we model the sensor directly in that frame.  Noise is white Gaussian
per axis plus an optional slowly-varying random-walk component that mimics
multipath/atmospheric error correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.dynamics import VehicleState
from repro.sim.sensors.base import Sensor, SensorConfig

__all__ = ["GpsFix", "Gps", "GpsConfig"]


@dataclass(frozen=True, slots=True)
class GpsFix:
    """A single GPS position fix in the local frame."""

    t: float
    x: float
    y: float

    def offset(self, dx: float, dy: float) -> "GpsFix":
        """A copy displaced by ``(dx, dy)`` — used by spoofing attacks."""
        return GpsFix(self.t, self.x + dx, self.y + dy)


@dataclass(frozen=True, slots=True)
class GpsConfig(SensorConfig):
    """GPS-specific configuration (extends the common sensor config)."""

    rate_hz: float = 10.0
    noise_std: float = 0.35
    """White position noise per axis, meters (RTK-ish quality ~ 0.1-0.5)."""
    walk_std: float = 0.02
    """Random-walk increment std per sample, meters (correlated error)."""

    def __post_init__(self) -> None:
        SensorConfig.__post_init__(self)
        if self.noise_std < 0 or self.walk_std < 0:
            raise ValueError("noise parameters must be non-negative")


class Gps(Sensor):
    """GPS sensor producing :class:`GpsFix` readings."""

    channel = "gps"

    def __init__(self, config: GpsConfig, rng: np.random.Generator):
        super().__init__(config, rng)
        self.gps_config = config
        self._walk = np.zeros(2)

    def reset(self) -> None:
        super().reset()
        self._walk = np.zeros(2)

    def _measure(self, t: float, state: VehicleState) -> GpsFix:
        cfg = self.gps_config
        if cfg.walk_std > 0:
            self._walk = self._walk + self.rng.normal(0.0, cfg.walk_std, size=2)
        noise = self.rng.normal(0.0, cfg.noise_std, size=2) if cfg.noise_std > 0 else (
            np.zeros(2)
        )
        return GpsFix(
            t=t,
            x=state.x + float(self._walk[0]) + float(noise[0]),
            y=state.y + float(self._walk[1]) + float(noise[1]),
        )
