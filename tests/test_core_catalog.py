"""Tests for the assertion catalog: each assertion's targeted behaviour.

Every assertion gets at least one "holds on healthy trace" test and one
"fires on its target signature" test built from synthetic records, which
pins down the catalog semantics independent of the simulator.
"""

import math

import pytest

from repro.core.catalog import CATALOG_IDS, CATALOG_STAGES, default_catalog, make_assertion
from repro.core.checker import check_trace
from repro.trace.schema import TraceMeta

from conftest import make_record, make_trace

DT = 0.05


def check_single(assertion_id, trace):
    report = check_trace(trace, [make_assertion(assertion_id)])
    return report.summaries[assertion_id]


class TestCatalogFactory:
    def test_all_ids_unique_and_buildable(self):
        catalog = default_catalog()
        ids = [a.assertion_id for a in catalog]
        assert len(set(ids)) == len(ids) == len(CATALOG_IDS)

    def test_subset_selection(self):
        subset = default_catalog(("A1", "A5"))
        assert [a.assertion_id for a in subset] == ["A1", "A5"]

    def test_unknown_id(self):
        with pytest.raises(ValueError):
            make_assertion("A99")

    def test_stages_cover_catalog_exactly(self):
        staged = [aid for ids in CATALOG_STAGES.values() for aid in ids]
        assert sorted(staged) == sorted(CATALOG_IDS)

    def test_fresh_instances(self):
        assert make_assertion("A1") is not make_assertion("A1")


class TestHealthyTraceIsClean:
    def test_no_assertion_fires_on_synthetic_cruise(self):
        trace = make_trace(600)  # 30 s healthy cruise
        report = check_trace(trace, default_catalog())
        assert report.fired_ids == []


class TestA1CrossTrack:
    def test_fires_on_lane_departure(self):
        def mutate(step, record):
            return record.replace(cte_true=4.0 if step > 300 else 0.0)

        summary = check_single("A1", make_trace(500, mutate=mutate))
        assert summary.fired

    def test_holds_below_bound(self):
        def mutate(step, record):
            return record.replace(cte_true=1.5)

        assert not check_single("A1", make_trace(400, mutate=mutate)).fired


class TestA3Convergence:
    def test_sustained_offset_fires(self):
        def mutate(step, record):
            return record.replace(cte_true=1.6)

        assert check_single("A3", make_trace(600, mutate=mutate)).fired

    def test_brief_spike_tolerated(self):
        def mutate(step, record):
            return record.replace(cte_true=2.0 if 300 <= step < 310 else 0.2)

        assert not check_single("A3", make_trace(600, mutate=mutate)).fired


class TestA4DeadReckoning:
    def test_gps_jump_fires(self):
        def mutate(step, record):
            if step > 400:
                return record.replace(gps_y=record.gps_y + 5.0)
            return record

        assert check_single("A4", make_trace(700, mutate=mutate)).fired

    def test_consistent_channels_hold(self):
        assert not check_single("A4", make_trace(700)).fired

    def test_stationary_vehicle_not_applicable(self):
        # Stopped vehicle: GPS walk must not fire the assertion.
        def mutate(step, record):
            return record.replace(
                odom_speed=0.0, true_v=0.0,
                gps_x=0.02 * step, gps_y=0.0,  # slow receiver walk
                true_x=0.0, station_true=0.0, station_est=0.0,
                target_speed=0.0,
            )

        assert not check_single("A4", make_trace(400, mutate=mutate)).fired


class TestA5Jump:
    def test_position_jump_fires(self):
        def mutate(step, record):
            if step == 300:
                return record.replace(gps_x=record.gps_x + 8.0)
            return record

        assert check_single("A5", make_trace(400, mutate=mutate)).fired

    def test_motion_consistent_fixes_hold(self):
        assert not check_single("A5", make_trace(400)).fired


class TestA6Freeze:
    def test_frozen_gps_fires(self):
        def mutate(step, record):
            if step > 200:
                return record.replace(gps_x=200 * 0.05 * 8.0, gps_y=0.0)
            return record

        assert check_single("A6", make_trace(500, mutate=mutate)).fired

    def test_moving_gps_holds(self):
        assert not check_single("A6", make_trace(500)).fired


class TestA7SpeedConsistency:
    def test_scaled_odometry_fires(self):
        def mutate(step, record):
            return record.replace(odom_speed=4.0)  # GPS implies 8 m/s

        assert check_single("A7", make_trace(400, mutate=mutate)).fired

    def test_consistent_speeds_hold(self):
        assert not check_single("A7", make_trace(400)).fired


class TestA8ImuCompass:
    def test_gyro_bias_fires(self):
        def mutate(step, record):
            return record.replace(imu_yaw_rate=0.08)  # compass says straight

        assert check_single("A8", make_trace(400, mutate=mutate)).fired

    def test_consistent_turn_holds(self):
        # Turning: gyro rate and compass heading agree.
        def mutate(step, record):
            yaw = 0.1 * step * DT
            return record.replace(
                imu_yaw_rate=0.1,
                compass_yaw=math.remainder(yaw, 2 * math.pi),
                true_yaw=math.remainder(yaw, 2 * math.pi),
            )

        assert not check_single("A8", make_trace(400, mutate=mutate)).fired


class TestA9Innovations:
    @pytest.mark.parametrize("aid,channel", [
        ("A9G", "nis_gps"), ("A9S", "nis_speed"), ("A9C", "nis_compass"),
    ])
    def test_sustained_high_nis_fires(self, aid, channel):
        def mutate(step, record):
            if step > 200:
                return record.replace(**{channel: 40.0})
            return record

        assert check_single(aid, make_trace(400, mutate=mutate)).fired

    def test_nominal_nis_holds(self):
        for aid in ("A9G", "A9S", "A9C"):
            assert not check_single(aid, make_trace(400)).fired


class TestA10Progress:
    def test_stalled_station_fires(self):
        def mutate(step, record):
            if step > 300:
                return record.replace(station_est=300 * DT * 8.0)
            return record

        assert check_single("A10", make_trace(600, mutate=mutate)).fired

    def test_wrapping_station_tolerated(self):
        # Closed-route wrap: station drops to ~0 once; must not fire.
        def mutate(step, record):
            wrapped = (step * DT * 8.0) % 120.0
            return record.replace(station_est=wrapped)

        assert not check_single("A10", make_trace(600, mutate=mutate)).fired


class TestA11Oscillation:
    def test_limit_cycle_fires(self):
        def mutate(step, record):
            phase = step % 16
            steer = 0.3 if phase < 8 else -0.3  # 1.25 Hz square wave
            return record.replace(steer_cmd=steer)

        assert check_single("A11", make_trace(600, mutate=mutate)).fired

    def test_small_dither_tolerated(self):
        def mutate(step, record):
            return record.replace(steer_cmd=0.05 if step % 2 else -0.05)

        assert not check_single("A11", make_trace(600, mutate=mutate)).fired


class TestA12LateralAccel:
    def test_excessive_lat_accel_fires(self):
        def mutate(step, record):
            return record.replace(est_v=15.0, imu_yaw_rate=0.5)  # 7.5 m/s^2

        assert check_single("A12", make_trace(400, mutate=mutate)).fired


class TestA13Saturation:
    def test_persistent_saturation_fires(self):
        def mutate(step, record):
            return record.replace(steer_cmd=0.61 if step > 200 else 0.0)

        assert check_single("A13", make_trace(500, mutate=mutate)).fired


class TestA14SpeedTracking:
    def test_sustained_error_fires(self):
        def mutate(step, record):
            return record.replace(est_v=4.0, target_speed=8.0)

        assert check_single("A14", make_trace(500, mutate=mutate)).fired

    def test_stopping_phase_not_applicable(self):
        def mutate(step, record):
            return record.replace(est_v=4.0, target_speed=0.0)

        assert not check_single("A14", make_trace(500, mutate=mutate)).fired


class TestA15Goal:
    def test_goal_missed_fires(self):
        def mutate(step, record):
            return record.replace(dist_to_goal=80.0)

        assert check_single("A15", make_trace(400, mutate=mutate)).fired

    def test_goal_reached_holds(self):
        def mutate(step, record):
            return record.replace(dist_to_goal=max(100.0 - step, 0.0))

        assert not check_single("A15", make_trace(400, mutate=mutate)).fired

    def test_closed_route_not_applicable(self):
        def mutate(step, record):
            return record.replace(dist_to_goal=-1.0)

        assert not check_single("A15", make_trace(400, mutate=mutate)).fired


class TestA16Actuation:
    def test_matching_actuator_holds(self):
        # steer_cmd == steer_applied == 0 on the healthy trace.
        assert not check_single("A16", make_trace(400)).fired

    def test_offset_fires(self):
        def mutate(step, record):
            if step > 200:
                return record.replace(steer_applied=record.steer_cmd + 0.08)
            return record

        assert check_single("A16", make_trace(400, mutate=mutate)).fired
