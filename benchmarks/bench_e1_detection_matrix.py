"""Bench E1 — Table 1: assertion/attack detection matrix."""

from conftest import run_and_print

from repro.experiments import build_detection_matrix
from repro.experiments.config import STANDARD_ATTACKS


def test_e1_detection_matrix(benchmark, quick_config):
    table = run_and_print(benchmark, build_detection_matrix, quick_config)
    detected = dict(zip(table.column_values("attack"),
                        table.column_values("detected")))
    # Paper-shape claims: zero nominal false positives, full detection.
    assert detected["none"].startswith("0/")
    for attack in STANDARD_ATTACKS:
        n = detected[attack].split("/")[1]
        assert detected[attack] == f"{n}/{n}", f"{attack} not fully detected"
