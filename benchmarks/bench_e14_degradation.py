"""Bench E14 (extension) — Table 10: graceful degradation under faults."""

from conftest import run_and_print

from repro.experiments import build_degradation_table


def test_e14_degradation(benchmark, quick_config):
    table = run_and_print(benchmark, build_degradation_table, quick_config)
    rows = {(r[0], r[1]): r for r in table.rows}

    def frac(cell):
        num, den = cell.split("/")
        return int(num) / int(den)

    # Extension-shape claims.  Nominal runs are clean for both stacks:
    for stack in ("baseline", "supervised"):
        row = rows[("none", stack)]
        assert frac(row[3]) == 0.0 and row[4] == "-"
        assert all(frac(row[i]) == 0.0 for i in (5, 6, 7))

    # gps_freeze is catastrophic for the unprotected stack (a frozen fix
    # drags the EKF off the route; A1 and A21 fire) while the supervisor
    # times the channel out and safe-stops inside the lane:
    frozen = rows[("gps_freeze", "baseline")]
    assert float(frozen[2]) > 2.5
    assert frac(frozen[5]) == 1.0 and frac(frozen[6]) == 1.0
    saved = rows[("gps_freeze", "supervised")]
    assert float(saved[2]) < 2.0
    assert saved[4] != "-"
    assert all(frac(saved[i]) == 0.0 for i in (5, 6, 7))

    # A NaN burst crashes the unprotected stack outright; the supervisor
    # quarantines it and completes the (stopped) run:
    assert frac(rows[("gps_nan", "baseline")][3]) == 1.0
    nan_saved = rows[("gps_nan", "supervised")]
    assert frac(nan_saved[3]) == 0.0 and float(nan_saved[2]) < 2.0

    # Correlated gps+compass loss: the unprotected stack keeps cruising
    # on dead reckoning (A22 fires); the supervisor stops within ~1 s:
    combo = "gps_dropout+compass_dropout"
    assert frac(rows[(combo, "baseline")][7]) == 1.0
    combo_saved = rows[(combo, "supervised")]
    assert frac(combo_saved[7]) == 0.0
    assert combo_saved[4] != "-" and float(combo_saved[4]) < 2.0
