"""Benchmark suite configuration.

Each ``bench_e*.py`` regenerates one evaluation artifact (table/figure)
under the *quick* experiment config and prints it, so ``pytest benchmarks/
--benchmark-only`` both times the harness and reproduces every artifact's
qualitative shape.  Full-size tables: ``adassure experiment all``.
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig.quick()


def run_and_print(benchmark, builder, config):
    """Benchmark one experiment builder (single round) and print it."""
    result = benchmark.pedantic(builder, args=(config,), rounds=1,
                                iterations=1)
    tables = result if isinstance(result, list) else [result]
    print()
    for table in tables:
        print(table.render())
        print()
    return result
