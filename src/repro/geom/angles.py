"""Angle arithmetic helpers.

Headings live on the circle, so naive subtraction is wrong near the +/- pi
wrap.  Every heading comparison in the simulator, controllers and assertion
catalog goes through :func:`angle_diff` / :func:`normalize_angle`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["normalize_angle", "angle_diff", "unwrap_angles", "circular_mean"]

_TWO_PI = 2.0 * math.pi


def normalize_angle(angle: float) -> float:
    """Wrap an angle to the interval (-pi, pi].

    Args:
        angle: angle in radians (any magnitude, must be finite).

    Returns:
        The equivalent angle in (-pi, pi].
    """
    if not math.isfinite(angle):
        raise ValueError(f"cannot normalize non-finite angle {angle!r}")
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


def angle_diff(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` on the circle, in (-pi, pi]."""
    return normalize_angle(a - b)


def unwrap_angles(angles: Sequence[float]) -> list[float]:
    """Unwrap a sequence of angles into a continuous signal.

    Consecutive samples are assumed to differ by less than pi; each output
    sample equals the previous output plus the wrapped increment, so the
    result is free of 2*pi jumps and suitable for differentiation.
    """
    if not angles:
        return []
    out = [float(angles[0])]
    for angle in angles[1:]:
        out.append(out[-1] + angle_diff(float(angle), out[-1]))
    return out


def circular_mean(angles: Iterable[float]) -> float:
    """Mean direction of a set of angles (radians, in (-pi, pi]).

    Raises:
        ValueError: if ``angles`` is empty or the mean is undefined (the
            resultant vector is numerically zero, e.g. two opposite angles).
    """
    sx = sy = 0.0
    count = 0
    for angle in angles:
        sx += math.cos(angle)
        sy += math.sin(angle)
        count += 1
    if count == 0:
        raise ValueError("circular_mean of an empty sequence")
    if math.hypot(sx, sy) < 1e-12:
        raise ValueError("circular mean undefined: resultant vector is zero")
    return math.atan2(sy, sx)
