"""CARLA-style vehicle control message."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VehicleControl"]


@dataclass(slots=True)
class VehicleControl:
    """Normalized control command, mirroring ``carla.VehicleControl``.

    Attributes:
        throttle: [0, 1] fraction of maximum acceleration.
        steer: [-1, 1] fraction of maximum steering angle
            (CARLA convention: positive steers right).
        brake: [0, 1] fraction of maximum braking deceleration.
    """

    throttle: float = 0.0
    steer: float = 0.0
    brake: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.throttle <= 1.0:
            raise ValueError("throttle must be in [0, 1]")
        if not -1.0 <= self.steer <= 1.0:
            raise ValueError("steer must be in [-1, 1]")
        if not 0.0 <= self.brake <= 1.0:
            raise ValueError("brake must be in [0, 1]")
