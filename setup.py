"""Setuptools shim for offline editable installs.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on machines without the ``wheel``
package (fully offline environments).
"""

from setuptools import setup

setup()
