"""Round-batched probing and the off-grid planner.

Three layers, one contract — batching is an optimization, never a
semantic:

* the search cores' ``prefetch`` hook is verdict-neutral: speculative
  candidate sets never change the returned boundary (hypothesis pins
  this over arbitrary predicates);
* :class:`~repro.experiments.plan.ProbePlan` drains declared sweeps
  through the batch engine with results identical to each run's serial
  ``simulate`` closure, falling back whole-group on engine rejection;
* the E10–E13 experiment tables are render-equal between a
  serial-pinned pass and the auto-batched planner pass — the
  ``bit_identical`` gate CI's probe-batching smoke enforces.

Plus the params ledger: every off-grid commit records its params dict,
so ``resolve_cache_key`` (and ``adassure explain <key>``) reverse-maps
E10–E13 and probe entries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.counterfactual import (
    bisect_intensity,
    ddmin_interval,
    ddmin_subset,
)
from repro.experiments.runner import choose_sim_engine, clear_cache
from repro.experiments.stats import STATS


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    clear_cache()
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# Speculation is verdict-neutral (property over arbitrary predicates)
# ---------------------------------------------------------------------------

class TestPrefetchNeutrality:
    """The prefetch hook observes candidates; it must never steer."""

    @settings(max_examples=200, deadline=None)
    @given(n=st.integers(1, 48), bad=st.sets(st.integers(0, 47)))
    def test_interval_boundary_unchanged(self, n, bad):
        def violates(lo, hi):
            return any(lo <= b < hi for b in bad)

        issued = []
        plain = ddmin_interval(violates, n)
        probed = ddmin_interval(violates, n,
                                prefetch=lambda c: issued.extend(c))
        assert (plain.lo, plain.hi) == (probed.lo, probed.hi)
        assert plain.probes == probed.probes
        assert plain.exhausted == probed.exhausted

    @settings(max_examples=200, deadline=None)
    @given(k=st.integers(1, 8), data=st.data())
    def test_subset_boundary_unchanged(self, k, data):
        items = tuple(range(k))
        needed = data.draw(st.sets(st.sampled_from(items)))

        def violates(subset):
            return needed <= set(subset)

        issued = []
        plain = ddmin_subset(violates, items)
        probed = ddmin_subset(violates, items,
                              prefetch=lambda c: issued.extend(c))
        assert plain.kept == probed.kept
        assert plain.probes == probed.probes

    @settings(max_examples=200, deadline=None)
    @given(hi=st.floats(0.25, 64.0, allow_nan=False),
           frac=st.floats(0.0, 1.0, allow_nan=False))
    def test_intensity_boundary_unchanged(self, hi, frac):
        threshold = hi * frac

        def violates(x):
            return x >= threshold

        issued = []
        plain = bisect_intensity(violates, hi)
        probed = bisect_intensity(violates, hi,
                                  prefetch=lambda c: issued.extend(c))
        assert plain.minimal == probed.minimal
        assert plain.lower == probed.lower
        assert plain.probes == probed.probes


class TestSpeculativeAccounting:
    """Issued/wasted bookkeeping on the live probe engine."""

    def test_wasted_is_issued_minus_consumed(self, fresh_cache):
        from repro.experiments.counterfactual import (
            Intervention,
            ProbeEngine,
            Subject,
        )
        subject = Subject(scenario="straight", controller="pure_pursuit",
                          seed=1, duration=8.0)
        engine = ProbeEngine(subject, sim_engine="batch")
        original = Intervention.from_labels("gps_bias", onset=2.0)
        fleet = [original.with_intensity(v) for v in (0.25, 0.5, 0.75)]
        issued = engine.prefetch(fleet)
        assert issued == 3
        assert engine.stats.speculative_issued == 3
        assert engine.stats.speculative_wasted == 3

        engine.outcome(fleet[0])
        engine.outcome(fleet[2])
        # 3 issued - 2 consumed = 1 speculative lane wasted.
        assert engine.stats.speculative_wasted == 1
        assert len(engine._speculative) == 1
        # Consumed lanes were cache hits, not fresh simulations.
        assert engine.stats.memo_hits == 2
        assert engine.stats.executed == 3  # the batched fleet itself

    def test_prefetch_noop_on_serial_engine(self, fresh_cache):
        from repro.experiments.counterfactual import (
            Intervention,
            ProbeEngine,
            Subject,
        )
        subject = Subject(scenario="straight", controller="pure_pursuit",
                          seed=1, duration=8.0)
        engine = ProbeEngine(subject, sim_engine="serial")
        original = Intervention.from_labels("gps_bias", onset=2.0)
        assert engine.prefetch([original.with_intensity(v)
                                for v in (0.25, 0.5)]) == 0
        assert engine.stats.speculative_issued == 0
        assert engine.stats.executed == 0


# ---------------------------------------------------------------------------
# Engine auto-selection
# ---------------------------------------------------------------------------

class TestChooseSimEngine:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_SIM", "batch")
        engine, reason = choose_sim_engine("serial", pending=100)
        assert engine == "serial"
        assert reason == "engine argument"

    def test_env_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_SIM", "serial")
        engine, reason = choose_sim_engine(None, pending=100)
        assert engine == "serial"
        assert reason == "ADASSURE_SIM"

    def test_auto_batches_two_or_more(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_SIM", raising=False)
        assert choose_sim_engine(None, pending=2)[0] == "batch"
        assert choose_sim_engine(None, pending=1)[0] == "serial"
        assert choose_sim_engine(None, pending=0)[0] == "serial"

    def test_invalid_engine_rejected(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_SIM", raising=False)
        with pytest.raises(ValueError):
            choose_sim_engine("warp", pending=2)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

def _plan_gps_sweep(plan, seeds, duration=8.0):
    """Declare a tiny straight-road gps_bias sweep on ``plan``."""
    from repro.attacks.campaign import standard_attack
    from repro.experiments.plan import scenario_lane
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import standard_scenarios

    handles = {}
    for seed in seeds:
        scenario = standard_scenarios(seed=seed,
                                      duration=duration)["straight"]

        def campaign():
            return standard_attack("gps_bias", onset=2.0)

        def simulate(scenario=scenario, campaign=campaign):
            return run_scenario(scenario, campaign=campaign())

        handles[seed] = plan.plan_scored(
            {"kind": "mitigation", "scenario": "straight",
             "controller": "pure_pursuit", "attack": "gps_bias",
             "seed": seed, "onset": 2.0, "duration": duration,
             "gate": None},
            simulate,
            lane=lambda scenario=scenario, campaign=campaign:
            scenario_lane(scenario, campaign=campaign()),
        )
    return handles


class TestProbePlan:
    def test_drain_batches_and_matches_serial(self, fresh_cache):
        from repro.experiments.plan import ProbePlan
        serial = ProbePlan(sim_engine="serial")
        oracle = {seed: run.result()
                  for seed, run in _plan_gps_sweep(serial, (1, 2, 3)).items()}

        clear_cache(disk=True)
        batched = ProbePlan(sim_engine="batch")
        handles = _plan_gps_sweep(batched, (1, 2, 3))
        stats = batched.drain()
        assert stats.planned == 3
        assert stats.plan_batched == 3
        assert stats.plan_fallbacks == 0
        assert stats.batch_groups == 1
        for seed, (result, report) in oracle.items():
            b_result, b_report = handles[seed].result()
            assert b_result.metrics == result.metrics
            assert b_report.fired_ids == report.fired_ids
            assert b_report.evidence() == report.evidence()

    def test_first_result_read_triggers_drain(self, fresh_cache):
        from repro.experiments.plan import ProbePlan
        plan = ProbePlan(sim_engine="batch")
        handles = _plan_gps_sweep(plan, (1, 2))
        assert plan.pending == 2
        assert not handles[1].done
        handles[1].result()  # implicit drain
        assert plan.pending == 0
        assert handles[2].done

    def test_second_drain_hits_cache(self, fresh_cache):
        from repro.experiments.plan import ProbePlan
        plan = ProbePlan(sim_engine="batch")
        _plan_gps_sweep(plan, (1, 2))
        plan.drain()
        _plan_gps_sweep(plan, (1, 2))
        stats = plan.drain()
        assert stats.executed == 0
        assert stats.memo_hits == 2
        assert stats.plan_batched == 0

    def test_rejected_group_falls_back_whole(self, fresh_cache, monkeypatch):
        import repro.sim.batch as batch_mod
        from repro.experiments.plan import ProbePlan

        def explode(specs):
            raise RuntimeError("batch engine down")

        monkeypatch.setattr(batch_mod, "run_batch", explode)
        plan = ProbePlan(sim_engine="batch")
        handles = _plan_gps_sweep(plan, (1, 2, 3))
        stats = plan.drain()
        assert stats.plan_fallbacks == 1
        assert stats.plan_batched == 0
        assert stats.executed == 3  # whole group re-ran serially
        assert all(run.done for run in handles.values())

    def test_lane_none_forces_serial(self, fresh_cache):
        from repro.experiments.plan import ProbePlan
        from repro.sim.engine import run_scenario
        from repro.sim.scenario import standard_scenarios
        plan = ProbePlan(sim_engine="batch")
        for seed in (1, 2):
            scenario = standard_scenarios(seed=seed, duration=8.0)["straight"]
            plan.plan_scored(
                {"kind": "mitigation", "scenario": "straight",
                 "controller": "pure_pursuit", "attack": "none",
                 "seed": seed, "onset": 2.0, "duration": 8.0, "gate": None},
                lambda scenario=scenario: run_scenario(scenario),
                lane=None)
        stats = plan.drain()
        assert stats.executed == 2
        assert stats.plan_batched == 0
        assert stats.plan_fallbacks == 0

    def test_auto_engine_selected_per_drain(self, fresh_cache, monkeypatch):
        from repro.experiments.plan import ProbePlan
        monkeypatch.delenv("ADASSURE_SIM", raising=False)
        plan = ProbePlan()
        _plan_gps_sweep(plan, (1, 2))
        stats = plan.drain()
        assert plan.sim_engine == "batch"
        assert stats.sim_engine == "batch"
        assert stats.sim_engine_reason == "auto: 2 pending run(s)"

        monkeypatch.setenv("ADASSURE_SIM", "serial")
        _plan_gps_sweep(plan, (4,))
        stats = plan.drain()
        assert plan.sim_engine == "serial"
        assert stats.sim_engine_reason == "ADASSURE_SIM"


# ---------------------------------------------------------------------------
# Params ledger + cache-key reverse mapping
# ---------------------------------------------------------------------------

class TestParamsLedger:
    def test_record_and_load_roundtrip(self, tmp_path):
        from repro.experiments.cache import RunCache
        cache = RunCache(tmp_path)
        params = {"kind": "acc", "attack": "radar_ghost", "seed": 3,
                  "onset": 10.0}
        cache.record_params("ab" * 20, params)
        assert cache.load_params("ab" * 20) == params
        assert cache.load_params("cd" * 20) is None

    def test_corrupt_ledger_entry_is_a_miss(self, tmp_path):
        from repro.experiments.cache import RunCache
        cache = RunCache(tmp_path)
        cache.record_params("ab" * 20, {"kind": "acc"})
        cache._params_path("ab" * 20).write_text("{not json",
                                                 encoding="utf-8")
        assert cache.load_params("ab" * 20) is None

    @pytest.mark.parametrize("params,expected", [
        ({"kind": "mitigation", "scenario": "urban_loop",
          "controller": "pure_pursuit", "attack": "gps_drift", "seed": 7,
          "onset": 15.0, "duration": 40.0, "gate": 13.8},
         {"scenario": "urban_loop", "controller": "pure_pursuit",
          "attack": "gps_drift", "seed": 7, "onset": 15.0,
          "duration": 40.0, "gate": 13.8}),
        ({"kind": "multi_attack", "pair": ["gps_bias", "imu_gyro_bias"],
          "scenario": "s_curve", "seed": 3, "onset": 12.0},
         {"scenario": "s_curve", "controller": "pure_pursuit",
          "attack": "gps_bias+imu_gyro_bias", "seed": 3, "onset": 12.0}),
        ({"kind": "acc", "attack": "radar_scale", "seed": 5, "onset": 10.0},
         {"scenario": "acc_follow", "controller": "pure_pursuit",
          "attack": "radar_scale", "seed": 5, "onset": 10.0}),
        ({"kind": "defect", "defect": "ctrl_deadband",
          "defect_params": {"threshold": 0.12}, "scenario": "s_curve",
          "seed": 2},
         {"scenario": "s_curve", "controller": "pure_pursuit", "seed": 2,
          "defect": "ctrl_deadband", "defect_args": {"threshold": 0.12}}),
    ])
    def test_resolve_maps_off_grid_kinds(self, fresh_cache, params,
                                         expected):
        from repro.experiments.cache import RunCache, cache_key_params
        from repro.experiments.counterfactual import resolve_cache_key
        cache = RunCache.from_env()
        key = cache_key_params(params)
        cache.record_params(key, params)
        assert resolve_cache_key(key) == expected

    def test_resolve_maps_probe_kind(self, fresh_cache):
        from repro.experiments.cache import RunCache, cache_key_params
        from repro.experiments.counterfactual import (
            Intervention,
            Subject,
            probe_params,
            resolve_cache_key,
        )
        subject = Subject(scenario="s_curve", controller="stanley", seed=9,
                          duration=20.0)
        intervention = Intervention.from_labels(
            "gps_bias", "gps_dropout", intensity=0.5, onset=10.0)
        params = probe_params(subject, intervention)
        cache = RunCache.from_env()
        key = cache_key_params(params)
        cache.record_params(key, params)
        kwargs = resolve_cache_key(key)
        assert kwargs == {
            "scenario": "s_curve", "controller": "stanley",
            "attack": "gps_bias", "fault": "gps_dropout",
            "intensity": 0.5, "onset": 10.0, "seed": 9, "duration": 20.0,
        }

    def test_unknown_kind_and_unknown_key_resolve_to_none(self, fresh_cache):
        from repro.experiments.cache import RunCache, cache_key_params
        from repro.experiments.counterfactual import resolve_cache_key
        cache = RunCache.from_env()
        params = {"kind": "mystery", "x": 1}
        key = cache_key_params(params)
        cache.record_params(key, params)
        assert resolve_cache_key(key) is None
        assert resolve_cache_key("0" * 40) is None

    def test_commit_records_ledger_entry(self, fresh_cache):
        from repro.experiments.cache import RunCache
        from repro.experiments.plan import ProbePlan
        plan = ProbePlan(sim_engine="serial")
        _plan_gps_sweep(plan, (1,))
        plan.drain()
        cache = RunCache.from_env()
        ledger = list((cache.root / "params").rglob("*.params.json"))
        assert len(ledger) == 1


# ---------------------------------------------------------------------------
# E10–E13 differential: planner pass render-equal to serial (CI gate)
# ---------------------------------------------------------------------------

class TestExperimentDifferential:
    """The ``bit_identical`` check CI's probe-batching smoke enforces."""

    def _build_all(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.e10_mitigation import build_mitigation_table
        from repro.experiments.e11_multi_attack import build_multi_attack_table
        from repro.experiments.e12_acc import build_acc_debugging
        from repro.experiments.e13_defects import build_defect_debugging
        cfg = ExperimentConfig.quick()
        return [table.render() for table in (
            build_mitigation_table(cfg), build_multi_attack_table(cfg),
            build_acc_debugging(cfg), build_defect_debugging(cfg))]

    def test_batched_tables_match_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path / "serial"))
        monkeypatch.setenv("ADASSURE_SIM", "serial")
        clear_cache()
        serial = self._build_all()

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path / "batch"))
        monkeypatch.delenv("ADASSURE_SIM", raising=False)
        clear_cache()
        STATS.reset()
        batched = self._build_all()
        clear_cache()

        assert batched == serial
        # The batch pass really batched: every planned run drained
        # through the lockstep engine, no group fell back.
        assert STATS.total.planned > 0
        assert STATS.total.plan_batched == STATS.total.planned
        assert STATS.total.plan_fallbacks == 0
