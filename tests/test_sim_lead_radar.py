"""Tests for the car-following substrate: lead vehicle, radar, ACC."""

import math

import numpy as np
import pytest

from repro.attacks.campaign import standard_attack
from repro.control.acc import AccConfig, AccController
from repro.geom.routes import straight_route, urban_loop_route
from repro.sim.engine import run_scenario
from repro.sim.lead import LeadSpeedEvent, LeadVehicle, LeadVehicleConfig
from repro.sim.rng import RngStreams
from repro.sim.scenario import acc_scenario
from repro.sim.sensors.radar import Radar, RadarConfig


def radar(config=None):
    return Radar(config or RadarConfig(), RngStreams(3).stream("radar"))


class TestLeadVehicleConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LeadVehicleConfig(initial_gap=0.0)
        with pytest.raises(ValueError):
            LeadVehicleConfig(accel_lag=0.0)
        with pytest.raises(ValueError):
            LeadVehicleConfig(events=(LeadSpeedEvent(10.0, 5.0),
                                      LeadSpeedEvent(5.0, 8.0)))

    def test_slowdown_preset(self):
        config = LeadVehicleConfig.slowdown(slow_at=18.0, resume_at=32.0)
        assert len(config.events) == 2
        assert config.events[0].speed < config.initial_speed


class TestLeadVehicle:
    def test_constant_speed_advance(self):
        lead = LeadVehicle(LeadVehicleConfig(initial_gap=40.0,
                                             initial_speed=10.0), 0.0)
        for i in range(100):
            lead.step(i * 0.05, 0.05)
        assert lead.station == pytest.approx(40.0 + 10.0 * 5.0, rel=0.01)

    def test_speed_event_tracked_with_lag(self):
        config = LeadVehicleConfig(
            initial_gap=40.0, initial_speed=10.0,
            events=(LeadSpeedEvent(1.0, 4.0),), accel_lag=0.5,
        )
        lead = LeadVehicle(config, 0.0)
        for i in range(200):  # 10 s
            lead.step(i * 0.05, 0.05)
        assert lead.speed == pytest.approx(4.0, abs=0.05)

    def test_gap_wraps_on_closed_routes(self):
        lead = LeadVehicle(LeadVehicleConfig(initial_gap=30.0), 0.0)
        gap = lead.gap_to(ego_station=350.0, route_length=369.0, closed=True)
        assert 0.0 <= gap < 369.0

    def test_position_beyond_open_route_extrapolates(self):
        route = straight_route(100.0)
        lead = LeadVehicle(LeadVehicleConfig(initial_gap=50.0,
                                             initial_speed=10.0), 80.0)
        for i in range(100):  # lead passes 100 m
            lead.step(i * 0.05, 0.05)
        pos = lead.position_on(route)
        assert pos.x > 100.0
        assert pos.y == pytest.approx(0.0, abs=1e-9)
        vel = lead.velocity_on(route)
        assert vel.x == pytest.approx(10.0, rel=0.01)

    def test_position_on_loop_wraps(self):
        route = urban_loop_route()
        lead = LeadVehicle(LeadVehicleConfig(initial_gap=10.0,
                                             initial_speed=8.0), 0.0)
        for i in range(2000):  # several laps
            lead.step(i * 0.05, 0.05)
        pos = lead.position_on(route)
        proj = route.project(pos)
        assert proj.distance < 0.5

    def test_rejects_bad_dt(self):
        lead = LeadVehicle(LeadVehicleConfig(), 0.0)
        with pytest.raises(ValueError):
            lead.step(0.0, 0.0)


class TestRadar:
    def test_rate_schedule(self):
        r = radar(RadarConfig(rate_hz=20.0, range_noise_std=0.0,
                              rate_noise_std=0.0))
        readings = [r.poll_gap(i * 0.05, 30.0, -2.0) for i in range(100)]
        fresh = [x for x in readings if x is not None]
        assert len(fresh) == 100  # 20 Hz radar at 20 Hz polling

    def test_noiseless_exact(self):
        r = radar(RadarConfig(range_noise_std=0.0, rate_noise_std=0.0))
        reading = r.poll_gap(0.0, 42.0, -3.0)
        assert reading.range_m == 42.0
        assert reading.range_rate == -3.0

    def test_out_of_range_suppressed(self):
        r = radar(RadarConfig(max_range=100.0))
        assert r.poll_gap(0.0, 150.0, 0.0) is None
        assert r.poll_gap(0.05, -1.0, 0.0) is None

    def test_range_never_negative(self):
        r = radar(RadarConfig(range_noise_std=5.0))
        readings = [r.poll_gap(i * 0.05, 0.5, 0.0) for i in range(200)]
        assert all(x.range_m >= 0.0 for x in readings if x is not None)

    def test_reading_mutators(self):
        r = radar(RadarConfig(range_noise_std=0.0, rate_noise_std=0.0))
        reading = r.poll_gap(0.0, 30.0, -2.0)
        assert reading.with_range(10.0).range_m == 10.0
        assert reading.with_range(-5.0).range_m == 0.0
        assert reading.with_range_rate(1.0).range_rate == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RadarConfig(range_noise_std=-1.0)
        with pytest.raises(ValueError):
            RadarConfig(max_range=0.0)


class TestAccController:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AccConfig(time_gap=0.0)
        with pytest.raises(ValueError):
            AccConfig(k_gap=0.0)

    def test_desired_gap(self):
        acc = AccController(AccConfig(time_gap=1.5, standstill_gap=5.0))
        assert acc.desired_gap(10.0) == pytest.approx(20.0)

    def test_brakes_when_too_close(self):
        acc = AccController()
        accel = acc.compute_accel(range_m=8.0, range_rate=-3.0, ego_speed=10.0)
        assert accel < 0.0

    def test_accelerates_when_far(self):
        acc = AccController()
        accel = acc.compute_accel(range_m=80.0, range_rate=0.0, ego_speed=10.0)
        assert accel > 0.0

    def test_authority_limits(self):
        acc = AccController(AccConfig(accel_max=2.0, brake_max=6.0))
        assert acc.compute_accel(500.0, 10.0, 0.0) == 2.0
        assert acc.compute_accel(0.5, -20.0, 20.0) == -6.0


class TestClosedLoopFollowing:
    def test_nominal_following_is_safe_and_clean(self):
        result = run_scenario(acc_scenario(seed=7))
        gap = result.trace.column("gap_true")
        assert float(np.min(gap)) > 5.0
        assert result.metrics.goal_reached

    def test_ego_slows_with_lead(self):
        result = run_scenario(acc_scenario(seed=7))
        tr = result.trace
        t = tr.times()
        v = tr.column("true_v")
        # During the lead's slow phase the ego must drop well below cruise.
        slow_phase = (t > 24.0) & (t < 32.0)
        assert float(np.mean(v[slow_phase])) < 7.0

    def test_radar_channels_recorded(self):
        result = run_scenario(acc_scenario(seed=7))
        tr = result.trace
        assert tr.column("radar_fresh").sum() > 100
        assert tr.column("lead_present").all()
        mid = tr.window(10.0, 12.0)
        # Reported range tracks the true gap within noise.
        err = np.abs(mid.column("radar_range") - mid.column("gap_true"))
        assert float(np.median(err)) < 0.5

    def test_no_lead_means_no_radar_channels(self, nominal_run):
        tr = nominal_run.trace
        assert not tr.column("lead_present").any()
        assert not tr.column("radar_fresh").any()

    def test_blind_attack_erodes_gap(self):
        result = run_scenario(
            acc_scenario(seed=7),
            campaign=standard_attack("radar_blind", onset=15.0),
        )
        assert float(np.min(result.trace.column("gap_true"))) < 2.0

    def test_scale_attack_breaks_headway(self):
        result = run_scenario(
            acc_scenario(seed=7),
            campaign=standard_attack("radar_scale", onset=15.0),
        )
        tr = result.trace
        gap = tr.column("gap_true")
        v = tr.column("true_v")
        moving = v > 2.0
        assert float(np.min(gap[moving] / v[moving])) < 1.0

    def test_ghost_attack_increases_real_gap(self):
        nominal = run_scenario(acc_scenario(seed=7))
        ghosted = run_scenario(
            acc_scenario(seed=7),
            campaign=standard_attack("radar_ghost", onset=15.0),
        )
        t = nominal.trace.times()
        post = t > 20.0
        gap_nom = nominal.trace.column("gap_true")[post]
        gap_ghost = ghosted.trace.column("gap_true")[post]
        assert float(np.mean(gap_ghost)) > float(np.mean(gap_nom)) + 3.0
