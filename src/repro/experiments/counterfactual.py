"""Counterfactual root-cause isolation: delta-debug the diagnosis.

Knowledge-base pattern matching (:mod:`repro.core.diagnosis`) ranks
*hypotheses*; this module tests them.  Given a violating run, it
re-simulates counterfactuals — the injection removed, its window
bisected, its channels ablated, its magnitude minimized — to isolate the
smallest intervention that still flips the verdict, Zeller-style.  Two
properties the rest of the repo already paid for make this practical:

* **determinism** — every run is a pure function of its coordinates, so a
  counterfactual differs from the original *only* by the edit
  (``tests/test_counterfactual_exact.py`` pins this bit-for-bit under
  both the serial and the lockstep batch engine);
* **the content-addressed run cache** — probes are params-keyed through
  :class:`~repro.experiments.backend.ScoredResultStore`, so a repeated
  explanation re-simulates nothing, probes are shardable across any
  fleet that shares the cache directory, and every probe commits
  exactly once.

The search cores (:func:`ddmin_interval`, :func:`ddmin_subset`,
:func:`bisect_intensity`) are pure functions over a ``violates``
predicate, so they are property-tested without a simulator in the loop
(``tests/test_counterfactual.py``).  The driver, :func:`explain`,
composes them into a :class:`CausalReport`; the same probe machinery
backs :func:`counterfactual_tiebreak` (E4's escape hatch for ambiguous
rankings) and :func:`detect_separation_gap` (the automated half of the
paper's E9 refinement loop: flag cause pairs no counterfactual can
separate and propose the assertion signature that would).

Probe accounting is deliberately cache-independent: every probe —
memo hit, disk hit or fresh simulation — counts against the budget, so
an explanation is a deterministic function of its inputs; the cache only
changes how fast it converges (``adassure explain --stats`` shows the
hit split).  See ``docs/counterfactual.md`` for the full algorithm.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace

from repro.attacks.campaign import (
    ATTACK_CLASSES,
    AttackCampaign,
    campaign_classes,
    reparameterized_attack,
)
from repro.core.diagnosis import (
    DiagnosisResult,
    apply_tiebreak,
    diagnose,
)
from repro.core.knowledge import KnowledgeBase, default_knowledge_base
from repro.core.verdicts import CheckReport
from repro.experiments.stats import STATS, GridStats
from repro.faults.campaign import (
    FaultCampaign,
    fault_classes,
    reparameterized_fault,
)
from repro.sim.engine import RunResult, run_scenario
from repro.sim.scenario import Scenario, acc_scenario, standard_scenarios

__all__ = [
    "CausalReport",
    "Intervention",
    "IntensityResult",
    "IntervalResult",
    "ProbeBudgetExhausted",
    "ProbeEngine",
    "ProbeOutcome",
    "SeparationGap",
    "Subject",
    "SubsetResult",
    "TiebreakResult",
    "bisect_intensity",
    "counterfactual_tiebreak",
    "ddmin_interval",
    "ddmin_subset",
    "detect_separation_gap",
    "explain",
    "intensity_probe_tree",
    "interval_probe_tree",
    "probe_params",
    "subset_probe_tree",
]

PROBE_KIND = "counterfactual"
"""``params["kind"]`` discriminator for every probe cache entry."""

DEFAULT_BUDGET = 48
"""Default probe budget per explanation (every probe counts, cached or not)."""

DEFAULT_RESOLUTION = 0.5
"""Default window-bisection granularity, seconds."""

GAP_SEPARATION = 0.5
"""Candidate signatures closer than this (L1 over assertion strengths)
are considered counterfactually inseparable — the refinement-gap signal."""


class ProbeBudgetExhausted(RuntimeError):
    """A search hit its probe budget; the best result so far is returned
    with ``exhausted=True`` rather than raising to the caller."""


@dataclass(slots=True)
class _Budget:
    """Probe counter shared by the searches of one explanation."""

    limit: int
    used: int = 0

    @property
    def remaining(self) -> int:
        return max(self.limit - self.used, 0)

    def charge(self) -> None:
        if self.used >= self.limit:
            raise ProbeBudgetExhausted(
                f"probe budget of {self.limit} exhausted")
        self.used += 1


# ---------------------------------------------------------------------------
# Search cores: pure functions over a `violates` predicate.
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class IntervalResult:
    """Outcome of :func:`ddmin_interval` (integer step space)."""

    lo: int
    hi: int
    probes: int
    exhausted: bool

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def minimal(self) -> bool:
        """1-minimality was *verified* (the budget did not cut the search
        short): trimming one more unit off either end no longer violates."""
        return not self.exhausted


def ddmin_interval(violates, n: int, budget: int = 64,
                   prefetch=None) -> IntervalResult:
    """Shrink the violating interval ``[0, n)`` to a 1-minimal sub-interval.

    ``violates(lo, hi)`` must hold for ``(0, n)`` (the caller verifies it;
    it is never re-probed here).  Zeller-style delta debugging specialised
    to contiguous windows: greedily trim power-of-two-sized steps off the
    right, then the left, halving the step on failure until single-unit
    trims fail on both ends.

    ``prefetch``, when given, receives each round's full candidate set —
    the right-trim and left-trim windows this round may probe — *before*
    any verdict is inspected, so a batch engine can simulate the round as
    one lane group.  It charges no budget and must not affect verdicts:
    the serial probe order below is authoritative.

    Guarantees (the hypothesis suite pins each):

    * the returned interval always still violates — a non-monotone
      predicate cannot over-shrink it below a violating witness;
    * the interval only ever shrinks, so non-monotone streams cannot
      loop the search;
    * on normal exit the interval is 1-minimal;
    * at most ``budget`` probes are issued; on exhaustion the best
      violating interval found so far comes back with ``exhausted=True``.
    """
    if n < 1:
        raise ValueError("interval must span at least one unit")
    budget_ = _Budget(int(budget))
    lo, hi = 0, n
    exhausted = False

    def test(a: int, b: int) -> bool:
        budget_.charge()
        return bool(violates(a, b))

    step = 1
    while step * 2 < n:
        step *= 2
    try:
        while step >= 1:
            if prefetch is not None and hi - lo > step:
                prefetch(((lo, hi - step), (lo + step, hi)))
            if hi - lo > step and test(lo, hi - step):
                hi -= step
            elif hi - lo > step and test(lo + step, hi):
                lo += step
            else:
                step //= 2
    except ProbeBudgetExhausted:
        exhausted = True
    return IntervalResult(lo=lo, hi=hi, probes=budget_.used,
                          exhausted=exhausted)


@dataclass(frozen=True, slots=True)
class SubsetResult:
    """Outcome of :func:`ddmin_subset`."""

    kept: tuple
    probes: int
    exhausted: bool

    @property
    def minimal(self) -> bool:
        return not self.exhausted


def ddmin_subset(violates, items, budget: int = 64,
                 prefetch=None) -> SubsetResult:
    """1-minimal sufficient subset of ``items`` (order-preserving).

    ``violates(subset)`` must hold for the full tuple.  Fast path: probe
    each singleton — any violating singleton is immediately 1-minimal
    (the common case for independent attack channels).  Otherwise greedy
    leave-one-out elimination until no single removal still violates.
    Same budget contract as :func:`ddmin_interval`; ``prefetch``
    (optional, budget-free, verdict-neutral) receives each round's full
    candidate set — all singletons, then each sweep's leave-one-out
    complements — before any verdict is inspected.
    """
    items = tuple(items)
    if not items:
        raise ValueError("subset minimization needs at least one item")
    budget_ = _Budget(int(budget))
    kept = list(items)
    exhausted = False

    def test(subset) -> bool:
        budget_.charge()
        return bool(violates(tuple(subset)))

    try:
        if len(kept) > 1:
            if prefetch is not None:
                prefetch(tuple((item,) for item in items))
            for item in items:
                if test([item]):
                    kept = [item]
                    break
        changed = len(kept) > 1
        while changed and len(kept) > 1:
            changed = False
            if prefetch is not None:
                prefetch(tuple(
                    tuple(x for x in kept if x != item) for item in kept))
            for item in list(kept):
                candidate = [x for x in kept if x != item]
                if test(candidate):
                    kept = candidate
                    changed = True
                    break
    except ProbeBudgetExhausted:
        exhausted = True
    return SubsetResult(kept=tuple(kept), probes=budget_.used,
                        exhausted=exhausted)


@dataclass(frozen=True, slots=True)
class IntensityResult:
    """Outcome of :func:`bisect_intensity`."""

    minimal: float
    """Smallest probed magnitude that still violates."""
    lower: float
    """Largest probed magnitude that did not (the boundary sits between)."""
    probes: int
    exhausted: bool

    @property
    def boundary_width(self) -> float:
        return self.minimal - self.lower


def bisect_intensity(violates, hi: float, *, rel_resolution: float = 1 / 16,
                     budget: int = 64, prefetch=None) -> IntensityResult:
    """1-minimize the magnitude knob toward the verdict boundary.

    ``violates(hi)`` must hold.  Standard bisection keeping the upper end
    violating, down to a boundary bracket of ``hi * rel_resolution``.
    Magnitude-free interventions (freeze, blinding) simply converge to a
    near-zero minimal intensity — "violates at any magnitude".

    ``prefetch`` (optional, budget-free, verdict-neutral) receives each
    round's speculative candidate set before the verdict is inspected:
    the midpoint plus *both* next-level midpoints — ``0.5*(lo+mid)`` if
    the midpoint violates, ``0.5*(mid+hi)`` if it does not — exactly the
    float expressions the serial recursion would evaluate, so a batch
    engine can run the round one level deep without changing the
    returned boundary.
    """
    if hi <= 0:
        raise ValueError("intensity must be positive")
    budget_ = _Budget(int(budget))
    lo = 0.0
    resolution = hi * float(rel_resolution)
    exhausted = False
    try:
        while hi - lo > resolution:
            if prefetch is not None:
                mid = 0.5 * (lo + hi)
                if 0.5 * (hi - lo) > resolution:
                    prefetch((mid, 0.5 * (lo + mid), 0.5 * (mid + hi)))
                else:
                    # Final round: the next-level midpoints sit inside a
                    # bracket the loop will never re-enter — offering
                    # them would only buy wasted lanes.
                    prefetch((mid,))
            budget_.charge()
            mid = 0.5 * (lo + hi)
            if violates(mid):
                hi = mid
            else:
                lo = mid
    except ProbeBudgetExhausted:
        exhausted = True
    return IntensityResult(minimal=hi, lower=lo, probes=budget_.used,
                           exhausted=exhausted)


# ---------------------------------------------------------------------------
# Probe-tree enumeration: the searches' reachable probe sets, up front.
#
# Every probe the three searches can possibly issue is a pure function of
# the *input* configuration — the verdicts only select which ones get
# consumed.  Enumerating the reachable sets lets `explain()` push the
# whole probe tree through the batch engine as one speculative lane
# group before the serial searches start; the serial order then finds
# every probe already cached.  Unconsumed lanes are `speculative_wasted`.
# ---------------------------------------------------------------------------

def interval_probe_tree(n: int, limit: int = 64) -> tuple[tuple[int, int], ...]:
    """Every window :func:`ddmin_interval` can probe over ``[0, n)``.

    Breadth-first over the search's reachable states ``(lo, hi, step)``
    across *all* verdict branches (right trim, left trim, step halving),
    collecting the distinct candidate windows shallow-first — the probes
    the real search issues earliest come first, so a lane cap drops only
    the deep tail.
    """
    if n < 1:
        return ()
    step0 = 1
    while step0 * 2 < n:
        step0 *= 2
    windows: list[tuple[int, int]] = []
    seen_windows: set[tuple[int, int]] = set()
    seen_states = {(0, n, step0)}
    frontier = [(0, n, step0)]
    while frontier and len(windows) < limit:
        nxt = []
        for lo, hi, step in frontier:
            if hi - lo > step:
                for cand in ((lo, hi - step), (lo + step, hi)):
                    if cand not in seen_windows:
                        seen_windows.add(cand)
                        windows.append(cand)
                succs = ((lo, hi - step, step), (lo + step, hi, step),
                         (lo, hi, step // 2))
            else:
                succs = ((lo, hi, step // 2),)
            for state in succs:
                if state[2] >= 1 and state not in seen_states:
                    seen_states.add(state)
                    nxt.append(state)
        frontier = nxt
    return tuple(windows[:limit])


def subset_probe_tree(items, limit: int = 64) -> tuple[tuple, ...]:
    """Every proper non-empty ordered subset :func:`ddmin_subset` can
    probe: singletons first (the fast path), then leave-one-out-reachable
    subsets by descending size.  Empty beyond 6 items (the enumeration
    would dwarf the search it speculates for)."""
    items = tuple(items)
    k = len(items)
    if k <= 1 or k > 6:
        return ()
    import itertools
    out: list[tuple] = [(item,) for item in items]
    for size in range(k - 1, 1, -1):
        out.extend(itertools.combinations(items, size))
    return tuple(out[:limit])


def intensity_probe_tree(hi: float, rel_resolution: float = 1 / 16,
                         limit: int = 64) -> tuple[float, ...]:
    """Every midpoint :func:`bisect_intensity` can probe from ``hi``.

    The bisection's full binary bracket tree, each midpoint computed with
    the exact float expression (``0.5 * (lo + hi)`` along the bracket
    path) the serial search would use — bitwise-identical probe
    intensities, so prefetched lanes alias the serial probes' cache keys.
    """
    if hi <= 0:
        return ()
    resolution = float(hi) * float(rel_resolution)
    mids: list[float] = []
    seen: set[float] = set()
    frontier = [(0.0, float(hi))]
    while frontier and len(mids) < limit:
        nxt = []
        for lo, h in frontier:
            if h - lo > resolution:
                mid = 0.5 * (lo + h)
                if mid not in seen:
                    seen.add(mid)
                    mids.append(mid)
                nxt.append((lo, mid))
                nxt.append((mid, h))
        frontier = nxt
    return tuple(mids[:limit])


# ---------------------------------------------------------------------------
# Interventions and probes
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Intervention:
    """One (possibly edited) injection configuration for a probe.

    The unit the delta-debugger edits: attack/fault channel sets, a
    shared magnitude knob, and a shared injection window.  The *original*
    intervention reconstructs the violating run's campaigns
    object-for-object; edits derive siblings via :meth:`with_window`,
    :meth:`with_channels` and :meth:`with_intensity`.
    """

    attacks: tuple[str, ...] = ()
    faults: tuple[str, ...] = ()
    intensity: float = 1.0
    onset: float = 15.0
    end: float = math.inf

    @staticmethod
    def from_labels(attack: str = "none", fault: str = "none",
                    intensity: float = 1.0, onset: float = 15.0,
                    end: float = math.inf) -> "Intervention":
        """Decode ``+``-joined campaign labels into an intervention."""
        return Intervention(
            attacks=campaign_classes(attack),
            faults=fault_classes(fault),
            intensity=float(intensity),
            onset=float(onset),
            end=float(end),
        )

    @property
    def empty(self) -> bool:
        return not self.attacks and not self.faults

    @property
    def label(self) -> str:
        parts = list(self.attacks) + list(self.faults)
        return "+".join(parts) if parts else "none"

    @property
    def channels(self) -> tuple[tuple[str, str], ...]:
        """Ablatable units as ``(kind, class)`` pairs."""
        return tuple(("attack", cls) for cls in self.attacks) + tuple(
            ("fault", cls) for cls in self.faults)

    def removed(self) -> "Intervention":
        return replace(self, attacks=(), faults=())

    def with_window(self, onset: float, end: float) -> "Intervention":
        return replace(self, onset=float(onset), end=float(end))

    def with_intensity(self, intensity: float) -> "Intervention":
        return replace(self, intensity=float(intensity))

    def with_channels(self, channels) -> "Intervention":
        """Keep only the given ``(kind, class)`` pairs (order preserved)."""
        keep = set(channels)
        return replace(
            self,
            attacks=tuple(c for c in self.attacks if ("attack", c) in keep),
            faults=tuple(c for c in self.faults if ("fault", c) in keep),
        )

    def edit_dict(self) -> dict:
        """Canonical JSON description — the probe cache-key component.

        Every field rides in the key, so an *edited* intervention can
        never alias the original entry or a sibling edit (the
        key-collision regression in ``tests/test_counterfactual.py``
        pins this).  An unbounded window serialises as ``None`` (JSON
        has no infinity).
        """
        return {
            "attacks": list(self.attacks),
            "faults": list(self.faults),
            "intensity": float(self.intensity),
            "onset": float(self.onset),
            "end": None if math.isinf(self.end) else float(self.end),
        }

    def campaigns(self) -> tuple[AttackCampaign, FaultCampaign]:
        """Instantiate the attack and fault campaigns for this probe."""
        attack = reparameterized_attack(
            "+".join(self.attacks) if self.attacks else "none",
            intensity=self.intensity, onset=self.onset, end=self.end)
        fault = reparameterized_fault(
            "+".join(self.faults) if self.faults else "none",
            intensity=self.intensity, onset=self.onset, end=self.end)
        return attack, fault


@dataclass(frozen=True, slots=True)
class Subject:
    """The run under explanation: everything probes share with it.

    ``gate``/``defect`` extend the subject beyond the cartesian grid to
    the off-grid E10/E13 configurations: an innovation-gated estimator
    (``EkfConfig(gate_nis=gate)``) and a deliberately defective lateral
    controller (``DefectiveController(make_defect(defect,
    **dict(defect_args)))``), so ``adassure explain`` can reproduce any
    planner-recorded run, not just grid points.
    """

    scenario: str
    controller: str
    seed: int
    duration: float | None = None
    gate: float | None = None
    defect: str | None = None
    defect_args: tuple = ()
    """Defect constructor kwargs as a hashable ``((key, value), ...)``."""

    def ekf_config(self):
        """The estimator override probes must share with the subject."""
        if self.gate is None:
            return None
        from repro.control.estimator import EkfConfig
        return EkfConfig(gate_nis=self.gate)

    def build_follower(self, scenario: Scenario):
        """The follower exactly as ``run_scenario`` (or, under
        ``defect``, the E13 harness) constructs it."""
        from repro.control.acc import AccController
        from repro.control.base import make_lateral_controller
        from repro.control.follower import SpeedProfile, WaypointFollower
        lateral = make_lateral_controller(self.controller)
        if self.defect:
            from repro.control.defects import DefectiveController, make_defect
            lateral = DefectiveController(
                lateral, make_defect(self.defect, **dict(self.defect_args)))
        return WaypointFollower(
            lateral,
            profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
            acc=AccController() if scenario.lead is not None else None,
        )

    def build_scenario(self) -> Scenario:
        """Reconstruct the scenario exactly as the grid runner does."""
        if self.scenario == "acc_follow":
            scenario = acc_scenario(seed=self.seed)
            if self.duration is not None:
                import dataclasses
                scenario = dataclasses.replace(scenario,
                                               duration=self.duration)
            return scenario
        scenarios = standard_scenarios(seed=self.seed, duration=self.duration)
        if self.scenario not in scenarios:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"expected one of {sorted(scenarios)} or 'acc_follow'")
        return scenarios[self.scenario]


def probe_params(subject: Subject, intervention: Intervention) -> dict:
    """The :class:`~repro.experiments.backend.ScoredResultStore` params
    dict for one probe: subject coordinates plus the *full* intervention
    edit, so a modified intervention never aliases the original grid
    entry (different key space entirely) or any sibling probe.  The
    off-grid subject extensions (``gate``, ``defect``) join the key only
    when set, so plain grid subjects keep their established key space."""
    params = {
        "kind": PROBE_KIND,
        "scenario": subject.scenario,
        "controller": subject.controller,
        "seed": int(subject.seed),
        "duration": None if subject.duration is None
        else float(subject.duration),
        "edit": intervention.edit_dict(),
    }
    if subject.gate is not None:
        params["gate"] = float(subject.gate)
    if subject.defect:
        params["defect"] = subject.defect
        params["defect_args"] = [[k, v] for k, v in subject.defect_args]
    return params


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """One probe's verdict relative to the baseline violation signature."""

    violated: bool
    """True when the probe re-fires any of the baseline's fired assertions
    (or, for the baseline probe itself, fires anything at all)."""
    fired: tuple[str, ...]
    evidence: dict[str, float]
    margins: dict[str, float]
    """Worst normalized margin per assertion (negative = violated)."""
    report: CheckReport
    result: RunResult
    source: str
    """``"memo"`` / ``"disk"`` (cache layers) or ``"sim"`` (fresh run)."""


class ProbeEngine:
    """Executes counterfactual probes with budget and cache accounting.

    Every probe — cached or fresh — counts against the budget, so the
    explanation a given budget produces is deterministic regardless of
    cache temperature.  All execution funnels through the params-keyed
    :class:`~repro.experiments.backend.ScoredResultStore`
    (:func:`~repro.experiments.runner.scored_store`), which is what makes
    probes cached, shardable and exactly-once; per-probe memo/disk hits
    accumulate into one :class:`~repro.experiments.stats.GridStats`
    record (visible via ``--stats``).
    """

    def __init__(self, subject: Subject, budget: int = DEFAULT_BUDGET,
                 sim_engine: str | None = None):
        from repro.experiments.runner import choose_sim_engine, scored_store
        self.subject = subject
        self.budget = _Budget(int(budget))
        # Speculative prefetch always offers >= 2 candidate lanes, so the
        # auto choice here is batch-unless-opted-out (ADASSURE_SIM=serial).
        self.sim_engine, engine_reason = choose_sim_engine(sim_engine, 2)
        self.store = scored_store()
        self.baseline_fired: frozenset[str] = frozenset()
        self.flipped = 0
        self.stats = GridStats(workers=1)
        self.stats.sim_engine = self.sim_engine
        self.stats.sim_engine_reason = engine_reason
        self._speculative: dict[str, RunResult] = {}
        """Prefetched-and-simulated lanes (canonical params -> raw
        :class:`RunResult`) not yet consumed by :meth:`outcome` —
        ``speculative_wasted`` is its size.  Lanes are held raw: the
        assertion check and the store commit are deferred until a search
        actually asks for the probe, so wasted lanes cost only their
        share of the lockstep batch, never a check or a disk write."""
        self.speculate = True
        """Master switch for :meth:`prefetch`.  :func:`explain` turns it
        off on a warm store (the original probe already resolves): the
        searches then replay a previously-consumed probe sequence
        entirely from cache, and speculation would only re-simulate the
        prior pass's wasted lanes — which, held raw, were deliberately
        never committed."""

    @property
    def remaining(self) -> int:
        return self.budget.remaining

    @property
    def probes(self) -> int:
        return self.budget.used

    # -- execution ------------------------------------------------------
    def _simulate(self, intervention: Intervention) -> RunResult:
        scenario = self.subject.build_scenario()
        attack, faults = intervention.campaigns()
        if self.subject.defect:
            # `run_scenario` cannot express a defective controller; build
            # the follower the way the E13 harness does.
            from repro.sim.engine import SimulationRunner
            follower = self.subject.build_follower(scenario)
            return SimulationRunner(scenario, follower, attack,
                                    self.subject.ekf_config(),
                                    faults=faults).run()
        return run_scenario(scenario, controller=self.subject.controller,
                            campaign=attack, faults=faults,
                            ekf_config=self.subject.ekf_config())

    def _resolve_or_run(self, intervention: Intervention):
        import time

        from repro.core.checker import check_trace
        params = probe_params(self.subject, intervention)
        canon = self.store.canonical(params)
        spec = self._speculative.pop(canon, None)
        if spec is not None:
            # Consume a speculative lane: it was simulated in a prefetch
            # batch but the check and commit were deferred to here so
            # that wasted lanes never pay them.  `executed` was already
            # counted at prefetch time; this is a memo hit.
            t1 = time.perf_counter()
            report = check_trace(spec.trace)
            t2 = time.perf_counter()
            self.store.commit(params, (spec, report))
            self.stats.memo_hits += 1
            self.stats.speculative_wasted = len(self._speculative)
            self.stats.phase_time["check"] += t2 - t1
            return spec, report, "memo"
        hit = self.store.resolve(params)
        if hit is not None:
            (result, report), source = hit
            if source == "memo":
                self.stats.memo_hits += 1
            else:
                self.stats.disk_hits += 1
            return result, report, source
        t0 = time.perf_counter()
        result = self._simulate(intervention)
        t1 = time.perf_counter()
        report = check_trace(result.trace)
        t2 = time.perf_counter()
        self.store.commit(params, (result, report))
        self.stats.executed += 1
        self.stats.phase_time["simulate"] += t1 - t0
        self.stats.phase_time["check"] += t2 - t1
        return result, report, "sim"

    def prefetch(self, interventions) -> int:
        """Batch-simulate uncached probes through the lockstep engine.

        Only active with ``sim_engine="batch"``; an optimization, not a
        semantic: results are bit-identical to the serial path (the
        differential suite pins this), so prefetching never changes an
        explanation — and it charges no budget (the later
        :meth:`outcome` calls do).  Returns the number of lanes batched.
        Any engine rejection falls back silently to per-probe serial
        simulation.
        """
        if not self.speculate or self.sim_engine != "batch":
            return 0
        from repro.sim.batch import LaneSpec, run_batch
        pending: list[tuple[dict, str, Intervention]] = []
        seen: set[str] = set()
        for intervention in interventions:
            params = probe_params(self.subject, intervention)
            canon = self.store.canonical(params)
            if canon in seen or canon in self._speculative:
                continue
            seen.add(canon)
            if self.store.resolve(params) is None:
                pending.append((params, canon, intervention))
        if not pending:
            return 0
        scenario = self.subject.build_scenario()
        ekf_config = self.subject.ekf_config()
        specs = []
        for _, _, intervention in pending:
            attack, faults = intervention.campaigns()
            specs.append(LaneSpec(scenario=scenario,
                                  follower=self.subject.build_follower(
                                      scenario),
                                  campaign=attack, ekf_config=ekf_config,
                                  faults=faults))
        from repro.sim.batch.controllers import dare_memo_counters
        dare0 = dare_memo_counters()
        try:
            results = run_batch(specs)
        except Exception:
            self.stats.batch_fallbacks += 1
            return 0
        dare1 = dare_memo_counters()
        self.stats.dare_memo_hits += dare1["hits"] - dare0["hits"]
        self.stats.dare_memo_solves += dare1["solves"] - dare0["solves"]
        for (_, canon, _), result in zip(pending, results):
            # Held raw: check + commit happen lazily in _resolve_or_run
            # iff a search consumes the lane.
            self._speculative[canon] = result
        self.stats.batch_groups += 1
        self.stats.batch_points += len(pending)
        self.stats.executed += len(pending)
        self.stats.speculative_issued += len(pending)
        self.stats.speculative_wasted = len(self._speculative)
        return len(pending)

    def outcome(self, intervention: Intervention) -> ProbeOutcome:
        """Run one probe (budget-charged) and score it against the
        baseline violation signature."""
        self.budget.charge()
        result, report, source = self._resolve_or_run(intervention)
        fired = tuple(report.fired_ids)
        if self.baseline_fired:
            violated = bool(self.baseline_fired & set(fired))
        else:
            violated = report.any_fired
        if not violated:
            self.flipped += 1
        margins = {aid: s.worst_margin
                   for aid, s in report.summaries.items()}
        return ProbeOutcome(violated=violated, fired=fired,
                            evidence=report.evidence(), margins=margins,
                            report=report, result=result, source=source)

    def violates(self, intervention: Intervention) -> bool:
        return self.outcome(intervention).violated

    def record_stats(self) -> None:
        """Report this engine's accumulated counters into
        :data:`~repro.experiments.stats.STATS` (one record per
        explanation, like one ``run_grid`` call)."""
        self.stats.grid_points = self.probes
        STATS.record(self.stats)


# ---------------------------------------------------------------------------
# Hypothesis testing: tie-break + separation-gap detection
# ---------------------------------------------------------------------------

def evidence_distance(a: dict[str, float], b: dict[str, float]) -> float:
    """L1 distance between two assertion-strength signatures."""
    keys = set(a) | set(b)
    return float(sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys))


@dataclass(frozen=True, slots=True)
class TiebreakResult:
    """Outcome of counterfactually re-ranking an ambiguous diagnosis."""

    candidates: tuple[str, ...]
    """Probed causes, in original ranking order."""
    distances: dict[str, float]
    """Per-candidate L1 distance between the observed signature and the
    signature the candidate actually produces when re-simulated."""
    diagnosis: DiagnosisResult
    """The re-ranked diagnosis (head re-ordered by distance)."""

    @property
    def chosen(self) -> str:
        return self.diagnosis.top().cause


@dataclass(frozen=True, slots=True)
class SeparationGap:
    """A cause pair no counterfactual separates under the current catalog.

    The automated version of the paper's refinement trigger: when the
    top candidates' *re-simulated* signatures are nearly identical, no
    amount of probing can tell them apart — the assertion catalog lacks
    a separating assertion.  ``proposed`` names the assertion signature
    that would separate them (from the knowledge-base profiles where the
    causes differ most, falling back to a channel-consistency
    suggestion); E9's gap-proposal addendum surfaces these.
    """

    causes: tuple[str, str]
    separation: float
    """L1 distance between the two candidates' simulated signatures."""
    distances: dict[str, float]
    """Each candidate's distance to the *observed* signature."""
    proposed: tuple[str, ...]
    """Assertion ids (or a new-assertion suggestion) that would separate."""

    @property
    def separable(self) -> bool:
        return self.separation >= GAP_SEPARATION


def _propose_separators(cause_a: str, cause_b: str,
                        signatures: dict[str, dict[str, float]],
                        kb: KnowledgeBase) -> tuple[str, ...]:
    """Assertion ids that would separate two confusable causes.

    Preference order: assertions whose *simulated* strengths differ most
    (real separators if any simulation disagreement exists at all), then
    knowledge-base profile entries with the largest fire-probability gap,
    then — when both are flat — a suggestion to author a new cross-channel
    consistency assertion."""
    sim_a, sim_b = signatures.get(cause_a, {}), signatures.get(cause_b, {})
    diffs = sorted(
        ((abs(sim_a.get(k, 0.0) - sim_b.get(k, 0.0)), k)
         for k in set(sim_a) | set(sim_b)),
        reverse=True,
    )
    proposed = [k for d, k in diffs[:3] if d >= 0.05]
    if proposed:
        return tuple(proposed)
    try:
        prof_a, prof_b = kb.profile(cause_a), kb.profile(cause_b)
    except KeyError:
        prof_a = prof_b = None
    if prof_a is not None and prof_b is not None:
        keys = set(prof_a.fire_probs) | set(prof_b.fire_probs)
        gaps = sorted(((abs(prof_a.prob(k) - prof_b.prob(k)), k)
                       for k in keys), reverse=True)
        proposed = [k for g, k in gaps[:3] if g >= 0.25]
        if proposed:
            return tuple(proposed)
    chan_a = cause_a.split("_", 1)[0]
    chan_b = cause_b.split("_", 1)[0]
    return (f"new: {chan_a}-vs-{chan_b} cross-channel consistency",)


def detect_separation_gap(engine: ProbeEngine, observed: dict[str, float],
                          candidates, base: Intervention,
                          kb: KnowledgeBase | None = None,
                          ) -> tuple[dict[str, dict[str, float]],
                                     dict[str, float], SeparationGap | None]:
    """Simulate each candidate cause and measure whether anything separates.

    For every candidate attack class, probes the *hypothesis* "this cause
    alone, at the observed window and magnitude" and collects its
    signature.  Returns the signatures, each candidate's distance to the
    observed signature, and a :class:`SeparationGap` when the top two
    candidates' simulated signatures are closer than
    :data:`GAP_SEPARATION` (else ``None``).
    """
    kb = kb or default_knowledge_base()
    candidates = [c for c in candidates if c in ATTACK_CLASSES]
    hypotheses = {
        cause: Intervention(attacks=(cause,), intensity=base.intensity,
                            onset=base.onset, end=base.end)
        for cause in candidates
    }
    engine.prefetch(hypotheses.values())
    signatures: dict[str, dict[str, float]] = {}
    distances: dict[str, float] = {}
    for cause, hypothesis in hypotheses.items():
        if engine.remaining <= 0:
            break
        out = engine.outcome(hypothesis)
        signatures[cause] = out.evidence
        distances[cause] = evidence_distance(observed, out.evidence)
    gap = None
    probed = [c for c in candidates if c in signatures]
    if len(probed) >= 2:
        a, b = probed[0], probed[1]
        separation = evidence_distance(signatures[a], signatures[b])
        if separation < GAP_SEPARATION:
            gap = SeparationGap(
                causes=(a, b), separation=separation,
                distances={a: distances[a], b: distances[b]},
                proposed=_propose_separators(a, b, signatures, kb),
            )
    return signatures, distances, gap


def counterfactual_tiebreak(run, onset: float | None = None,
                            duration: float | None = None,
                            kb: KnowledgeBase | None = None,
                            top_k: int = 2, budget: int = 12,
                            sim_engine: str | None = None,
                            ) -> tuple[DiagnosisResult, SeparationGap | None]:
    """Counterfactually re-rank an ambiguous grid run's diagnosis.

    E4's escape hatch: when the knowledge-base ranking is not
    :attr:`~repro.core.diagnosis.DiagnosisResult.confident`, re-simulate
    each head candidate as a hypothesis and prefer the one whose actual
    signature lies closest to the observed evidence
    (:func:`~repro.core.diagnosis.apply_tiebreak`).  Returns the
    (possibly re-ranked) diagnosis plus a :class:`SeparationGap` when no
    counterfactual separates the candidates.

    Args:
        run: a :class:`~repro.experiments.runner.GridRun`.
        onset: injection onset; defaults to the trace's recorded
            ground-truth onset.
        duration: the grid's duration override, if any (must match the
            original run for probes to share its configuration).
    """
    diagnosis = run.diagnosis
    if not diagnosis.ambiguous:
        return diagnosis, None
    if onset is None:
        onset = run.result.trace.attack_onset()
    if onset is None:
        return diagnosis, None
    subject = Subject(scenario=run.scenario, controller=run.controller,
                      seed=run.seed, duration=duration)
    base = Intervention(attacks=campaign_classes(run.attack),
                        intensity=run.intensity, onset=float(onset))
    engine = ProbeEngine(subject, budget=budget, sim_engine=sim_engine)
    engine.baseline_fired = frozenset(
        s.assertion_id for s in run.report.summaries.values() if s.fired)
    candidates = [d.cause for d in diagnosis.ranking[:top_k]]
    try:
        _, distances, gap = detect_separation_gap(
            engine, run.report.evidence(), candidates, base, kb=kb)
    finally:
        engine.record_stats()
    return apply_tiebreak(diagnosis, distances), gap


# ---------------------------------------------------------------------------
# The explain driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class WindowSummary:
    """Minimal violating injection window, in seconds."""

    start: float
    end: float
    original_start: float
    original_end: float
    resolution: float
    probes: int
    minimal: bool

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class ChannelSummary:
    """Minimal sufficient channel set of a composed intervention."""

    kept: tuple[tuple[str, str], ...]
    dropped: tuple[tuple[str, str], ...]
    probes: int
    minimal: bool


@dataclass(frozen=True, slots=True)
class MagnitudeSummary:
    """Minimal violating magnitude (verdict-boundary bracket)."""

    minimal: float
    lower: float
    original: float
    probes: int
    exhausted: bool


@dataclass(slots=True)
class CausalReport:
    """Ranked causal explanation of one violating run.

    The deliverable of :func:`explain`: the smallest intervention that
    still flips the verdict, per-assertion margin deltas between the
    violating run and its attack-free counterfactual, and a confidence
    derived from how many probes actually flipped the verdict (each flip
    is an independent confirmation that the boundary is where the report
    says it is: confidence = 1 − 2^−flips, and 0 whenever necessity
    itself failed).
    """

    subject: Subject
    intervention: Intervention
    violated: bool
    fired: tuple[str, ...] = ()
    background: tuple[str, ...] = ()
    """Assertions that fire even with the intervention removed (scenario
    noise, e.g. truncation tripping a liveness check) — excluded from the
    signature under explanation."""
    necessary: bool = False
    """Removing the intervention clears every *attributable* violation
    (fired minus background)."""
    minimal: Intervention | None = None
    """The composed minimal intervention (window ∧ channels ∧ magnitude)."""
    minimal_verified: bool = False
    """The composed minimal intervention was re-probed and still violates."""
    window: WindowSummary | None = None
    channels: ChannelSummary | None = None
    magnitude: MagnitudeSummary | None = None
    margin_deltas: dict[str, tuple[float, float]] = field(default_factory=dict)
    """assertion id -> (margin with intervention, margin without)."""
    diagnosis: DiagnosisResult | None = None
    tiebreak: TiebreakResult | None = None
    gap: SeparationGap | None = None
    probes: int = 0
    flipped: int = 0
    budget: int = DEFAULT_BUDGET
    budget_exhausted: bool = False

    @property
    def confidence(self) -> float:
        if not self.necessary:
            return 0.0
        return 1.0 - 0.5 ** self.flipped

    @property
    def isolated(self) -> bool:
        """A minimal intervention was isolated and verified: necessity
        confirmed, and every search that ran completed within budget."""
        if not (self.violated and self.necessary):
            return False
        for search in (self.window, self.channels):
            if search is not None and not search.minimal:
                return False
        if self.magnitude is not None and self.magnitude.exhausted:
            return False
        if self.minimal is not None and not self.minimal_verified:
            return False
        return True

    def render(self) -> str:
        from repro.core.report import render_causal_report
        return render_causal_report(self)


def explain(
    scenario: str,
    controller: str,
    attack: str = "none",
    fault: str = "none",
    intensity: float = 1.0,
    onset: float = 15.0,
    seed: int = 7,
    duration: float | None = None,
    budget: int = DEFAULT_BUDGET,
    resolution: float = DEFAULT_RESOLUTION,
    sim_engine: str | None = None,
    kb: KnowledgeBase | None = None,
    gate: float | None = None,
    defect: str | None = None,
    defect_args: dict | None = None,
) -> CausalReport:
    """Counterfactually isolate the minimal intervention behind a run.

    The four searches, in order (each only spends budget the previous
    ones left):

    (a) **necessity** — re-simulate with the intervention removed; the
        explanation is causal only if that clears the violation;
    (b) **window** — ddmin the injection window to a 1-minimal violating
        interval at ``resolution``-second granularity;
    (c) **channels** — ablate composed attack/fault channel sets to the
        minimal sufficient subset;
    (d) **magnitude** — bisect the intensity knob to the verdict boundary.

    The composed minimal intervention is then re-probed once to verify
    the axes compose.  When the diagnosis of the violating run is
    ambiguous, the hypothesis tester re-ranks its head and looks for a
    separation gap (see :func:`counterfactual_tiebreak`).

    All probes run through the shared result store; `budget` counts every
    probe, cached or not, so the report is cache-independent.

    ``gate``/``defect``/``defect_args`` extend the subject with the
    off-grid knobs of the E10/E13 extensions (an NIS-gated estimator, an
    injected controller defect), so cache keys resolved from those
    sweeps can be explained too.
    """
    subject = Subject(scenario=scenario, controller=controller,
                      seed=int(seed), duration=duration, gate=gate,
                      defect=defect,
                      defect_args=tuple(sorted((defect_args or {}).items())))
    original = Intervention.from_labels(attack, fault, intensity=intensity,
                                        onset=onset)
    engine = ProbeEngine(subject, budget=budget, sim_engine=sim_engine)
    report = CausalReport(subject=subject, intervention=original,
                          violated=False, budget=budget)
    try:
        scenario_obj = subject.build_scenario()
        end_eff = min(original.end, scenario_obj.duration)
        span = end_eff - original.onset
        n = max(int(math.ceil(span / resolution - 1e-9)), 1)

        def window_time(i: int) -> float:
            # The last cell absorbs the sub-resolution remainder.
            return end_eff if i >= n else original.onset + i * resolution

        # Round zero: push the baseline, the clean counterfactual and
        # the searches' reachable probe trees through the batch engine
        # as one speculative lane group — before the first verdict is
        # even inspected.  Every candidate is a pure function of the
        # inputs — the verdicts only choose which get consumed — so the
        # serial searches below then find (nearly) everything already
        # simulated and the explanation costs one batch instead of N
        # serial simulations.  Serial order, budget and verdicts are
        # untouched; unconsumed lanes show up as `speculative_wasted`
        # in --stats and are never checked or committed (the marginal
        # cost of a wasted lane is its slice of the lockstep batch).
        # The interval tree is capped shallow here: the per-round
        # prefetch hooks below re-offer exactly the candidates each
        # ddmin round can reach, so the deep tail is never lost, just
        # deferred.  A no-op on the serial engine or when the original
        # intervention is empty (nothing to explain, nothing to batch).
        # A warm store (the original probe already resolves) also turns
        # speculation off for the whole explanation: the searches below
        # replay a prior pass's consumed-probe sequence from cache, and
        # prefetch would only re-simulate that pass's wasted lanes —
        # held raw and never committed, by design.
        if not original.empty and engine.store.resolve(
                probe_params(subject, original)) is not None:
            engine.speculate = False
        if not original.empty and engine.speculate:
            speculative: list[Intervention] = [original, original.removed()]
            if span > 0:
                speculative.extend(
                    original.with_window(window_time(a), window_time(b))
                    for a, b in interval_probe_tree(n, limit=16))
            speculative.extend(
                original.with_channels(subset)
                for subset in subset_probe_tree(original.channels))
            speculative.extend(
                original.with_intensity(mid)
                for mid in intensity_probe_tree(original.intensity))
            engine.prefetch(speculative)

        base = engine.outcome(original)
        report.fired = base.fired
        report.violated = bool(base.fired)
        report.diagnosis = diagnose(base.report, kb)
        if not report.violated or original.empty:
            return report
        engine.baseline_fired = frozenset(base.fired)

        # (a) necessity + margin deltas against the clean counterfactual.
        # Assertions that fire even with the intervention removed are
        # *background* (e.g. a truncated scenario tripping a liveness
        # check) — they are subtracted from the signature under
        # explanation, and every later probe is scored against the
        # attributable remainder only.
        clean = engine.outcome(original.removed())
        background = frozenset(base.fired) & frozenset(clean.fired)
        attributable = frozenset(base.fired) - background
        report.background = tuple(
            aid for aid in base.fired if aid in background)
        report.necessary = bool(attributable)
        engine.baseline_fired = attributable
        if attributable and clean.violated:
            # The clean probe was scored against the full baseline (the
            # attributable set did not exist yet); it did clear the
            # attributable signature, so it counts as a flip.
            engine.flipped += 1
        report.margin_deltas = {
            aid: (base.margins.get(aid, 0.0), clean.margins.get(aid, 0.0))
            for aid in base.fired if aid in attributable
        }
        if not report.necessary:
            return report

        # (b) window ddmin over [onset, end_eff) at `resolution` steps.
        window_res = None
        if span > 0 and engine.remaining > 0:

            def window_violates(a: int, b: int) -> bool:
                return engine.violates(
                    original.with_window(window_time(a), window_time(b)))

            def window_prefetch(cands) -> None:
                engine.prefetch(
                    original.with_window(window_time(a), window_time(b))
                    for a, b in cands)

            window_res = ddmin_interval(window_violates, n, budget=10 ** 9,
                                        prefetch=window_prefetch)
            report.window = WindowSummary(
                start=window_time(window_res.lo),
                end=window_time(window_res.hi),
                original_start=original.onset,
                original_end=end_eff,
                resolution=resolution,
                probes=window_res.probes,
                minimal=window_res.minimal,
            )

        # (c) channel ablation for composed interventions.
        channel_res = None
        parts = original.channels
        if len(parts) > 1 and engine.remaining > 0:

            def subset_violates(subset) -> bool:
                return engine.violates(original.with_channels(subset))

            def subset_prefetch(cands) -> None:
                engine.prefetch(original.with_channels(subset)
                                for subset in cands)

            channel_res = ddmin_subset(subset_violates, parts, budget=10 ** 9,
                                       prefetch=subset_prefetch)
            report.channels = ChannelSummary(
                kept=channel_res.kept,
                dropped=tuple(p for p in parts if p not in channel_res.kept),
                probes=channel_res.probes,
                minimal=channel_res.minimal,
            )

        # (d) magnitude 1-minimization toward the verdict boundary.
        magnitude_res = None
        if engine.remaining > 0:

            def intensity_violates(x: float) -> bool:
                return engine.violates(original.with_intensity(x))

            def intensity_prefetch(mids) -> None:
                engine.prefetch(original.with_intensity(m) for m in mids)

            magnitude_res = bisect_intensity(
                intensity_violates, original.intensity, budget=10 ** 9,
                prefetch=intensity_prefetch)
            report.magnitude = MagnitudeSummary(
                minimal=magnitude_res.minimal,
                lower=magnitude_res.lower,
                original=original.intensity,
                probes=magnitude_res.probes,
                exhausted=magnitude_res.exhausted,
            )

        # Compose the minimal intervention and verify the axes compose.
        minimal = original
        if channel_res is not None:
            minimal = minimal.with_channels(channel_res.kept)
        if window_res is not None and report.window is not None:
            minimal = minimal.with_window(report.window.start,
                                          report.window.end)
        if magnitude_res is not None and not magnitude_res.exhausted:
            minimal = minimal.with_intensity(magnitude_res.minimal)
        report.minimal = minimal

        # Tail round: the two probe sites the round-zero trees cannot
        # enumerate — the composed-minimal verification (plus its
        # window-only fallback) and the separation-gap hypotheses —
        # are exactly knowable here, so batch them as one last lane
        # group before the serial code below consumes them.  The
        # hypothesis construction mirrors detect_separation_gap.
        tail: list[Intervention] = []
        if minimal != original and engine.remaining > 0:
            tail.append(minimal)
            if window_res is not None and report.window is not None:
                fb = original.with_window(report.window.start,
                                          report.window.end)
                if fb != original:
                    tail.append(fb)
        if (report.diagnosis is not None and report.diagnosis.ambiguous
                and engine.remaining >= 2):
            tail.extend(
                Intervention(attacks=(c,), intensity=original.intensity,
                             onset=original.onset, end=original.end)
                for c in (d.cause for d in report.diagnosis.ranking[:2])
                if c in ATTACK_CLASSES)
        if tail:
            engine.prefetch(tail)

        if minimal == original:
            report.minimal_verified = True
        elif engine.remaining > 0:
            verify = engine.outcome(minimal)
            report.minimal_verified = verify.violated
            if not verify.violated:
                # Non-monotone interaction: the per-axis minima do not
                # compose.  Fall back to the least aggressive composition
                # (window-only) — still a true minimal-window statement.
                fallback = original
                if window_res is not None and report.window is not None:
                    fallback = original.with_window(report.window.start,
                                                    report.window.end)
                report.minimal = fallback
                if engine.remaining > 0 and fallback != original:
                    report.minimal_verified = engine.violates(fallback)

        # Hypothesis testing when the diagnosis stays ambiguous.
        if (report.diagnosis is not None and report.diagnosis.ambiguous
                and engine.remaining >= 2):
            candidates = [d.cause for d in report.diagnosis.ranking[:2]]
            _, distances, gap = detect_separation_gap(
                engine, base.evidence, candidates, original, kb=kb)
            if distances:
                report.tiebreak = TiebreakResult(
                    candidates=tuple(c for c in candidates
                                     if c in distances),
                    distances=distances,
                    diagnosis=apply_tiebreak(report.diagnosis, distances),
                )
            report.gap = gap
        return report
    finally:
        report.probes = engine.probes
        report.flipped = engine.flipped
        report.budget_exhausted = engine.remaining <= 0
        engine.record_stats()


_CACHE_KEY_RE = re.compile(r"^[0-9a-f]{40}$")


def resolve_cache_key(key: str):
    """Map a 40-hex run-cache key back to an explainable run, if known.

    Grid entries: scans the cache's checkpoint manifests (each records
    the full point list of a campaign) and returns the first *grid
    point tuple* whose :func:`~repro.experiments.cache.cache_key`
    matches.  Off-grid entries (``run_scored`` / planner configurations
    — the E10–E13 sweeps): falls back to the cache's params ledger
    (:meth:`~repro.experiments.cache.RunCache.load_params`) and returns
    a *dict of keyword arguments* for :func:`explain`.  Returns ``None``
    when neither side knows the key.
    """
    if not _CACHE_KEY_RE.match(key):
        raise ValueError(f"{key!r} is not a 40-hex cache key")
    import json

    from repro.experiments.cache import RunCache, cache_key
    cache = RunCache.from_env()
    if cache is None:
        return None
    checkpoint_dir = cache.root / "checkpoints"
    if checkpoint_dir.is_dir():
        for manifest_path in sorted(checkpoint_dir.glob("*.json")):
            try:
                data = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            for entry in data.get("completed", []):
                point = tuple(entry)
                try:
                    if cache_key(*point) == key:
                        return point
                except (TypeError, ValueError):
                    continue
    params = cache.load_params(key)
    if params is not None:
        return _explain_kwargs(params)
    return None


def _explain_kwargs(params: dict) -> dict | None:
    """Translate a params-ledger entry into :func:`explain` kwargs.

    One branch per off-grid params ``kind`` (the E10–E13 sweeps and the
    probe fleet itself); unknown kinds return ``None`` — better to make
    the caller pass flags than to explain the wrong run.
    """
    kind = params.get("kind")
    if kind == "mitigation":  # E10
        kwargs = {
            "scenario": params["scenario"],
            "controller": params.get("controller", "pure_pursuit"),
            "attack": params.get("attack", "none"),
            "seed": params.get("seed", 7),
            "onset": params.get("onset", 15.0),
            "duration": params.get("duration"),
        }
        if params.get("gate") is not None:
            kwargs["gate"] = float(params["gate"])
        return kwargs
    if kind == "multi_attack":  # E11
        return {
            "scenario": params["scenario"],
            "controller": "pure_pursuit",
            "attack": "+".join(params["pair"]),
            "seed": params.get("seed", 7),
            "onset": params.get("onset", 15.0),
        }
    if kind == "acc":  # E12
        return {
            "scenario": "acc_follow",
            "controller": "pure_pursuit",
            "attack": params.get("attack", "none"),
            "seed": params.get("seed", 7),
            "onset": params.get("onset", 15.0),
        }
    if kind == "defect":  # E13
        defect = params.get("defect")
        return {
            "scenario": params["scenario"],
            "controller": "pure_pursuit",
            "seed": params.get("seed", 7),
            "defect": None if defect in (None, "none") else defect,
            "defect_args": params.get("defect_params") or None,
        }
    if kind == PROBE_KIND:  # a probe's own key — re-explain its edit
        edit = params.get("edit", {})
        kwargs = {
            "scenario": params["scenario"],
            "controller": params.get("controller", "pure_pursuit"),
            "attack": "+".join(edit.get("attacks", [])) or "none",
            "fault": "+".join(edit.get("faults", [])) or "none",
            "intensity": edit.get("intensity", 1.0),
            "onset": edit.get("onset", 15.0),
            "seed": params.get("seed", 7),
            "duration": params.get("duration"),
        }
        if params.get("gate") is not None:
            kwargs["gate"] = float(params["gate"])
        if params.get("defect"):
            kwargs["defect"] = params["defect"]
            kwargs["defect_args"] = dict(
                (k, v) for k, v in params.get("defect_args", []))
        return kwargs
    return None
