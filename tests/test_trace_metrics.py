"""Tests for repro.trace.metrics."""

import pytest

from repro.trace.metrics import compute_metrics
from repro.trace.schema import Trace, TraceMeta

from conftest import make_trace


class TestComputeMetrics:
    def test_healthy_cruise(self):
        m = compute_metrics(make_trace(400))
        assert m.mean_abs_cte == pytest.approx(0.0)
        assert m.max_abs_cte == pytest.approx(0.0)
        assert m.mean_speed == pytest.approx(8.0)
        assert m.duration == pytest.approx(399 * 0.05)
        assert m.distance == pytest.approx(8.0 * 400 * 0.05)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(Trace())

    def test_cte_stats(self):
        def mutate(step, record):
            return record.replace(cte_true=1.0 if step % 2 == 0 else -3.0)

        m = compute_metrics(make_trace(100, mutate=mutate))
        assert m.mean_abs_cte == pytest.approx(2.0)
        assert m.max_abs_cte == pytest.approx(3.0)

    def test_goal_reached_via_min_distance(self):
        # Vehicle passes within the goal radius mid-run.
        def mutate(step, record):
            return record.replace(dist_to_goal=abs(step - 50) * 0.5)

        m = compute_metrics(make_trace(100, mutate=mutate))
        assert m.goal_reached

    def test_goal_not_reached(self):
        def mutate(step, record):
            return record.replace(dist_to_goal=50.0)

        m = compute_metrics(make_trace(100, mutate=mutate))
        assert not m.goal_reached

    def test_closed_route_goal_semantics(self):
        # Closed routes mark dist_to_goal with -1; success = progress.
        def mutate(step, record):
            return record.replace(dist_to_goal=-1.0, station_true=step * 0.4)

        trace = make_trace(
            400, meta=TraceMeta(route_length=300.0, dt=0.05), mutate=mutate
        )
        m = compute_metrics(trace)
        assert m.goal_reached  # progressed > 50% of route length

    def test_progress_fraction_clamped(self):
        def mutate(step, record):
            return record.replace(station_true=step * 10.0)

        trace = make_trace(
            100, meta=TraceMeta(route_length=100.0, dt=0.05), mutate=mutate
        )
        m = compute_metrics(trace)
        assert m.progress_fraction == 1.0

    def test_speed_rmse_ignores_launch(self):
        # Large error only in the first 5 s must not dominate.
        def mutate(step, record):
            v = 0.0 if step * 0.05 < 5.0 else 8.0
            return record.replace(true_v=v)

        m = compute_metrics(make_trace(400, mutate=mutate))
        assert m.speed_rmse == pytest.approx(0.0, abs=1e-9)

    def test_oscillation_metric_nonzero_for_dither(self):
        def mutate(step, record):
            return record.replace(steer_cmd=0.2 if step % 2 == 0 else -0.2)

        m = compute_metrics(make_trace(200, mutate=mutate))
        assert m.steer_oscillation_hz > 5.0

    def test_as_dict_complete(self):
        d = compute_metrics(make_trace(50)).as_dict()
        assert "rms_cte" in d and "goal_reached" in d
        assert len(d) == 13
