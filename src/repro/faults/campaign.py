"""Fault campaigns: named, parameterized fault instantiations.

Mirrors :mod:`repro.attacks.campaign` for the benign-fault axis of the
evaluation.  ``intensity`` is the same dimensionless knob in (0, ~2]:
for :class:`~repro.faults.models.Intermittent` it scales the drop
probability (1.0 = 50% loss), for :class:`~repro.faults.models.Latency`
the delay (1.0 = 0.5 s); the pure delivery faults (dropout, freeze,
NaN burst) have no magnitude and accept it for interface symmetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import AttackWindow
from repro.faults.base import Fault
from repro.faults.models import Dropout, Freeze, Intermittent, Latency, NaNBurst

__all__ = [
    "FaultCampaign",
    "FAULT_CLASSES",
    "fault_classes",
    "make_fault",
    "reparameterized_fault",
    "standard_fault",
    "combined_fault",
]

_DEFAULT_ONSET = 15.0


@dataclass(slots=True)
class FaultCampaign:
    """A labeled set of benign faults to inject together in one scenario."""

    label: str
    faults: list[Fault] = field(default_factory=list)

    def reset(self) -> None:
        for fault in self.faults:
            fault.reset()

    @staticmethod
    def none() -> "FaultCampaign":
        """The fault-free campaign."""
        return FaultCampaign(label="none", faults=[])


def _dropout(channel: str):
    def build(intensity: float, window: AttackWindow) -> Fault:
        return Dropout(channel, window=window)
    return build


def _freeze(channel: str):
    def build(intensity: float, window: AttackWindow) -> Fault:
        return Freeze(channel, window=window)
    return build


def _nan(channel: str):
    def build(intensity: float, window: AttackWindow) -> Fault:
        return NaNBurst(channel, window=window)
    return build


def _latency(channel: str):
    def build(intensity: float, window: AttackWindow) -> Fault:
        return Latency(channel, delay=0.5 * intensity, window=window)
    return build


def _intermittent(channel: str):
    def build(intensity: float, window: AttackWindow) -> Fault:
        return Intermittent(channel, drop_prob=min(0.5 * intensity, 0.95),
                            window=window)
    return build


FAULT_CLASSES: dict[str, object] = {
    "gps_dropout": _dropout("gps"),
    "gps_freeze": _freeze("gps"),
    "gps_nan": _nan("gps"),
    "gps_latency": _latency("gps"),
    "gps_intermittent": _intermittent("gps"),
    "imu_dropout": _dropout("imu"),
    "odom_dropout": _dropout("odometry"),
    "odom_freeze": _freeze("odometry"),
    "compass_dropout": _dropout("compass"),
    "compass_nan": _nan("compass"),
    "radar_dropout": _dropout("radar"),
}
"""Registry of the standard fault classes (E14 degradation grid).

Naming convention: ``<channel>_<model>``.  ``radar_dropout`` only has an
effect in car-following scenarios, like the ``radar_*`` attacks."""


def make_fault(
    fault_class: str,
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
) -> Fault:
    """Instantiate a standard fault class at the given intensity.

    Args:
        fault_class: a key of :data:`FAULT_CLASSES`.
        intensity: dimensionless magnitude knob (1.0 = nominal).
        onset: fault start time, seconds into the run.
        end: fault end time (default: never recovers).
    """
    if fault_class not in FAULT_CLASSES:
        raise ValueError(
            f"unknown fault class {fault_class!r}; "
            f"expected one of {sorted(FAULT_CLASSES)}"
        )
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    window = AttackWindow(start=onset, end=end)
    return FAULT_CLASSES[fault_class](intensity, window)


def standard_fault(
    fault_class: str, intensity: float = 1.0, onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
) -> FaultCampaign:
    """A single-fault campaign labeled with its class name."""
    if fault_class == "none":
        return FaultCampaign.none()
    return FaultCampaign(
        label=fault_class,
        faults=[make_fault(fault_class, intensity=intensity, onset=onset,
                           end=end)],
    )


def fault_classes(label: str) -> tuple[str, ...]:
    """Fault class names encoded in a campaign label (``"a+b"`` → ``(a, b)``).

    Mirror of :func:`repro.attacks.campaign.campaign_classes` for the
    benign-fault axis; the counterfactual ablation uses it to decompose a
    composed fault campaign back into its channels.
    """
    if label in ("", "none"):
        return ()
    classes = tuple(part for part in label.split("+") if part)
    for cls in classes:
        if cls not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {cls!r} in campaign label {label!r}; "
                f"expected classes from {sorted(FAULT_CLASSES)}"
            )
    return classes


def reparameterized_fault(
    label: str,
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
    classes: tuple[str, ...] | list[str] | None = None,
) -> FaultCampaign:
    """Rebuild a standard/combined fault campaign with an edited window,
    magnitude or channel subset — the counterfactual probe hook.

    Mirror of :func:`repro.attacks.campaign.reparameterized_attack`; with
    the label's own parameters it reconstructs the original campaign
    object-for-object.
    """
    base = fault_classes(label)
    if classes is not None:
        keep = set(classes)
        unknown = keep - set(base)
        if unknown:
            raise ValueError(
                f"classes {sorted(unknown)} are not part of campaign "
                f"{label!r} (classes: {list(base)})"
            )
        base = tuple(cls for cls in base if cls in keep)
    if not base:
        return FaultCampaign.none()
    return FaultCampaign(
        label="+".join(base),
        faults=[make_fault(cls, intensity=intensity, onset=onset, end=end)
                for cls in base],
    )


def combined_fault(
    fault_classes: list[str] | tuple[str, ...],
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
) -> FaultCampaign:
    """A campaign with several faults active simultaneously.

    Models correlated infrastructure failures (e.g. one power rail
    feeding both GNSS and compass).  The label joins the class names
    with ``+``.
    """
    if not fault_classes:
        raise ValueError("combined_fault needs at least one fault class")
    faults = [make_fault(cls, intensity=intensity, onset=onset, end=end)
              for cls in fault_classes]
    return FaultCampaign(label="+".join(fault_classes), faults=faults)
