"""E12 (extension) — debugging the ACC car-following stack.

Applies the full ADAssure loop to the longitudinal/radar half of the
vehicle: the constant-time-gap ACC follows a slowing lead while radar
spoofing (scale / ghost / blinding) corrupts its only input.  Reports the
safety outcome (minimum gap and headway), detection, and diagnosis per
attack.

Expected shape: the radar self-consistency assertions (A18/A19) catch the
spoofs at onset; blinding is only visible behaviourally (A17) once the
lead actually brakes — and the naive hold-last-track ACC implementation
drives the gap to (near) zero, which is exactly the kind of
implementation defect the methodology is built to expose.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.campaign import standard_attack
from repro.core.diagnosis import diagnose
from repro.experiments.config import ExperimentConfig
from repro.experiments.plan import ProbePlan, scenario_lane
from repro.experiments.tables import Table
from repro.sim.engine import run_scenario
from repro.sim.scenario import acc_scenario

__all__ = ["build_acc_debugging", "RADAR_ATTACKS"]

RADAR_ATTACKS: tuple[str, ...] = ("radar_scale", "radar_ghost", "radar_blind")


def build_acc_debugging(config: ExperimentConfig | None = None,
                        workers: int | None = None) -> Table:
    """Radar-attack outcomes on the car-following scenario.

    ``workers`` is accepted for experiment-interface uniformity; the
    attack x seed sweep is declared up front to a
    :class:`~repro.experiments.plan.ProbePlan` (all runs share the
    ``acc_follow`` compatibility group, so a cold campaign drains as
    batch-engine lane groups) and commits through the shared
    params-keyed cache, so repeated campaigns re-simulate nothing.
    """
    config = config or ExperimentConfig.full()
    table = Table(
        title="Table 8 (E12, extension): ACC debugging under radar attacks "
              f"(acc_follow scenario, {len(config.seeds)} seed(s))",
        columns=["attack", "min gap [m]", "min headway [s]", "near collision",
                 "detected", "median latency [s]", "top-1 correct"],
    )

    plan = ProbePlan()
    sweep: dict[tuple, object] = {}
    for attack in ("none",) + RADAR_ATTACKS:
        for seed in config.seeds:
            scenario = acc_scenario(seed=seed)
            campaign = standard_attack(attack, onset=config.attack_onset)

            def simulate(scenario=scenario, campaign=campaign):
                return run_scenario(scenario, campaign=campaign)

            sweep[(attack, seed)] = plan.plan_scored(
                {"kind": "acc", "attack": attack, "seed": seed,
                 "onset": config.attack_onset},
                simulate,
                lane=lambda scenario=scenario, campaign=campaign:
                scenario_lane(scenario, campaign=campaign),
                group=("acc_follow", None),
            )

    for attack in ("none",) + RADAR_ATTACKS:
        min_gaps, headways, latencies = [], [], []
        near_collision = detected = correct = 0
        for seed in config.seeds:
            result, report = sweep[(attack, seed)].result()
            trace = result.trace
            gap = trace.column("gap_true")
            v = trace.column("true_v")
            moving = v > 2.0
            headway = np.min(gap[moving] / v[moving]) if moving.any() else np.inf
            min_gaps.append(float(np.min(gap)))
            headways.append(float(headway))
            near_collision += float(np.min(gap)) < 2.0

            if attack == "none":
                detected += report.any_fired
                correct += diagnose(report).top().cause == "none"
            else:
                lat = report.detection_latency(config.attack_onset)
                if lat is not None:
                    detected += 1
                    latencies.append(lat)
                correct += diagnose(report).top().cause == attack
        n = len(config.seeds)
        table.add_row(
            attack,
            min(min_gaps),
            min(headways),
            f"{near_collision}/{n}",
            f"{detected}/{n}" if attack != "none" else f"{detected}/{n} (FPs)",
            f"{float(np.median(latencies)):.1f}" if latencies else "-",
            f"{correct}/{n}",
        )
    table.add_note("near collision = ground-truth gap below 2 m; the "
                   "hold-last-track ACC under blinding is the implementation "
                   "defect the methodology surfaces.")
    return table


def main() -> None:
    print(build_acc_debugging().render())


if __name__ == "__main__":
    main()
