"""Batched EKF: stacked ``(n, 4)`` states / ``(n, 4, 4)`` covariances.

Mirrors :class:`repro.control.estimator.Ekf` operation-for-operation.
Every product keeps the serial association order — ``(h @ p) @ h.T + r``,
``(p @ h.T) @ s_inv``, Joseph form ``(i_kh @ p) @ i_kh.T + (k @ r) @ k.T``
— as stacked ``matmul`` calls, which numpy evaluates bit-identically to
the per-lane 2-D products (verified empirically, including broadcast with
a shared 2-D ``h``).  Lanes update under boolean masks so a lane without a
fresh reading keeps its state untouched, exactly like a serial filter that
simply wasn't called.
"""

from __future__ import annotations

import numpy as np

from repro.control.estimator import EkfConfig
from repro.sim.batch import ops

__all__ = ["BatchEkf"]

_H_GPS = np.zeros((2, 4))
_H_GPS[0, 0] = 1.0
_H_GPS[1, 1] = 1.0
_H_SPEED = np.zeros((1, 4))
_H_SPEED[0, 3] = 1.0
_H_COMPASS = np.zeros((1, 4))
_H_COMPASS[0, 2] = 1.0


class BatchEkf:
    """``n`` independent EKFs stepped in lockstep.

    Per-lane configurations may differ (e.g. a gated lane next to an
    ungated one); scalar config parameters become per-lane arrays.
    """

    def __init__(self, configs: "list[EkfConfig]"):
        n = len(configs)
        self.n = n
        cfg = [c or EkfConfig() for c in configs]
        self._sigma_gps_sq = np.array([c.sigma_gps**2 for c in cfg])
        self._sigma_speed_sq = np.array([c.sigma_speed**2 for c in cfg])
        self._sigma_compass_sq = np.array([c.sigma_compass**2 for c in cfg])
        self._q_diag = np.array([[c.q_pos, c.q_pos, c.q_yaw, c.q_v] for c in cfg])
        self._p0_diag = np.array(
            [[c.p0_pos, c.p0_pos, c.p0_yaw, c.p0_v] for c in cfg]
        )
        # NaN encodes "no gate": any NIS comparison against NaN is False,
        # so ungated lanes always accept the measurement.
        self._gate = np.array(
            [np.nan if c.gate_nis is None else c.gate_nis for c in cfg]
        )
        self._x = np.zeros((n, 4))
        self._p = np.zeros((n, 4, 4))
        self.nis_gps = np.zeros(n)
        self.nis_speed = np.zeros(n)
        self.nis_compass = np.zeros(n)

    def reset(self, x: np.ndarray, y: np.ndarray, yaw: np.ndarray,
              v: np.ndarray) -> None:
        """Initialize every lane's state (scenario start pose)."""
        self._x = np.stack([x, y, ops.normalize_angle(yaw), v], axis=1)
        self._p = np.zeros((self.n, 4, 4))
        idx = np.arange(4)
        self._p[:, idx, idx] = self._p0_diag
        self.nis_gps = np.zeros(self.n)
        self.nis_speed = np.zeros(self.n)
        self.nis_compass = np.zeros(self.n)

    # ------------------------------------------------------------------
    def predict(self, yaw_rate: np.ndarray, accel: np.ndarray,
                dt: np.ndarray, mask: np.ndarray) -> None:
        """Propagate masked lanes with their IMU inputs over per-lane dt."""
        if not mask.any():
            return
        x, y, yaw, v = (self._x[:, i] for i in range(4))
        cos_y = np.cos(yaw)
        sin_y = np.sin(yaw)
        new_x = np.stack([
            x + v * cos_y * dt,
            y + v * sin_y * dt,
            ops.normalize_angle(yaw + yaw_rate * dt),
            ops.pymax(v + accel * dt, 0.0),
        ], axis=1)
        f = np.broadcast_to(np.eye(4), (self.n, 4, 4)).copy()
        f[:, 0, 2] = -v * sin_y * dt
        f[:, 0, 3] = cos_y * dt
        f[:, 1, 2] = v * cos_y * dt
        f[:, 1, 3] = sin_y * dt
        q = np.zeros((self.n, 4, 4))
        idx = np.arange(4)
        q[:, idx, idx] = self._q_diag * dt[:, None]
        new_p = np.matmul(np.matmul(f, self._p), f.transpose(0, 2, 1)) + q
        self._x[mask] = new_x[mask]
        self._p[mask] = new_p[mask]

    # ------------------------------------------------------------------
    def update_gps(self, gx: np.ndarray, gy: np.ndarray,
                   mask: np.ndarray) -> None:
        if not mask.any():
            return
        r = np.zeros((self.n, 2, 2))
        r[:, 0, 0] = self._sigma_gps_sq
        r[:, 1, 1] = self._sigma_gps_sq
        innov = np.stack([gx, gy], axis=1) - np.matmul(
            _H_GPS, self._x[:, :, None]
        )[:, :, 0]
        nis = self._update(_H_GPS, r, innov, mask)
        self.nis_gps = np.where(mask, nis, self.nis_gps)

    def update_speed(self, speed: np.ndarray, mask: np.ndarray) -> None:
        if not mask.any():
            return
        r = self._sigma_speed_sq[:, None, None]
        innov = (speed - self._x[:, 3])[:, None]
        nis = self._update(_H_SPEED, r, innov, mask)
        self.nis_speed = np.where(mask, nis, self.nis_speed)

    def update_compass(self, yaw: np.ndarray, mask: np.ndarray) -> None:
        if not mask.any():
            return
        r = self._sigma_compass_sq[:, None, None]
        innov = ops.angle_diff(yaw, self._x[:, 2])[:, None]
        nis = self._update(_H_COMPASS, r, innov, mask)
        self.nis_compass = np.where(mask, nis, self.nis_compass)
        # The serial filter re-normalizes yaw after *every* compass update,
        # gated or not.
        norm_yaw = ops.normalize_angle(self._x[:, 2])
        self._x[:, 2] = np.where(mask, norm_yaw, self._x[:, 2])

    def _update(self, h: np.ndarray, r: np.ndarray, innov: np.ndarray,
                mask: np.ndarray) -> np.ndarray:
        s = np.matmul(np.matmul(h, self._p), h.T) + r
        s_inv = np.linalg.inv(s)
        nis = np.matmul(
            np.matmul(innov[:, None, :], s_inv), innov[:, :, None]
        )[:, 0, 0]
        # Gated lanes report the NIS but keep state and covariance.
        upd = mask & ~(nis > self._gate)
        if upd.any():
            k = np.matmul(np.matmul(self._p, h.T), s_inv)
            new_x = self._x + np.matmul(k, innov[:, :, None])[:, :, 0]
            new_x[:, 3] = ops.pymax(new_x[:, 3], 0.0)
            i_kh = np.eye(4) - np.matmul(k, h)
            new_p = (
                np.matmul(np.matmul(i_kh, self._p), i_kh.transpose(0, 2, 1))
                + np.matmul(np.matmul(k, r), k.transpose(0, 2, 1))
            )
            self._x[upd] = new_x[upd]
            self._p[upd] = new_p[upd]
        return nis

    # ------------------------------------------------------------------
    @property
    def est_x(self) -> np.ndarray:
        return self._x[:, 0]

    @property
    def est_y(self) -> np.ndarray:
        return self._x[:, 1]

    @property
    def est_yaw(self) -> np.ndarray:
        return ops.normalize_angle(self._x[:, 2])

    @property
    def est_v(self) -> np.ndarray:
        return self._x[:, 3]

    @property
    def cov_trace(self) -> np.ndarray:
        return np.trace(self._p, axis1=1, axis2=2)
