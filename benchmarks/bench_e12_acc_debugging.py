"""Bench E12 (extension) — Table 8: ACC debugging under radar attacks."""

from conftest import run_and_print

from repro.experiments import build_acc_debugging


def test_e12_acc_debugging(benchmark, quick_config):
    table = run_and_print(benchmark, build_acc_debugging, quick_config)
    rows = {r[0]: r for r in table.rows}

    def frac(cell):
        num, den = cell.split()[0].split("/")
        return int(num) / int(den)

    # Extension-shape claims: nominal following is clean and safe; every
    # radar attack is detected and correctly diagnosed; blinding erodes
    # the gap to a near collision while the spoofs are caught at onset.
    assert frac(rows["none"][4]) == 0.0          # no false positives
    assert float(rows["none"][1]) > 5.0          # safe nominal gap
    for attack in ("radar_scale", "radar_ghost", "radar_blind"):
        assert frac(rows[attack][4]) == 1.0      # detected
        assert frac(rows[attack][6]) == 1.0      # diagnosed
    assert float(rows["radar_blind"][1]) < 2.0   # near collision
    assert float(rows["radar_scale"][2]) < 1.0   # headway rule broken
