"""Violation episodes, per-assertion summaries and check reports."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation", "AssertionSummary", "CheckReport"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One violation *episode* of one assertion.

    Consecutive violating steps are merged into a single episode; a new
    episode starts only after the assertion has recovered.  ``worst_margin``
    is the most negative normalized margin seen inside the episode (margins
    are normalized so that 0 is the threshold and -1 means "violated by
    100% of the threshold").
    """

    assertion_id: str
    name: str
    category: str
    t_start: float
    t_end: float
    worst_margin: float
    message: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def severity(self) -> float:
        """Unsigned violation depth (0 = marginal, 1 = 100% over bound)."""
        return max(-self.worst_margin, 0.0)

    def to_dict(self) -> dict:
        return {
            "assertion_id": self.assertion_id,
            "name": self.name,
            "category": self.category,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "worst_margin": self.worst_margin,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: dict) -> "Violation":
        return Violation(
            assertion_id=data["assertion_id"],
            name=data["name"],
            category=data["category"],
            t_start=float(data["t_start"]),
            t_end=float(data["t_end"]),
            worst_margin=float(data["worst_margin"]),
            message=data.get("message", ""),
        )


@dataclass(frozen=True, slots=True)
class AssertionSummary:
    """Aggregate view of one assertion over a whole trace."""

    assertion_id: str
    name: str
    category: str
    fired: bool
    episodes: int
    first_violation_t: float | None
    total_violation_time: float
    worst_margin: float
    """Most negative margin over the run (>= 0 when the assertion held)."""
    evaluated: bool = True
    """False when the assertion was never applicable on this trace."""

    @property
    def strength(self) -> float:
        """Evidence strength in [0, 1] used by the diagnosis engine.

        Combines episode count, violated time and depth: a single deep or
        sustained episode counts as strong evidence; a brief marginal blip
        stays weak.
        """
        if not self.fired:
            return 0.0
        depth = min(max(-self.worst_margin, 0.0), 1.0)
        sustained = min(self.total_violation_time / 2.0, 1.0)
        repeated = min(self.episodes / 3.0, 1.0)
        return float(min(0.25 + 0.45 * depth + 0.2 * sustained + 0.1 * repeated, 1.0))

    def to_dict(self) -> dict:
        return {
            "assertion_id": self.assertion_id,
            "name": self.name,
            "category": self.category,
            "fired": self.fired,
            "episodes": self.episodes,
            "first_violation_t": self.first_violation_t,
            "total_violation_time": self.total_violation_time,
            "worst_margin": self.worst_margin,
            "evaluated": self.evaluated,
        }

    @staticmethod
    def from_dict(data: dict) -> "AssertionSummary":
        first = data.get("first_violation_t")
        return AssertionSummary(
            assertion_id=data["assertion_id"],
            name=data["name"],
            category=data["category"],
            fired=bool(data["fired"]),
            episodes=int(data["episodes"]),
            first_violation_t=None if first is None else float(first),
            total_violation_time=float(data["total_violation_time"]),
            worst_margin=float(data["worst_margin"]),
            evaluated=bool(data.get("evaluated", True)),
        )


@dataclass(slots=True)
class CheckReport:
    """Result of evaluating an assertion set over one trace."""

    scenario: str
    controller: str
    attack_label: str
    duration: float
    violations: list[Violation] = field(default_factory=list)
    summaries: dict[str, AssertionSummary] = field(default_factory=dict)

    @property
    def fired_ids(self) -> list[str]:
        """IDs of assertions that fired, ordered by first violation time."""
        fired = [s for s in self.summaries.values() if s.fired]
        fired.sort(key=lambda s: (s.first_violation_t if s.first_violation_t
                                  is not None else float("inf")))
        return [s.assertion_id for s in fired]

    @property
    def any_fired(self) -> bool:
        return any(s.fired for s in self.summaries.values())

    def summary(self, assertion_id: str) -> AssertionSummary:
        return self.summaries[assertion_id]

    def first_violation_time(self, assertion_id: str | None = None) -> float | None:
        """Earliest violation time of one assertion (or of any, if None)."""
        if assertion_id is not None:
            s = self.summaries.get(assertion_id)
            return s.first_violation_t if s is not None else None
        times = [
            s.first_violation_t
            for s in self.summaries.values()
            if s.first_violation_t is not None
        ]
        return min(times) if times else None

    def detection_latency(self, onset: float,
                          assertion_id: str | None = None) -> float | None:
        """Delay from attack onset to first violation at/after onset.

        Violations strictly before the onset are ignored (they would be
        launch-transient noise, not detections of this attack).
        """
        candidates = [
            v.t_start for v in self.violations
            if v.t_start >= onset
            and (assertion_id is None or v.assertion_id == assertion_id)
        ]
        if not candidates:
            return None
        return min(candidates) - onset

    def evidence(self) -> dict[str, float]:
        """Assertion-id -> evidence strength map for the diagnosis engine."""
        return {aid: s.strength for aid, s in self.summaries.items()}

    def to_dict(self) -> dict:
        """JSON-serializable form: the monitoring service's wire payload.

        Exact float round-trip (floats travel as-is; ``json`` preserves
        them losslessly), so ``from_dict(to_dict(r)) == r`` field for
        field — the property the service's byte-identical verdict
        contract rests on.
        """
        return {
            "scenario": self.scenario,
            "controller": self.controller,
            "attack_label": self.attack_label,
            "duration": self.duration,
            "violations": [v.to_dict() for v in self.violations],
            "summaries": {aid: s.to_dict()
                          for aid, s in self.summaries.items()},
        }

    @staticmethod
    def from_dict(data: dict) -> "CheckReport":
        return CheckReport(
            scenario=data.get("scenario", ""),
            controller=data.get("controller", ""),
            attack_label=data.get("attack_label", ""),
            duration=float(data.get("duration", 0.0)),
            violations=[Violation.from_dict(v)
                        for v in data.get("violations", [])],
            summaries={aid: AssertionSummary.from_dict(s)
                       for aid, s in data.get("summaries", {}).items()},
        )
