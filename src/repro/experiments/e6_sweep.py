"""E6 / Figure 3 — attack-intensity sweep: detectability vs. harm.

Sweeps the attack magnitude knob and reports, per intensity: detection
rate, median detection latency, and the behavioural damage (max |cte|).
Expected crossover: consistency assertions detect attacks at intensities
well below the point where the vehicle's behaviour is materially harmed —
the core argument for redundancy-based assertions.
"""

from __future__ import annotations

import statistics

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_intensity_sweep"]

_HARM_CTE = 1.5  # meters: materially off-lane


def build_intensity_sweep(config: ExperimentConfig | None = None,
                          workers: int | None = None) -> Table:
    """Detection rate and damage vs. attack intensity."""
    config = config or ExperimentConfig.full()
    table = Table(
        title=f"Figure 3 (E6): intensity sweep (scenario={config.scenario}, "
              "controller=pure_pursuit)",
        columns=["attack", "intensity", "detect rate", "median latency [s]",
                 "mean max|cte| [m]", "harmed rate"],
    )

    for attack in config.sweep_attacks:
        for intensity in config.sweep_intensities:
            runs = run_grid(
                scenarios=(config.scenario,),
                controllers=("pure_pursuit",),
                attacks=(attack,),
                seeds=config.seeds,
                intensity=intensity,
                onset=config.attack_onset,
                duration=config.duration,
                workers=workers,
            )
            latencies = []
            detected = harmed = 0
            damages = []
            for run in runs:
                onset = run.result.trace.attack_onset()
                lat = (run.report.detection_latency(onset)
                       if onset is not None else None)
                if lat is not None:
                    detected += 1
                    latencies.append(lat)
                damage = run.result.metrics.max_abs_cte
                damages.append(damage)
                if damage > _HARM_CTE:
                    harmed += 1
            n = len(runs)
            table.add_row(
                attack,
                intensity,
                f"{detected}/{n}",
                f"{statistics.median(latencies):.1f}" if latencies else "-",
                statistics.mean(damages),
                f"{harmed}/{n}",
            )
    table.add_note(f"harmed = max|cte| exceeds {_HARM_CTE} m; the detection "
                   "threshold should sit at lower intensity than the harm "
                   "threshold.")
    return table


def main() -> None:
    print(build_intensity_sweep().render())


if __name__ == "__main__":
    main()
